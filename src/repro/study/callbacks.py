"""The study callback protocol and the stock callbacks.

A callback observes one :class:`~repro.study.Study` run through three hooks
layered over :meth:`repro.bo.base.BaseOptimizer.step`:

* :meth:`StudyCallback.on_init` -- after the initial designs are evaluated;
* :meth:`StudyCallback.on_batch` -- after every ask/evaluate/tell iteration;
* :meth:`StudyCallback.on_finish` -- once, with the final result (also on
  early stop).

Callbacks may call ``study.request_stop(reason)`` to end the run after the
current batch -- that is the entire control surface, which keeps the loop in
one place and the callbacks composable.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Sequence


class StudyCallback:
    """Base class: every hook is a no-op, subclass what you need."""

    def on_init(self, study, evaluations) -> None:
        """Called once after initialization; ``evaluations`` are the seeds."""

    def on_batch(self, study, iteration: int, evaluations) -> None:
        """Called after each batch; ``iteration`` counts from 1."""

    def on_finish(self, study, result) -> None:
        """Called once with the :class:`~repro.study.study.StudyResult`."""


class CallbackList(StudyCallback):
    """Dispatch to several callbacks in order (used internally by Study)."""

    def __init__(self, callbacks: Sequence[StudyCallback] = ()):
        self.callbacks = list(callbacks)

    def on_init(self, study, evaluations) -> None:
        for callback in self.callbacks:
            callback.on_init(study, evaluations)

    def on_batch(self, study, iteration: int, evaluations) -> None:
        for callback in self.callbacks:
            callback.on_batch(study, iteration, evaluations)

    def on_finish(self, study, result) -> None:
        for callback in self.callbacks:
            callback.on_finish(study, result)


class LoggingCallback(StudyCallback):
    """Progress lines ("sim 24/60, best 1.2345e-04") on a stream.

    Parameters
    ----------
    stream:
        Defaults to ``sys.stderr`` so progress does not pollute structured
        stdout output (the CLI prints result JSON on stdout).
    every:
        Log every ``every``-th batch (the init and finish lines always print).
    """

    def __init__(self, stream=None, every: int = 1):
        self.stream = stream
        self.every = max(1, int(every))

    def _write(self, study, message: str) -> None:
        stream = self.stream if self.stream is not None else sys.stderr
        print(f"[study {study.label}] {message}", file=stream, flush=True)

    def _best(self, study) -> str:
        best = study.history.best_objective(constrained=study.constrained)
        return f"best {best:.6g}"

    def on_init(self, study, evaluations) -> None:
        self._write(study, f"initialized with {len(evaluations)} designs, "
                           f"{self._best(study)}")

    def on_batch(self, study, iteration: int, evaluations) -> None:
        if iteration % self.every:
            return
        self._write(study, f"batch {iteration}: sim "
                           f"{len(study.history)}/{study.spec.n_simulations}, "
                           f"{self._best(study)}")

    def on_finish(self, study, result) -> None:
        reason = f" ({result.stop_reason})" if result.stop_reason else ""
        self._write(study, f"finished after {result.n_simulations} simulations, "
                           f"{self._best(study)}{reason}")


class EarlyStopping(StudyCallback):
    """Stop when the incumbent stalls or reaches a target value.

    Parameters
    ----------
    patience:
        Stop after this many consecutive batches without ``min_delta``
        improvement of the best objective (``None`` disables stall detection).
    min_delta:
        Minimum improvement that resets the stall counter.
    target:
        Stop as soon as the best objective is at least this good (respecting
        the problem's optimization direction).
    """

    def __init__(self, patience: int | None = None, min_delta: float = 0.0,
                 target: float | None = None):
        if patience is not None and patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        self.patience = patience
        self.min_delta = float(min_delta)
        self.target = target
        self._stalled = 0
        self._best: float | None = None

    def on_init(self, study, evaluations) -> None:
        # run_study reuses one callback instance across all seeds; each run
        # starts with a fresh incumbent and stall counter.
        self._stalled = 0
        self._best = None

    def _improved(self, study, best: float) -> bool:
        if self._best is None:
            return True
        if study.problem.minimize:
            return best < self._best - self.min_delta
        return best > self._best + self.min_delta

    def on_batch(self, study, iteration: int, evaluations) -> None:
        best = study.history.best_objective(constrained=study.constrained)
        if self.target is not None and study.problem.is_better(best, self.target):
            study.request_stop(f"target {self.target:g} reached (best {best:g})")
            return
        if self._improved(study, best):
            self._best = best
            self._stalled = 0
        else:
            self._stalled += 1
            if self.patience is not None and self._stalled >= self.patience:
                study.request_stop(
                    f"no improvement for {self._stalled} batches")


class BenchRecordCallback(StudyCallback):
    """Emit one machine-readable ``NAME {json}`` BENCH record on finish.

    Mirrors the ``record_bench`` convention of ``benchmarks/conftest.py``:
    the record prints to stdout (greppable in logs) and is appended as a
    JSON line to ``path`` or, when unset, to the file named by the
    ``KATO_BENCH_RECORDS`` environment variable.
    """

    def __init__(self, name: str = "BENCH_STUDY", path: str | None = None):
        self.name = name
        self.path = path

    def on_finish(self, study, result) -> None:
        record = result.to_record()
        print(f"{self.name} " + json.dumps(record, sort_keys=True))
        path = self.path or os.environ.get("KATO_BENCH_RECORDS", "")
        if path:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(json.dumps({"bench_record": self.name, **record},
                                        sort_keys=True) + "\n")
