"""The unified Study API: the one public front door for running optimizations.

* :mod:`repro.study.registry` -- decorator-based optimizer registry every
  optimizer in :mod:`repro.bo`, :mod:`repro.baselines` and :mod:`repro.core`
  registers into (names, aliases, capabilities, builders).
* :class:`StudySpec` -- a declarative, JSON-serializable run specification
  (problem, optimizer, budget, batch size, seeds, backend, transfer source).
* :class:`Study` -- the driver owning the ask/evaluate/tell loop, with a
  callback protocol (``on_init`` / ``on_batch`` / ``on_finish``) and JSONL
  checkpointing so a killed study resumes bit-identically.
* :func:`run_study` -- multi-seed execution and aggregation on top of
  :class:`Study` (the engine behind ``experiments/``).
* :mod:`repro.study.cli` -- the ``python -m repro`` command line
  (``run`` / ``resume`` / ``list-optimizers`` / ``list-circuits``).

This ``__init__`` loads heavyweight submodules lazily (PEP 562): optimizer
modules import :mod:`repro.study.registry` at class-definition time, and a
package import that eagerly pulled in :mod:`repro.bo` again would cycle.
"""

from __future__ import annotations

import importlib

from repro.study.registry import (
    BuildContext,
    OptimizerSpec,
    UnknownOptimizerError,
    available_optimizers,
    build_optimizer,
    optimizer_aliases,
    optimizer_specs,
    register_optimizer,
    resolve_optimizer,
)

_LAZY_ATTRS = {
    "StudySpec": "repro.study.spec",
    "TransferSpec": "repro.study.spec",
    "make_source_model": "repro.study.sources",
    "Study": "repro.study.study",
    "StudyResult": "repro.study.study",
    "run_study": "repro.study.study",
    "StudyCallback": "repro.study.callbacks",
    "CallbackList": "repro.study.callbacks",
    "LoggingCallback": "repro.study.callbacks",
    "EarlyStopping": "repro.study.callbacks",
    "BenchRecordCallback": "repro.study.callbacks",
    "CheckpointError": "repro.study.checkpoint",
    "read_checkpoint": "repro.study.checkpoint",
    "StudyCheckpoint": "repro.study.checkpoint",
    "JSONLCheckpoint": "repro.study.checkpoint",
    "coerce_checkpoint": "repro.study.checkpoint",
}

__all__ = [
    "BuildContext",
    "OptimizerSpec",
    "UnknownOptimizerError",
    "available_optimizers",
    "build_optimizer",
    "optimizer_aliases",
    "optimizer_specs",
    "register_optimizer",
    "resolve_optimizer",
    *sorted(_LAZY_ATTRS),
]


def __getattr__(name: str):
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_ATTRS))
