"""JSONL study checkpoints: kill a run, resume it bit-identically.

A checkpoint file is a line-oriented JSON log:

* line 1 -- a ``header`` record carrying the full :class:`StudySpec` (and a
  format version), so ``python -m repro resume <file>`` needs nothing else;
* one ``batch`` record per evaluation batch (the initial designs and every
  optimizer step), each carrying the complete
  :class:`~repro.bo.problem.EvaluatedDesign` records and the optimizer's RNG
  state after the batch (recorded for diagnostics);
* a final ``finish`` record once the study completes.

Records are flushed and fsynced per batch, and the reader tolerates a
truncated final line, so a study killed mid-write still leaves a valid
checkpoint.

**How resume works.**  Every optimizer in this package is a deterministic
function of ``(spec, seed)``: surrogate fits, acquisition searches and RNG
draws all replay identically (the seeded-determinism tests pin this down).
Resuming therefore re-runs the study from the start, but first primes the
problem's :class:`~repro.engine.cache.DesignCache` with every checkpointed
evaluation -- the replayed iterations propose bit-identical designs, hit the
cache, and consume **zero simulations** (the paper's cost unit); only
surrogate refits are recomputed.  Past the checkpointed prefix the study
continues live.  This reproduces *all* optimizer-internal state (KAT-GP
encoder weights, selective-transfer bandit counts, RNG streams) without any
per-optimizer serialization code, which is what makes resumes bit-identical
even for stateful optimizers like KATO.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.bo.problem import EvaluatedDesign
from repro.engine.cache import DesignCache

CHECKPOINT_VERSION = 1


class CheckpointError(ValueError):
    """Raised for unreadable or structurally invalid checkpoint files."""


# ---------------------------------------------------------------------- #
# evaluation <-> dict                                                     #
# ---------------------------------------------------------------------- #
def evaluation_to_dict(evaluation: EvaluatedDesign) -> dict:
    """Plain-JSON form of one evaluation (floats round-trip bit-exactly)."""
    return {
        "x": [float(v) for v in np.asarray(evaluation.x, dtype=float).ravel()],
        "metrics": {k: float(v) for k, v in evaluation.metrics.items()},
        "objective": float(evaluation.objective),
        "feasible": bool(evaluation.feasible),
        "violation": float(evaluation.violation),
        "tag": evaluation.tag,
        "extra": {k: float(v) for k, v in evaluation.extra.items()},
    }


def evaluation_from_dict(data: dict) -> EvaluatedDesign:
    return EvaluatedDesign(
        x=np.asarray(data["x"], dtype=float),
        metrics={k: float(v) for k, v in data["metrics"].items()},
        objective=float(data["objective"]),
        feasible=bool(data["feasible"]),
        violation=float(data.get("violation", 0.0)),
        tag=data.get("tag", ""),
        extra={k: float(v) for k, v in data.get("extra", {}).items()},
    )


def rng_state(rng: np.random.Generator) -> dict:
    """JSON-able snapshot of a generator's state (ints serialize exactly)."""
    return rng.bit_generator.state


# ---------------------------------------------------------------------- #
# writing                                                                 #
# ---------------------------------------------------------------------- #
class CheckpointWriter:
    """Append-per-batch JSONL writer (one writer per running study).

    A fresh run truncates ``path`` and appends as it goes.  A resume must
    never destroy recorded progress, so :meth:`bootstrap` first writes the
    checkpoint's existing header and batch records to a temporary file,
    atomically replaces ``path`` with it, and only then continues appending
    -- killing a resume at any point leaves a checkpoint at least as
    complete as the one it started from.
    """

    def __init__(self, path: str | os.PathLike, resume_records: list[dict] | None = None):
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if resume_records is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        else:
            temp_path = self.path + ".tmp"
            self._handle = open(temp_path, "w", encoding="utf-8")
            for record in resume_records:
                self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
            # The open handle keeps pointing at the inode after the rename,
            # so subsequent appends land in the (now replaced) checkpoint.
            os.replace(temp_path, self.path)

    def _write(self, record: dict) -> None:
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def write_header(self, spec_dict: dict, seed: int) -> None:
        self._write({"kind": "header", "version": CHECKPOINT_VERSION,
                     "spec": spec_dict, "seed": int(seed)})

    def write_batch(self, index: int, phase: str, evaluations,
                    n_total: int, rng: np.random.Generator | None = None) -> None:
        self._write({
            "kind": "batch",
            "index": int(index),
            "phase": phase,
            "n_total": int(n_total),
            "evaluations": [evaluation_to_dict(e) for e in evaluations],
            "rng_state": rng_state(rng) if rng is not None else None,
        })

    def write_finish(self, n_simulations: int, stop_reason: str | None) -> None:
        self._write({"kind": "finish", "n_simulations": int(n_simulations),
                     "stop_reason": stop_reason})

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "CheckpointWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# reading                                                                 #
# ---------------------------------------------------------------------- #
@dataclass
class CheckpointData:
    """Parsed checkpoint contents."""

    spec_dict: dict
    seed: int
    evaluations: list[EvaluatedDesign] = field(default_factory=list)
    n_batches: int = 0
    finished: bool = False
    stop_reason: str | None = None
    version: int = CHECKPOINT_VERSION
    #: Header + batch records verbatim, for CheckpointWriter.resume_records
    #: (a resume re-seeds the new file with these before appending).
    raw_records: list[dict] = field(default_factory=list)


def read_checkpoint(path: str | os.PathLike) -> CheckpointData:
    """Parse a checkpoint file, tolerating a truncated trailing line."""
    path = os.fspath(path)
    try:
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
    if not lines:
        raise CheckpointError(f"checkpoint {path!r} is empty")

    records: list[dict] = []
    for number, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if number == len(lines):
                break  # a kill mid-write leaves a partial final line
            raise CheckpointError(
                f"checkpoint {path!r} line {number} is not valid JSON: "
                f"{exc}") from exc
    if not records:
        raise CheckpointError(f"checkpoint {path!r} has no complete records")

    header = records[0]
    if header.get("kind") != "header" or "spec" not in header:
        raise CheckpointError(
            f"checkpoint {path!r} does not start with a header record "
            "(is this a study checkpoint?)")
    version = int(header.get("version", 0))
    if version > CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} has version {version}, newer than this "
            f"code understands ({CHECKPOINT_VERSION})")

    data = CheckpointData(spec_dict=header["spec"],
                          seed=int(header.get("seed", header["spec"].get("seed", 0))),
                          version=version, raw_records=[header])
    for record in records[1:]:
        kind = record.get("kind")
        if kind == "batch":
            data.evaluations.extend(
                evaluation_from_dict(e) for e in record.get("evaluations", []))
            data.n_batches += 1
            data.raw_records.append(record)
        elif kind == "finish":
            data.finished = True
            data.stop_reason = record.get("stop_reason")
    return data


# ---------------------------------------------------------------------- #
# checkpoint backends                                                     #
# ---------------------------------------------------------------------- #
class StudyCheckpoint:
    """Where a study's batch records live (JSONL file, results store, ...).

    A checkpoint backend answers two questions: *what has been recorded so
    far* (:meth:`read`, returning :class:`CheckpointData`) and *where do new
    records go* (:meth:`open_writer`, returning an object with the
    :class:`CheckpointWriter` interface -- ``write_header`` /
    ``write_batch`` / ``write_finish`` / ``close``).  :class:`Study` is
    written against this interface only, so the JSONL file layout and the
    SQLite results store (:class:`repro.service.store.StoreCheckpoint`) are
    interchangeable -- resume bit-identity holds for any backend that
    round-trips the records it was given.
    """

    #: Human-readable location, used in log lines and error messages.
    description: str = "<checkpoint>"

    def exists(self) -> bool:
        """Whether any recorded state exists to resume from."""
        raise NotImplementedError

    def read(self) -> CheckpointData:
        """Parse the recorded state (raises :class:`CheckpointError`)."""
        raise NotImplementedError

    def open_writer(self, resume_records: list[dict] | None = None):
        """Open a writer; ``resume_records`` re-seeds existing progress."""
        raise NotImplementedError


class JSONLCheckpoint(StudyCheckpoint):
    """The original single-file JSONL checkpoint as a backend object."""

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self.description = self.path

    def exists(self) -> bool:
        return os.path.exists(self.path)

    def read(self) -> CheckpointData:
        return read_checkpoint(self.path)

    def open_writer(self, resume_records: list[dict] | None = None) -> CheckpointWriter:
        return CheckpointWriter(self.path, resume_records=resume_records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JSONLCheckpoint({self.path!r})"


def coerce_checkpoint(value) -> StudyCheckpoint | None:
    """Normalise ``None`` / path / backend object to a checkpoint backend."""
    if value is None or isinstance(value, StudyCheckpoint):
        return value
    if isinstance(value, (str, os.PathLike)):
        return JSONLCheckpoint(value)
    raise TypeError(
        f"checkpoint must be a path or a StudyCheckpoint, got "
        f"{type(value).__name__}")


# ---------------------------------------------------------------------- #
# resume support                                                          #
# ---------------------------------------------------------------------- #
def prime_cache(problem, evaluations) -> int:
    """Load checkpointed evaluations into the problem's design cache.

    Keys are computed exactly as the engine computes them (clipped design
    plus the problem's ``cache_token``), so the replayed optimizer proposals
    hit instead of simulating.  Returns the number of primed entries.
    """
    engine = problem.engine
    if engine.cache is None:
        engine.cache = DesignCache()
    space = problem.design_space
    token = getattr(problem, "cache_token", problem.name)
    count = 0
    for evaluation in evaluations:
        clipped = space.clip(np.asarray(evaluation.x, dtype=float).reshape(1, -1))[0]
        engine.cache.put(DesignCache.key_for(token, clipped), evaluation)
        count += 1
    return count
