"""The Study driver: one front door for running optimizations.

:class:`Study` executes one ``(spec, seed)`` optimization run -- building the
problem, engine, transfer source and optimizer from a declarative
:class:`~repro.study.spec.StudySpec`, owning the ask/evaluate/tell loop on
top of :meth:`repro.bo.base.BaseOptimizer.step`, notifying callbacks, and
(optionally) checkpointing every batch to JSONL so a killed run resumes
bit-identically (see :mod:`repro.study.checkpoint`).

:func:`run_study` layers multi-seed execution and curve aggregation on top,
and is what the ``experiments/`` harnesses and the CLI call.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.bo.history import OptimizationHistory
from repro.errors import OptimizationError
from repro.study.callbacks import CallbackList, StudyCallback
from repro.study.checkpoint import (
    CheckpointData,
    coerce_checkpoint,
    prime_cache,
)
from repro.study.spec import StudySpec
from repro.utils.stats import summarize_runs


@dataclass
class StudyResult:
    """Outcome of one study run (one seed)."""

    spec: StudySpec
    seed: int
    history: OptimizationHistory
    n_iterations: int
    stop_reason: str | None = None
    resumed: bool = False
    n_replayed: int = 0
    engine_stats: dict = field(default_factory=dict)

    @property
    def constrained(self) -> bool:
        return self.history.problem.n_constraints > 0

    @property
    def n_simulations(self) -> int:
        return self.history.n_simulations

    def best_curve(self) -> np.ndarray:
        """Best-so-far objective per simulation (feasible-only if constrained)."""
        return self.history.best_curve(constrained=self.constrained)

    def to_record(self) -> dict:
        """One flat JSON-able result record (the CLI's output line)."""
        best = self.history.best(constrained=self.constrained)
        return {
            "kind": "study_result",
            "spec": self.spec.to_dict(),
            "seed": int(self.seed),
            "problem": self.history.problem.name,
            "optimizer": self.spec.optimizer,
            "n_simulations": int(self.n_simulations),
            "n_iterations": int(self.n_iterations),
            "n_feasible": int(self.history.feasible.sum())
            if len(self.history) else 0,
            "stop_reason": self.stop_reason,
            "resumed": bool(self.resumed),
            "n_replayed": int(self.n_replayed),
            "best_objective": None if best is None else float(best.objective),
            "best_feasible": None if best is None else bool(best.feasible),
            "best_metrics": None if best is None
            else {k: float(v) for k, v in best.metrics.items()},
            "best_x": None if best is None
            else [float(v) for v in np.asarray(best.x).ravel()],
            "curve": [float(v) for v in self.best_curve()],
            "engine": self.engine_stats,
        }


class Study:
    """One declarative optimization run with callbacks and checkpointing.

    Parameters
    ----------
    spec:
        The declarative run specification.  Multi-seed specs must go through
        :func:`run_study`; a :class:`Study` runs exactly one seed.
    seed:
        Override of ``spec.seed`` (used by :func:`run_study` fan-out).
    callbacks:
        :class:`~repro.study.callbacks.StudyCallback` instances, notified in
        order via ``on_init`` / ``on_batch`` / ``on_finish``.
    checkpoint_path:
        When set, every evaluation batch is appended to this JSONL file so
        the run can be resumed with :meth:`Study.resume`.
    checkpoint:
        Generalisation of ``checkpoint_path``: a path *or* any
        :class:`~repro.study.checkpoint.StudyCheckpoint` backend (e.g. the
        SQLite results store's
        :class:`~repro.service.store.StoreCheckpoint`).  At most one of the
        two may be given.
    engine_backend:
        Optional :class:`~repro.engine.backends.ExecutionBackend` instance
        that replaces the spec-resolved backend on the problem's engine --
        the seam the study service uses to dispatch evaluation batches as
        work-queue jobs instead of in-process simulations.
    optimizer_factory:
        Escape hatch for programmatic studies: a ``(problem, rng) ->
        optimizer`` callable used instead of the registry.  Such studies are
        only resumable when the same factory is passed to :meth:`resume`.
    """

    def __init__(self, spec: StudySpec, seed: int | None = None,
                 callbacks: list[StudyCallback] | tuple = (),
                 checkpoint_path: str | None = None,
                 checkpoint=None,
                 engine_backend=None,
                 optimizer_factory=None,
                 source=None, source_data=None,
                 _checkpoint_data: CheckpointData | None = None):
        if spec.n_seeds != 1 and seed is None:
            raise OptimizationError(
                f"Study runs one seed but spec.n_seeds={spec.n_seeds}; use "
                "run_study() for multi-seed execution (or pass seed=...)")
        if checkpoint is not None and checkpoint_path is not None:
            raise OptimizationError(
                "pass either checkpoint_path or checkpoint, not both")
        self.spec = spec if seed is None else spec.for_seed(seed)
        self.seed = int(self.spec.seed)
        self.callbacks = CallbackList(list(callbacks))
        self.checkpoint = coerce_checkpoint(
            checkpoint if checkpoint is not None else checkpoint_path)
        self.engine_backend = engine_backend
        self.optimizer_factory = optimizer_factory
        # Prebuilt transfer source (run_study builds one and shares it
        # across seeds instead of re-simulating it per repetition).
        self._source = source
        self._source_data = source_data
        self._checkpoint_data = _checkpoint_data
        self._stop_reason: str | None = None
        self.problem = None
        self.optimizer = None

    # ------------------------------------------------------------------ #
    # introspection used by callbacks                                     #
    # ------------------------------------------------------------------ #
    @property
    def label(self) -> str:
        return f"{self.spec.optimizer}:{self.spec.circuit}:seed{self.seed}"

    @property
    def checkpoint_path(self) -> str | None:
        """Path of a JSONL checkpoint backend (``None`` for others)."""
        from repro.study.checkpoint import JSONLCheckpoint
        if isinstance(self.checkpoint, JSONLCheckpoint):
            return self.checkpoint.path
        return None

    @property
    def history(self) -> OptimizationHistory:
        if self.optimizer is None:
            raise OptimizationError("study has not started yet")
        return self.optimizer.history

    @property
    def constrained(self) -> bool:
        return self.problem is not None and self.problem.n_constraints > 0

    def request_stop(self, reason: str) -> None:
        """Ask the loop to stop after the current batch (callback API)."""
        if self._stop_reason is None:
            self._stop_reason = reason

    @staticmethod
    def _write_metrics(writer, iteration: int) -> None:
        """Persist a per-batch telemetry snapshot on capable backends.

        Duck-typed: only checkpoint writers exposing ``write_metrics``
        (the SQLite store's) persist snapshots, and only when telemetry is
        enabled -- JSONL checkpoints stay bit-identical with and without
        instrumentation.
        """
        if writer is None or not telemetry.enabled():
            return
        write_metrics = getattr(writer, "write_metrics", None)
        if write_metrics is not None:
            write_metrics(iteration, telemetry.snapshot())

    # ------------------------------------------------------------------ #
    # construction helpers                                                #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_file(cls, path, **kwargs) -> "Study":
        """Study from a JSON spec file (see :meth:`StudySpec.from_file`)."""
        return cls(StudySpec.from_file(path), **kwargs)

    @classmethod
    def resume(cls, checkpoint, callbacks: tuple = (),
               optimizer_factory=None, engine_backend=None) -> "Study":
        """Rebuild a study from its checkpoint; :meth:`run` continues it.

        ``checkpoint`` is a JSONL path or any
        :class:`~repro.study.checkpoint.StudyCheckpoint` backend.  The
        replayed prefix consumes no simulations (checkpointed evaluations
        are served from the design cache) and reproduces the interrupted
        run bit-identically; see :mod:`repro.study.checkpoint`.
        """
        backend = coerce_checkpoint(checkpoint)
        data = backend.read()
        spec = StudySpec.from_dict(data.spec_dict)
        return cls(spec, seed=data.seed, callbacks=callbacks,
                   checkpoint=backend,
                   optimizer_factory=optimizer_factory,
                   engine_backend=engine_backend,
                   _checkpoint_data=data)

    # ------------------------------------------------------------------ #
    # the loop                                                            #
    # ------------------------------------------------------------------ #
    def run(self) -> StudyResult:
        """Execute the study to completion (or early stop) and return the result."""
        spec = self.spec
        if self.optimizer_factory is None:
            spec.validate()

        resumed = self._checkpoint_data is not None
        if resumed and not spec.cache:
            raise OptimizationError(
                "cannot resume a cache=False study: bit-identical replay "
                "relies on the design cache serving the checkpointed "
                "evaluations (cache=False exists for stochastic simulators, "
                "which cannot replay deterministically)")

        self.problem = problem = spec.build_problem()
        if self.engine_backend is not None:
            # Service seam: the spec-resolved backend is discarded before it
            # ever creates a pool, and evaluation batches dispatch through
            # the caller-provided backend (e.g. the work queue) instead.
            problem.engine.backend.shutdown()
            problem.engine.backend = self.engine_backend
        n_replayed = 0
        if resumed:
            n_replayed = prime_cache(problem, self._checkpoint_data.evaluations)

        rng = np.random.default_rng(self.seed)
        if self.optimizer_factory is not None:
            self.optimizer = optimizer = self.optimizer_factory(problem, rng)
        else:
            if self._source is not None or self._source_data is not None:
                source, source_data = self._source, self._source_data
            else:
                source, source_data = spec.build_source()
            self.optimizer = optimizer = spec.build_optimizer(
                problem, rng, source=source, source_data=source_data)

        writer = None
        covered = 0  # evaluations already recorded in the checkpoint
        if self.checkpoint is not None:
            if resumed:
                # Re-seed the backend with the existing records atomically,
                # so killing the resume never loses checkpointed progress;
                # the replayed batches below are skipped, not re-written.
                writer = self.checkpoint.open_writer(
                    resume_records=self._checkpoint_data.raw_records)
                covered = len(self._checkpoint_data.evaluations)
            else:
                writer = self.checkpoint.open_writer()
                writer.write_header(spec.to_dict(), self.seed)

        iteration = 0
        try:
            n_init = min(spec.n_init, spec.n_simulations)
            optimizer.initialize(n_init=n_init)
            if len(optimizer.history) == 0:
                raise OptimizationError(
                    "study has no initial designs: set n_init > 0 in the spec")
            if writer is not None and len(optimizer.history) > covered:
                writer.write_batch(0, "init", optimizer.history.evaluations,
                                   n_total=len(optimizer.history), rng=optimizer.rng)
            self._write_metrics(writer, 0)
            self.callbacks.on_init(self, list(optimizer.history.evaluations))

            while (len(optimizer.history) < spec.n_simulations
                   and self._stop_reason is None):
                with telemetry.span("study.batch", study=self.label,
                                    iteration=iteration + 1):
                    evaluations = optimizer.step()
                iteration += 1
                if writer is not None and len(optimizer.history) > covered:
                    writer.write_batch(iteration, "step", evaluations,
                                       n_total=len(optimizer.history),
                                       rng=optimizer.rng)
                self._write_metrics(writer, iteration)
                self.callbacks.on_batch(self, iteration, evaluations)

            result = StudyResult(
                spec=spec,
                seed=self.seed,
                history=optimizer.history,
                n_iterations=iteration,
                stop_reason=self._stop_reason,
                resumed=resumed,
                n_replayed=n_replayed,
                engine_stats=problem.engine.stats(),
            )
            if writer is not None:
                writer.write_finish(result.n_simulations, result.stop_reason)
            self.callbacks.on_finish(self, result)
            return result
        finally:
            if writer is not None:
                writer.close()
            problem.engine.close()
            # Problems owning pools of their own (corner sweeps) release
            # them here; the base implementation is a no-op.
            problem.close()


# ---------------------------------------------------------------------- #
# multi-seed execution                                                    #
# ---------------------------------------------------------------------- #
def _seed_checkpoint_path(checkpoint_path: str | None, index: int,
                          n_seeds: int) -> str | None:
    if checkpoint_path is None:
        return None
    if n_seeds == 1:
        return checkpoint_path
    return f"{checkpoint_path}.seed{index}"


def _run_study_task(task: tuple) -> StudyResult:
    """One seed of a study (top-level, so process backends can pickle it)."""
    spec_dict, seed, checkpoint_path = task
    spec = StudySpec.from_dict(spec_dict)
    return Study(spec, seed=seed, checkpoint_path=checkpoint_path).run()


def run_study(spec: StudySpec, callbacks: tuple = (),
              checkpoint_path: str | None = None,
              runner_backend=None) -> dict[str, object]:
    """Run a (possibly multi-seed) study and aggregate best-so-far curves.

    Parameters
    ----------
    spec:
        The study specification; ``spec.n_seeds`` independent repetitions
        are executed with seeds from :meth:`StudySpec.spawn_seeds`.
    callbacks:
        Callbacks attached to every seed's study (in-process execution
        only).  The same instances observe every seed in turn, so stateful
        callbacks should reset per-run state in ``on_init`` (the stock
        :class:`~repro.study.callbacks.EarlyStopping` does).
    checkpoint_path:
        Checkpoint file; multi-seed studies write one file per seed
        (``<path>.seed<k>``).
    runner_backend:
        ``None``/``"serial"`` runs seeds in-process (supports callbacks);
        ``"thread"``/``"process"`` or an
        :class:`~repro.engine.ExecutionBackend` fans whole seeds out (each
        worker rebuilds its problem and transfer source from the spec).

    Returns a dict with the same shape the retired ``run_repeated`` helper
    produced -- ``curves`` (array), ``summary`` (mean/std/... per budget),
    ``histories`` -- plus ``results`` (the per-seed :class:`StudyResult`
    records) and ``seeds``.
    """
    spec.validate()
    seeds = spec.spawn_seeds()
    in_process = runner_backend in (None, "serial")
    if callbacks and not in_process:
        raise OptimizationError(
            "callbacks require in-process seed execution; drop the "
            "runner_backend (evaluation-level parallelism via spec.backend "
            "still applies) or drop the callbacks")

    if in_process:
        # The transfer source is seed-independent (TransferSpec carries its
        # own seed), so build it once and share it across repetitions
        # instead of re-simulating and re-training it per seed.  Parallel
        # runners rebuild it per worker from the spec instead.
        shared_source, shared_data = spec.build_source()
        results = []
        for index, seed in enumerate(seeds):
            study = Study(spec, seed=seed, callbacks=callbacks,
                          checkpoint_path=_seed_checkpoint_path(
                              checkpoint_path, index, len(seeds)),
                          source=shared_source, source_data=shared_data)
            results.append(study.run())
    else:
        from repro.engine import ExecutionBackend, resolve_backend
        tasks = [(spec.to_dict(), seed,
                  _seed_checkpoint_path(checkpoint_path, index, len(seeds)))
                 for index, seed in enumerate(seeds)]
        owns_backend = not isinstance(runner_backend, ExecutionBackend)
        backend = resolve_backend(runner_backend)
        try:
            results = backend.map(_run_study_task, tasks)
        finally:
            if owns_backend:
                backend.shutdown()

    curves = [result.best_curve() for result in results]
    length = min(len(curve) for curve in curves)
    curves = [curve[:length] for curve in curves]
    return {
        "curves": np.asarray(curves),
        "summary": summarize_runs(curves),
        "histories": [result.history for result in results],
        "results": results,
        "seeds": seeds,
    }
