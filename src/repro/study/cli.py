"""The ``python -m repro`` command line: declarative studies from spec files.

Subcommands
-----------
``run <spec.json>``
    Execute a study (all its seeds) and emit one ``study_result`` JSON line
    per seed on stdout or to ``--output``.
``resume <checkpoint.jsonl>``
    Continue an interrupted study from its checkpoint; the replayed prefix
    consumes no simulations and the final history is bit-identical to an
    uninterrupted run.
``list-optimizers`` / ``list-problems`` (alias ``list-circuits``)
    Human-readable (or ``--json``) listings of both registries;
    ``list-problems`` includes each problem's accepted ``problem_options``
    (corner sets, Monte Carlo configuration, ...) so spec files are
    discoverable from the terminal.

Progress goes to stderr (``--quiet`` silences it); structured results go to
stdout or the ``--output`` file, one JSON object per line.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ReproError
from repro.version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative KATO-reproduction optimization studies.")
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run a study from a JSON spec file")
    run.add_argument("spec", help="path to a StudySpec JSON file")
    _add_run_output_options(run)
    run.add_argument("--checkpoint", metavar="PATH",
                     help="write a JSONL checkpoint (per seed) for resume")
    run.add_argument("--seed", type=int, help="override spec.seed")
    run.add_argument("--n-simulations", type=int,
                     help="override spec.n_simulations")
    run.add_argument("--n-seeds", type=int, help="override spec.n_seeds")
    run.add_argument("--backend", help="override spec.backend "
                                       "(serial/thread/process)")

    resume = commands.add_parser(
        "resume", help="continue an interrupted study from its checkpoint")
    resume.add_argument("checkpoint", help="path to a study checkpoint JSONL")
    _add_run_output_options(resume)

    list_optimizers = commands.add_parser(
        "list-optimizers", help="list registered optimizers and aliases")
    list_optimizers.add_argument("--json", action="store_true", dest="as_json")

    for command_name in ("list-problems", "list-circuits"):
        list_problems = commands.add_parser(
            command_name,
            help="list registered problems with their problem_options")
        list_problems.add_argument("--json", action="store_true",
                                   dest="as_json")
    return parser


def _add_run_output_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("-o", "--output", default="-", metavar="PATH",
                           help="result JSONL file ('-' for stdout)")
    subparser.add_argument("--quiet", action="store_true",
                           help="suppress progress logging on stderr")


def _emit_results(results: list[dict], output: str) -> None:
    lines = [json.dumps(record, sort_keys=True) for record in results]
    if output == "-":
        for line in lines:
            print(line)
        return
    with open(output, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")


def _run_callbacks(quiet: bool):
    from repro.study.callbacks import LoggingCallback
    return () if quiet else (LoggingCallback(),)


def _apply_overrides(spec, args):
    from dataclasses import replace
    overrides = {}
    for attribute in ("seed", "n_simulations", "n_seeds", "backend"):
        value = getattr(args, attribute, None)
        if value is not None:
            overrides[attribute] = value
    return replace(spec, **overrides) if overrides else spec


def _command_run(args) -> int:
    from repro.study.spec import StudySpec
    from repro.study.study import run_study
    spec = _apply_overrides(StudySpec.from_file(args.spec), args)
    outcome = run_study(spec, callbacks=_run_callbacks(args.quiet),
                        checkpoint_path=args.checkpoint)
    _emit_results([result.to_record() for result in outcome["results"]],
                  args.output)
    return 0


def _command_resume(args) -> int:
    from repro.study.study import Study
    study = Study.resume(args.checkpoint, callbacks=_run_callbacks(args.quiet))
    result = study.run()
    _emit_results([result.to_record()], args.output)
    return 0


def _command_list_optimizers(args) -> int:
    from repro.study.registry import optimizer_specs
    specs = optimizer_specs()
    if args.as_json:
        print(json.dumps([{
            "name": spec.name,
            "aliases": list(spec.aliases),
            "class": spec.cls.__name__,
            "constrained": spec.supports_constrained,
            "unconstrained": spec.supports_unconstrained,
            "requires_source": spec.requires_source,
            "requires_source_data": spec.requires_source_data,
            "description": spec.description,
        } for spec in specs], indent=2))
        return 0
    width = max(len(spec.name) for spec in specs)
    print(f"{'NAME':<{width}}  PROBLEMS     TRANSFER  ALIASES")
    for spec in specs:
        problems = ("both" if spec.supports_constrained
                    and spec.supports_unconstrained
                    else "constrained" if spec.supports_constrained
                    else "fom-only")
        transfer = ("source" if spec.requires_source
                    else "data" if spec.requires_source_data else "-")
        aliases = ", ".join(spec.aliases) or "-"
        print(f"{spec.name:<{width}}  {problems:<11}  {transfer:<8}  {aliases}")
        if spec.description:
            print(f"{'':<{width}}    {spec.description}")
    return 0


def _problem_options(cls) -> dict[str, str]:
    """Constructor keywords a spec's ``problem_options`` may set.

    Introspected from the registered class, so plugins are covered with
    zero bookkeeping.  ``technology`` is excluded (it is a top-level spec
    field) and ``**kwargs`` pass-throughs surface as ``"..."``.
    """
    import inspect
    options: dict[str, str] = {}
    for parameter in inspect.signature(cls.__init__).parameters.values():
        if parameter.name in ("self", "technology"):
            continue
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            options["..."] = "forwarded to the wrapped problem"
        elif parameter.kind is not inspect.Parameter.VAR_POSITIONAL:
            default = ("required" if parameter.default is inspect.Parameter.empty
                       else repr(parameter.default))
            options[parameter.name] = default
    return options


def _command_list_circuits(args) -> int:
    """Legacy alias: keeps the original ``--json`` shape (a name list)."""
    from repro.circuits import available_problems
    if args.as_json:
        print(json.dumps(available_problems(), indent=2))
        return 0
    return _command_list_problems(args)


def _command_list_problems(args) -> int:
    from repro.circuits import available_problems, make_problem
    from repro.circuits.registry import _PROBLEMS
    names = available_problems()
    entries = []
    for name in names:
        problem = make_problem(name)
        try:
            entries.append({
                "name": name,
                "objective": problem.objective,
                "minimize": problem.minimize,
                "n_design_variables": problem.design_space.dim,
                "constraints": [
                    f"{c.name} {'>=' if c.sense == 'ge' else '<='} {c.threshold:g}"
                    for c in problem.constraints],
                "problem_options": _problem_options(_PROBLEMS[name]),
            })
        finally:
            problem.close()
    if args.as_json:
        print(json.dumps(entries, indent=2))
        return 0
    for entry in entries:
        direction = "minimise" if entry["minimize"] else "maximise"
        print(f"{entry['name']}: {direction} {entry['objective']}, "
              f"{entry['n_design_variables']} variables, "
              f"s.t. {', '.join(entry['constraints']) or '(unconstrained)'}")
        options = ", ".join(f"{key}={value}" for key, value
                            in entry["problem_options"].items())
        print(f"  problem_options: {options or '(none)'}")
    return 0


_COMMANDS = {
    "run": _command_run,
    "resume": _command_resume,
    "list-optimizers": _command_list_optimizers,
    "list-problems": _command_list_problems,
    "list-circuits": _command_list_circuits,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted (checkpoints, if enabled, are resumable)",
              file=sys.stderr)
        return 130
    except (ValueError, OSError, KeyError, ReproError) as exc:
        # SpecError, UnknownOptimizerError, CheckpointError and unreadable
        # files all land here: user errors get one clean line, not a trace.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
