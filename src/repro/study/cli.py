"""The ``python -m repro`` command line: declarative studies from spec files.

Subcommands
-----------
``run <spec.json>``
    Execute a study (all its seeds) and emit one ``study_result`` JSON line
    per seed on stdout or to ``--output``.
``resume <checkpoint.jsonl>``
    Continue an interrupted study from its checkpoint; the replayed prefix
    consumes no simulations and the final history is bit-identical to an
    uninterrupted run.
``list-optimizers`` / ``list-problems`` (alias ``list-circuits``)
    Human-readable (or ``--json``) listings of both registries;
    ``list-problems`` includes each problem's accepted ``problem_options``
    (corner sets, Monte Carlo configuration, ...) so spec files are
    discoverable from the terminal.
``worker``
    Claim and evaluate queued jobs against a shared results store
    (``--db``); any number of workers shard a distributed study.
``dashboard``
    Serve the HTTP status API and HTML dashboard over a results store.
``db import`` / ``db ingest-bench``
    Load JSONL checkpoints and ``BENCH_*.json`` benchmark records into a
    results store.

``run``/``resume`` accept ``--db`` to checkpoint into a SQLite results
store instead of JSONL (add ``--distributed`` to dispatch evaluations
through the store's work queue).  Progress goes to stderr (``--quiet``
silences it); structured results go to stdout or the ``--output`` file,
one JSON object per line.

``run``/``resume``/``worker`` accept ``--telemetry`` (equivalent to setting
``REPRO_TELEMETRY=1``) to capture solver spans and metrics; ``run``/
``resume`` additionally take ``--trace PATH`` to export the captured spans
as a Perfetto-compatible JSON trace, and print a metrics report to stderr
on exit unless ``--quiet``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.errors import ReproError
from repro.version import __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative KATO-reproduction optimization studies.")
    parser.add_argument("--version", action="version", version=__version__)
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run a study from a JSON spec file")
    run.add_argument("spec", help="path to a StudySpec JSON file")
    _add_run_output_options(run)
    run.add_argument("--checkpoint", metavar="PATH",
                     help="write a JSONL checkpoint (per seed) for resume")
    run.add_argument("--seed", type=int, help="override spec.seed")
    run.add_argument("--n-simulations", type=int,
                     help="override spec.n_simulations")
    run.add_argument("--n-seeds", type=int, help="override spec.n_seeds")
    run.add_argument("--backend", help="override spec.backend "
                                       "(serial/thread/process)")
    _add_service_options(run)

    resume = commands.add_parser(
        "resume", help="continue an interrupted study from its checkpoint")
    resume.add_argument("checkpoint",
                        help="path to a study checkpoint JSONL, or (with "
                             "--db) a study id in the results store")
    _add_run_output_options(resume)
    _add_service_options(resume)

    worker = commands.add_parser(
        "worker", help="claim and evaluate queued jobs from a results store")
    worker.add_argument("--db", required=True, metavar="PATH",
                        help="SQLite results store shared with the driver")
    worker.add_argument("--worker-id", help="stable worker identity "
                                            "(default: host-pid-suffix)")
    worker.add_argument("--lease", type=float, default=None, metavar="SECONDS",
                        help="job lease duration (default 60)")
    worker.add_argument("--poll-interval", type=float, default=0.2,
                        metavar="SECONDS", help="idle sleep between claims")
    worker.add_argument("--backend", default="serial",
                        help="evaluation backend inside the worker "
                             "(serial/batched; default serial)")
    worker.add_argument("--max-jobs", type=int, default=None,
                        help="exit after this many jobs")
    worker.add_argument("--idle-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="exit after this long with an empty queue")
    _add_telemetry_options(worker)
    _add_import_option(worker)

    dashboard = commands.add_parser(
        "dashboard", help="serve the HTTP status API and dashboard")
    dashboard.add_argument("--db", required=True, metavar="PATH",
                           help="SQLite results store to serve")
    dashboard.add_argument("--host", default="127.0.0.1")
    dashboard.add_argument("--port", type=int, default=8732)
    dashboard.add_argument("--quiet", action="store_true",
                           help="suppress per-request logging")
    _add_import_option(dashboard)

    db = commands.add_parser(
        "db", help="results-store maintenance (import, ingest-bench)")
    db_commands = db.add_subparsers(dest="db_command", required=True)
    db_import = db_commands.add_parser(
        "import", help="import a JSONL study checkpoint into the store")
    db_import.add_argument("checkpoint",
                           help="path to a study checkpoint JSONL file")
    db_import.add_argument("--db", required=True, metavar="PATH")
    db_import.add_argument("--study-id",
                           help="store under this id (default: derived "
                                "from the checkpoint's spec and seed)")
    db_import.add_argument("--import", action="append", default=[],
                           dest="imports", metavar="MODULE",
                           help=argparse.SUPPRESS)
    db_ingest = db_commands.add_parser(
        "ingest-bench",
        help="ingest BENCH_*.json benchmark records into the store")
    db_ingest.add_argument("files", nargs="*",
                           help="BENCH_*.json files (default: BENCH_*.json "
                                "in the current directory)")
    db_ingest.add_argument("--db", required=True, metavar="PATH")

    list_optimizers = commands.add_parser(
        "list-optimizers", help="list registered optimizers and aliases")
    list_optimizers.add_argument(
        "name", nargs="?", default=None,
        help="describe just this optimizer (aliases resolve); an unknown "
             f"name exits with code {EXIT_UNKNOWN_NAME}")
    list_optimizers.add_argument("--json", action="store_true", dest="as_json")

    for command_name in ("list-problems", "list-circuits"):
        list_problems = commands.add_parser(
            command_name,
            help="list registered problems with their problem_options")
        list_problems.add_argument(
            "name", nargs="?", default=None,
            help="describe just this problem; an unknown name exits with "
                 f"code {EXIT_UNKNOWN_NAME}")
        list_problems.add_argument("--json", action="store_true",
                                   dest="as_json")
    return parser


def _add_run_output_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("-o", "--output", default="-", metavar="PATH",
                           help="result JSONL file ('-' for stdout)")
    subparser.add_argument("--quiet", action="store_true",
                           help="suppress progress logging on stderr")
    _add_telemetry_options(subparser, trace=True)


def _add_telemetry_options(subparser: argparse.ArgumentParser,
                           trace: bool = False) -> None:
    group = subparser.add_argument_group(
        "telemetry", "solver-to-service instrumentation; also enabled by "
                     "the REPRO_TELEMETRY environment variable")
    group.add_argument("--telemetry", action="store_true",
                       help="capture solver spans and metrics "
                            "(zero overhead when off)")
    if trace:
        group.add_argument("--trace", metavar="PATH",
                           help="export captured spans as a Perfetto JSON "
                                "trace on exit (implies --telemetry)")


def _apply_telemetry(args) -> None:
    """Enable telemetry before any pools or workers spawn (env inherits)."""
    if getattr(args, "telemetry", False) or getattr(args, "trace", None):
        from repro import telemetry
        telemetry.enable()


def _finish_telemetry(args, quiet: bool) -> None:
    from repro import telemetry
    if not telemetry.enabled():
        return
    trace_path = getattr(args, "trace", None)
    if trace_path:
        n_spans = telemetry.export_trace(trace_path)
        print(f"telemetry trace: {n_spans} spans -> {trace_path}",
              file=sys.stderr)
    if not quiet:
        print(telemetry.report(), file=sys.stderr)


def _add_import_option(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument("--import", action="append", default=[],
                           dest="imports", metavar="MODULE",
                           help="import this module first (repeatable); how "
                                "plugin problems/optimizers register in "
                                "worker and dashboard processes")


def _add_service_options(subparser: argparse.ArgumentParser) -> None:
    service = subparser.add_argument_group(
        "results store", "checkpoint into a shared SQLite store instead of "
                         "JSONL; see the worker/dashboard/db subcommands")
    service.add_argument("--db", metavar="PATH",
                         help="SQLite results store (per-seed checkpoints, "
                              "queryable via the dashboard)")
    service.add_argument("--study-id",
                         help="store under this id (default: derived from "
                              "spec and seed; with --db only)")
    service.add_argument("--distributed", action="store_true",
                         help="dispatch evaluation batches through the "
                              "store's work queue (needs --db and at least "
                              "one worker)")
    service.add_argument("--shard-size", type=int, default=1, metavar="N",
                         help="designs per queued job (default 1)")
    service.add_argument("--lease", type=float, default=None,
                         metavar="SECONDS",
                         help="job lease duration (default 60)")
    service.add_argument("--dispatch-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="fail a dispatch that no worker finishes in "
                              "this long (default: wait forever)")
    service.add_argument("--spawn-workers", type=int, default=0, metavar="N",
                         help="also run N worker threads in this process "
                              "(self-contained distributed runs)")
    _add_import_option(subparser)


def _apply_imports(args) -> None:
    import importlib
    for module in getattr(args, "imports", []):
        importlib.import_module(module)


class _SpawnedWorkers:
    """N in-process worker threads for self-contained --distributed runs."""

    def __init__(self, db_path: str, count: int, lease_seconds: float | None,
                 backend: str = "serial"):
        import threading

        from repro.service.queue import DEFAULT_LEASE_SECONDS
        from repro.service.worker import Worker
        self.workers = [
            Worker(db_path, worker_id=f"spawned-{index}",
                   lease_seconds=lease_seconds or DEFAULT_LEASE_SECONDS,
                   backend=backend)
            for index in range(count)]
        self.threads = [threading.Thread(target=worker.run, daemon=True)
                        for worker in self.workers]

    def __enter__(self):
        for thread in self.threads:
            thread.start()
        return self

    def __exit__(self, *exc_info):
        for worker in self.workers:
            worker.request_stop()
        for thread in self.threads:
            thread.join(timeout=30.0)
        for worker in self.workers:
            worker.store.close()
        return False


def _emit_results(results: list[dict], output: str) -> None:
    lines = [json.dumps(record, sort_keys=True) for record in results]
    if output == "-":
        for line in lines:
            print(line)
        return
    with open(output, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")


def _run_callbacks(quiet: bool):
    from repro.study.callbacks import LoggingCallback
    return () if quiet else (LoggingCallback(),)


def _apply_overrides(spec, args):
    from dataclasses import replace
    overrides = {}
    for attribute in ("seed", "n_simulations", "n_seeds", "backend"):
        value = getattr(args, attribute, None)
        if value is not None:
            overrides[attribute] = value
    return replace(spec, **overrides) if overrides else spec


def _check_service_args(args, parser_hint: str) -> str | None:
    """Validate the --db option cluster; returns the db path (or None)."""
    db = getattr(args, "db", None)
    if db is None:
        for option in ("study_id", "distributed"):
            if getattr(args, option, None):
                raise ValueError(f"--{option.replace('_', '-')} requires "
                                 f"--db ({parser_hint})")
        if getattr(args, "spawn_workers", 0):
            raise ValueError(f"--spawn-workers requires --db ({parser_hint})")
    return db


def _command_run(args) -> int:
    _apply_imports(args)
    _apply_telemetry(args)
    db = _check_service_args(args, "run --help")
    from repro.study.spec import StudySpec
    spec = _apply_overrides(StudySpec.from_file(args.spec), args)
    db = db or spec.results_db
    if db is None:
        from repro.study.study import run_study
        outcome = run_study(spec, callbacks=_run_callbacks(args.quiet),
                            checkpoint_path=args.checkpoint)
    else:
        if args.checkpoint is not None:
            raise ValueError("--checkpoint and --db are exclusive: the "
                             "results store is the checkpoint")
        outcome = _service_run(args, spec, db)
    _emit_results([result.to_record() for result in outcome["results"]],
                  args.output)
    _finish_telemetry(args, args.quiet)
    return 0


def _service_run(args, spec, db: str) -> dict:
    from repro.service.driver import run_service_study
    with _spawned_workers(args, db):
        outcome = run_service_study(
            spec, db, study_id=args.study_id,
            callbacks=_run_callbacks(args.quiet),
            distributed=_distributed(args), shard_size=args.shard_size,
            **_lease_kwargs(args))
    for study_id in outcome["study_ids"]:
        print(f"study stored: {study_id} (db: {db})", file=sys.stderr)
    return outcome


def _command_resume(args) -> int:
    _apply_imports(args)
    _apply_telemetry(args)
    db = _check_service_args(args, "resume --help")
    if db is None:
        from repro.study.study import Study
        study = Study.resume(args.checkpoint,
                             callbacks=_run_callbacks(args.quiet))
        result = study.run()
    else:
        from repro.service.driver import resume_service_study
        with _spawned_workers(args, db):
            result = resume_service_study(
                db, args.checkpoint, callbacks=_run_callbacks(args.quiet),
                distributed=_distributed(args), shard_size=args.shard_size,
                **_lease_kwargs(args))
    _emit_results([result.to_record()], args.output)
    _finish_telemetry(args, args.quiet)
    return 0


def _distributed(args) -> bool:
    return bool(args.distributed or args.spawn_workers)


def _lease_kwargs(args) -> dict:
    from repro.service.queue import DEFAULT_LEASE_SECONDS
    return {"lease_seconds": args.lease or DEFAULT_LEASE_SECONDS,
            "dispatch_timeout": args.dispatch_timeout}


def _spawned_workers(args, db: str):
    from contextlib import nullcontext
    if not args.spawn_workers:
        return nullcontext()
    return _SpawnedWorkers(db, args.spawn_workers, args.lease)


def _command_worker(args) -> int:
    _apply_imports(args)
    _apply_telemetry(args)
    from repro.service.queue import DEFAULT_LEASE_SECONDS
    from repro.service.worker import run_worker
    n_done = run_worker(args.db, worker_id=args.worker_id,
                        lease_seconds=args.lease or DEFAULT_LEASE_SECONDS,
                        poll_interval=args.poll_interval,
                        backend=args.backend, max_jobs=args.max_jobs,
                        idle_timeout=args.idle_timeout)
    print(f"worker exiting after {n_done} jobs", file=sys.stderr)
    return 0


def _command_dashboard(args) -> int:
    _apply_imports(args)
    from repro.service.api import serve_dashboard
    serve_dashboard(args.db, host=args.host, port=args.port,
                    quiet=args.quiet)
    return 0


def _command_db(args) -> int:
    _apply_imports(args)
    from repro.service.store import ResultsStore
    store = ResultsStore(args.db)
    try:
        if args.db_command == "import":
            study_id = store.import_jsonl(args.checkpoint,
                                          study_id=args.study_id)
            print(f"imported {args.checkpoint} as study {study_id}")
        else:  # ingest-bench
            import glob
            files = args.files or sorted(glob.glob("BENCH_*.json"))
            if not files:
                print("no BENCH_*.json files found", file=sys.stderr)
            total = new = 0
            for path in files:
                with open(path, encoding="utf-8") as handle:
                    payload = json.load(handle)
                name = payload.get("name") or os.path.splitext(
                    os.path.basename(path))[0]
                records = payload.get("records", [])
                total += len(records)
                new += sum(store.ingest_bench_record(name, record,
                                                     source=path)
                           for record in records)
            print(f"ingested {new} new of {total} records "
                  f"from {len(files)} files")
    finally:
        store.close()
    return 0


#: Exit code for a name that resolves against neither registry -- stable,
#: distinct from 2 (generic usage/user error), so scripts and the dashboard
#: can tell "no such problem" from "malformed invocation".
EXIT_UNKNOWN_NAME = 3


def optimizer_entries(name: str | None = None) -> list[dict]:
    """Machine-readable optimizer listing (what ``--json`` prints).

    With ``name``, the listing is restricted to that optimizer (aliases
    resolve); an unknown name raises
    :class:`~repro.study.registry.UnknownOptimizerError`.  The HTTP API's
    ``/api/optimizers`` endpoint serves exactly this structure.
    """
    from repro.study.registry import optimizer_specs, resolve_optimizer
    specs = optimizer_specs()
    if name is not None:
        specs = [resolve_optimizer(name)]
    return [{
        "name": spec.name,
        "aliases": list(spec.aliases),
        "class": spec.cls.__name__,
        "constrained": spec.supports_constrained,
        "unconstrained": spec.supports_unconstrained,
        "requires_source": spec.requires_source,
        "requires_source_data": spec.requires_source_data,
        "description": spec.description,
    } for spec in specs]


def _command_list_optimizers(args) -> int:
    from repro.study.registry import UnknownOptimizerError
    try:
        entries = optimizer_entries(getattr(args, "name", None))
    except UnknownOptimizerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNKNOWN_NAME
    if args.as_json:
        print(json.dumps(entries, indent=2))
        return 0
    from repro.study.registry import optimizer_specs, resolve_optimizer
    specs = optimizer_specs()
    if getattr(args, "name", None) is not None:
        specs = [resolve_optimizer(args.name)]
    width = max(len(spec.name) for spec in specs)
    print(f"{'NAME':<{width}}  PROBLEMS     TRANSFER  ALIASES")
    for spec in specs:
        problems = ("both" if spec.supports_constrained
                    and spec.supports_unconstrained
                    else "constrained" if spec.supports_constrained
                    else "fom-only")
        transfer = ("source" if spec.requires_source
                    else "data" if spec.requires_source_data else "-")
        aliases = ", ".join(spec.aliases) or "-"
        print(f"{spec.name:<{width}}  {problems:<11}  {transfer:<8}  {aliases}")
        if spec.description:
            print(f"{'':<{width}}    {spec.description}")
    return 0


def _problem_options(cls) -> dict[str, str]:
    """Constructor keywords a spec's ``problem_options`` may set.

    Introspected from the registered class, so plugins are covered with
    zero bookkeeping.  ``technology`` is excluded (it is a top-level spec
    field) and ``**kwargs`` pass-throughs surface as ``"..."``.
    """
    import inspect
    options: dict[str, str] = {}
    for parameter in inspect.signature(cls.__init__).parameters.values():
        if parameter.name in ("self", "technology"):
            continue
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            options["..."] = "forwarded to the wrapped problem"
        elif parameter.kind is not inspect.Parameter.VAR_POSITIONAL:
            default = ("required" if parameter.default is inspect.Parameter.empty
                       else repr(parameter.default))
            options[parameter.name] = default
    return options


def _command_list_circuits(args) -> int:
    """Legacy alias: keeps the original ``--json`` shape (a name list)."""
    from repro.circuits import available_problems
    if args.as_json:
        print(json.dumps(available_problems(), indent=2))
        return 0
    return _command_list_problems(args)


def problem_entries(name: str | None = None) -> list[dict]:
    """Machine-readable problem listing (what ``--json`` prints).

    With ``name``, only that problem is described; an unknown name raises
    :class:`KeyError`.  The HTTP API's ``/api/problems`` endpoint serves
    exactly this structure.
    """
    from repro.circuits import available_problems, make_problem
    from repro.circuits.registry import _PROBLEMS
    names = available_problems()
    if name is not None:
        key = name.lower()
        if key not in names:
            from repro.utils.validation import suggestion_hint
            raise KeyError(f"unknown problem {name!r}"
                           f"{suggestion_hint(key, names)}")
        names = [key]
    entries = []
    for entry_name in names:
        problem = make_problem(entry_name)
        try:
            entries.append({
                "name": entry_name,
                "objective": problem.objective,
                "minimize": problem.minimize,
                "n_design_variables": problem.design_space.dim,
                "constraints": [
                    f"{c.name} {'>=' if c.sense == 'ge' else '<='} {c.threshold:g}"
                    for c in problem.constraints],
                "problem_options": _problem_options(_PROBLEMS[entry_name]),
            })
        finally:
            problem.close()
    return entries


def _command_list_problems(args) -> int:
    try:
        entries = problem_entries(getattr(args, "name", None))
    except KeyError as exc:
        # KeyError reprs its message; unwrap for a clean one-line error.
        print(f"error: {exc.args[0] if exc.args else exc}", file=sys.stderr)
        return EXIT_UNKNOWN_NAME
    if args.as_json:
        print(json.dumps(entries, indent=2))
        return 0
    for entry in entries:
        direction = "minimise" if entry["minimize"] else "maximise"
        print(f"{entry['name']}: {direction} {entry['objective']}, "
              f"{entry['n_design_variables']} variables, "
              f"s.t. {', '.join(entry['constraints']) or '(unconstrained)'}")
        options = ", ".join(f"{key}={value}" for key, value
                            in entry["problem_options"].items())
        print(f"  problem_options: {options or '(none)'}")
    return 0


_COMMANDS = {
    "run": _command_run,
    "resume": _command_resume,
    "list-optimizers": _command_list_optimizers,
    "list-problems": _command_list_problems,
    "list-circuits": _command_list_circuits,
    "worker": _command_worker,
    "dashboard": _command_dashboard,
    "db": _command_db,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except KeyboardInterrupt:
        print("interrupted (checkpoints, if enabled, are resumable)",
              file=sys.stderr)
        return 130
    except (ValueError, OSError, KeyError, ReproError) as exc:
        # SpecError, UnknownOptimizerError, CheckpointError and unreadable
        # files all land here: user errors get one clean line, not a trace.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
