"""Transfer-source construction for studies.

Home of :func:`make_source_model` (formerly in ``experiments/runner.py``):
the study layer builds sources declaratively from
:class:`~repro.study.spec.TransferSpec`, and the experiment harnesses import
it from here.
"""

from __future__ import annotations

import numpy as np

from repro.circuits import FOMProblem, make_problem
from repro.core import SourceModel


def make_source_model(circuit: str, technology: str, n_samples: int = 200,
                      seed: int = 0, train_iters: int = 60,
                      fom: bool = False) -> SourceModel:
    """Build a frozen source model from random simulations of a source circuit.

    This mirrors the paper's transfer setup ("each experiment provides 200
    random samples for the source data").  With ``fom=True`` the source
    outputs are the scalar FOM instead of the raw metric vector.
    """
    problem = make_problem(circuit, technology)
    if fom:
        problem = FOMProblem(problem, n_normalization_samples=min(100, n_samples), rng=seed)
    rng = np.random.default_rng(seed)
    designs = problem.design_space.sample(n_samples, rng=rng)
    evaluations = problem.evaluate_batch(designs)
    x_unit = problem.design_space.to_unit(np.array([e.x for e in evaluations]))
    if fom:
        y = np.array([[e.metrics["fom"]] for e in evaluations])
        names = ["fom"]
    else:
        y = problem.metrics_matrix(evaluations)
        names = problem.metric_names
    return SourceModel(x_unit, y, metric_names=names, train_iters=train_iters)
