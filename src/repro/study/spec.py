"""Declarative run specifications: a study as plain, serializable data.

A :class:`StudySpec` captures everything needed to run one optimization
study -- problem, optimizer, budget, batch size, seeds, execution backend and
transfer-source configuration -- as a dataclass constructible from a plain
dict or JSON file, so runs can be versioned, shipped to workers, replayed
from checkpoints and launched from the ``python -m repro`` command line.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any

from repro.engine.backends import BACKEND_ENV_VAR, available_backends
from repro.errors import OptimizationError
from repro.utils.validation import suggestion_hint


class SpecError(ValueError):
    """Raised for malformed or inconsistent study specifications."""


def _unknown_key_error(kind: str, key: str, known) -> SpecError:
    return SpecError(f"unknown {kind} field {key!r}{suggestion_hint(key, known)}; "
                     f"known fields: {sorted(known)}")


@dataclass(frozen=True)
class TransferSpec:
    """Declarative transfer-source configuration.

    Describes the source circuit whose random simulations train the frozen
    :class:`~repro.core.SourceModel` consumed by ``kato_tl`` (or, with
    ``fom=true``, the raw ``(x, fom)`` observations consumed by ``tlmbo``).
    """

    circuit: str
    technology: str = "180nm"
    n_samples: int = 100
    seed: int | None = None          #: defaults to the study seed
    train_iters: int = 60
    fom: bool = False                #: scalar-FOM outputs (TLMBO-style source)

    def __post_init__(self) -> None:
        if self.n_samples < 1:
            raise SpecError(f"transfer.n_samples must be >= 1, got {self.n_samples}")
        if self.train_iters < 0:
            raise SpecError(f"transfer.train_iters must be >= 0, got {self.train_iters}")

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TransferSpec":
        known = {f.name for f in fields(cls)}
        for key in data:
            if key not in known:
                raise _unknown_key_error("transfer spec", key, known)
        return cls(**data)


@dataclass(frozen=True)
class StudySpec:
    """One declarative optimization study.

    Every field is plain data (:meth:`to_dict` / :meth:`from_dict` round-trip
    through JSON), and the spec is frozen so a running study cannot drift
    from the configuration recorded in its checkpoint header.
    """

    optimizer: str                               #: registry name or alias
    circuit: str                                 #: circuits-registry name
    technology: str = "180nm"
    n_simulations: int = 60                      #: total simulation budget
    n_init: int = 10                             #: random initial designs
    batch_size: int | None = None                #: None keeps optimizer default
    seed: int = 0
    n_seeds: int = 1                             #: independent repetitions
    backend: str | None = None                   #: evaluation backend (None = serial)
    max_workers: int | None = None
    cache: bool = True                           #: design-level result cache
    quick: bool = True                           #: reduced surrogate budgets
    fom: bool = False                            #: wrap in the Eq.-2 FOM objective
    fom_normalization_samples: int = 100
    fom_normalization: dict[str, tuple[float, float]] | None = None
    transfer: TransferSpec | None = None
    optimizer_options: dict[str, Any] = field(default_factory=dict)
    problem_options: dict[str, Any] = field(default_factory=dict)
    tag: str = ""                                #: free-form label for reports
    #: Path of a SQLite results store (see :mod:`repro.service`).  When set,
    #: ``python -m repro run`` checkpoints the study into the store instead
    #: of a JSONL file (an explicit ``--db`` / ``--checkpoint`` flag wins).
    results_db: str | None = None

    # ------------------------------------------------------------------ #
    # validation                                                          #
    # ------------------------------------------------------------------ #
    def __post_init__(self) -> None:
        if not self.optimizer:
            raise SpecError("spec needs an optimizer name")
        if not self.circuit:
            raise SpecError("spec needs a circuit name")
        if self.n_simulations < 1:
            raise SpecError(f"n_simulations must be >= 1, got {self.n_simulations}")
        if self.n_init < 0:
            raise SpecError(f"n_init must be >= 0, got {self.n_init}")
        if self.batch_size is not None and self.batch_size < 1:
            raise SpecError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.n_seeds < 1:
            raise SpecError(f"n_seeds must be >= 1, got {self.n_seeds}")
        if self.backend is not None and self.backend not in available_backends():
            raise SpecError(f"unknown backend {self.backend!r}; "
                            f"available: {available_backends()}")

    def validate(self) -> "StudySpec":
        """Resolve names against both registries, failing fast with hints."""
        from repro.circuits import available_problems
        from repro.study.registry import resolve_optimizer
        resolve_optimizer(self.optimizer)
        if self.circuit.lower() not in available_problems():
            raise _unknown_key_error("circuit", self.circuit.lower(),
                                     available_problems())
        if self.transfer is not None:
            if self.transfer.circuit.lower() not in available_problems():
                raise _unknown_key_error("transfer circuit",
                                         self.transfer.circuit.lower(),
                                         available_problems())
        return self

    # ------------------------------------------------------------------ #
    # serialization                                                       #
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "StudySpec":
        """Build a spec from a plain dict (e.g. parsed JSON), with hints."""
        data = dict(data)
        known = {f.name for f in fields(cls)}
        for key in data:
            if key not in known:
                raise _unknown_key_error("study spec", key, known)
        transfer = data.get("transfer")
        if isinstance(transfer, dict):
            data["transfer"] = TransferSpec.from_dict(transfer)
        for key in ("optimizer_options", "problem_options"):
            if key not in data:
                continue
            options = data[key]
            if options is None:
                data[key] = {}       # explicit JSON null = "no options"
            elif not isinstance(options, dict):
                raise SpecError(f"{key} must be a mapping, "
                                f"got {type(options).__name__}")
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "StudySpec":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str | os.PathLike) -> "StudySpec":
        with open(path, encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as exc:
                raise SpecError(f"{path} is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise SpecError(f"{path} must contain a JSON object, "
                            f"got {type(data).__name__}")
        return cls.from_dict(data)

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-serializable dict (inverse of :meth:`from_dict`)."""
        return asdict(self)

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str | os.PathLike) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")

    # ------------------------------------------------------------------ #
    # seeds                                                               #
    # ------------------------------------------------------------------ #
    def spawn_seeds(self) -> list[int]:
        """Per-repetition integer seeds (stable function of ``seed``).

        Integer child seeds (rather than generator objects) keep every
        repetition individually serializable, so any one seed of a
        multi-seed study can be re-run or resumed on its own.
        """
        if self.n_seeds == 1:
            return [int(self.seed)]
        from repro.utils.random import spawn_seed_ints
        return spawn_seed_ints(self.seed, self.n_seeds)

    def for_seed(self, seed: int) -> "StudySpec":
        """A single-repetition copy of this spec pinned to one seed.

        An unset ``transfer.seed`` is pinned to the *current* (parent) seed
        before the repetition seed replaces it, so every child repetition --
        and any resume of its checkpoint, on any runner backend -- rebuilds
        the identical transfer source.
        """
        transfer = self.transfer
        if transfer is not None and transfer.seed is None:
            transfer = replace(transfer, seed=int(self.seed))
        return replace(self, seed=int(seed), n_seeds=1, transfer=transfer)

    # ------------------------------------------------------------------ #
    # backend resolution                                                  #
    # ------------------------------------------------------------------ #
    def resolved_backend(self) -> str:
        """The evaluation backend this study will use.

        ``StudySpec.backend`` is the one documented path.  When it is unset
        and the legacy ``REPRO_ENGINE_BACKEND`` environment variable names a
        backend, that value is honoured once more with a
        :class:`DeprecationWarning`; the variable will stop affecting
        studies in a future release.
        """
        if self.backend is not None:
            return self.backend
        env = os.environ.get(BACKEND_ENV_VAR, "").strip().lower()
        if env and env != "serial":
            warnings.warn(
                f"selecting the evaluation backend via {BACKEND_ENV_VAR} is "
                "deprecated for studies; set StudySpec.backend "
                f"(e.g. \"backend\": {env!r} in the spec file) instead",
                DeprecationWarning, stacklevel=2)
            if env in available_backends():
                return env
            raise SpecError(f"{BACKEND_ENV_VAR}={env!r} names an unknown "
                            f"backend; available: {available_backends()}")
        return "serial"

    # ------------------------------------------------------------------ #
    # builders                                                            #
    # ------------------------------------------------------------------ #
    def build_problem(self):
        """Instantiate the (possibly FOM-wrapped) problem with its engine.

        ``problem_options`` is forwarded to the problem constructor -- e.g.
        ``{"corners": [...], "backend": "thread"}`` for a ``*_corners``
        problem, or ``{"load_capacitance": 5e-12}`` for an op-amp -- and must
        stay JSON-plain so checkpointed specs rebuild the identical problem.
        """
        from repro.circuits import FOMProblem, make_problem
        from repro.engine import EvaluationEngine
        problem = make_problem(self.circuit, self.technology,
                               **self.problem_options)
        if self.fom:
            if self.fom_normalization is not None:
                problem = FOMProblem(problem, normalization={
                    name: tuple(bounds)
                    for name, bounds in self.fom_normalization.items()})
            else:
                # Deterministic in the study seed, so a resumed study
                # reconstructs identical normalisation ranges.
                problem = FOMProblem(
                    problem,
                    n_normalization_samples=self.fom_normalization_samples,
                    rng=self.seed)
        engine = EvaluationEngine(problem, backend=self.resolved_backend(),
                                  cache=bool(self.cache),
                                  max_workers=self.max_workers)
        problem.attach_engine(engine)
        return problem

    def build_source(self):
        """Build the transfer source (model, and raw data when applicable).

        Returns ``(source_model, source_data)`` where either may be ``None``:
        a plain transfer spec yields a trained :class:`SourceModel`; with
        ``transfer.fom=true`` the raw ``(x_unit, fom)`` observations for
        TLMBO are derived from the same model.
        """
        if self.transfer is None:
            return None, None
        from repro.study.sources import make_source_model
        transfer = self.transfer
        seed = self.seed if transfer.seed is None else transfer.seed
        source = make_source_model(transfer.circuit, transfer.technology,
                                   n_samples=transfer.n_samples, seed=seed,
                                   train_iters=transfer.train_iters,
                                   fom=transfer.fom)
        source_data = (source.x, source.y[:, 0]) if transfer.fom else None
        return source, source_data

    def build_optimizer(self, problem, rng, source=None, source_data=None):
        """Build the configured optimizer through the registry."""
        from repro.study.registry import build_optimizer
        try:
            return build_optimizer(self.optimizer, problem, rng,
                                   quick=self.quick, source=source,
                                   source_data=source_data,
                                   batch_size=self.batch_size,
                                   options=self.optimizer_options)
        except TypeError as exc:
            # Bad optimizer_options keys surface here; keep the spec field in
            # the message so CLI users know what to fix.
            raise OptimizationError(
                f"building optimizer {self.optimizer!r} failed: {exc}; check "
                "optimizer_options against the optimizer's constructor") from exc
