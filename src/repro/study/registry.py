"""Decorator-based optimizer registry: one table for every optimizer name.

Mirrors :mod:`repro.circuits.registry` on the optimizer side.  Every
optimizer in :mod:`repro.bo`, :mod:`repro.baselines` and :mod:`repro.core`
registers itself with :func:`register_optimizer`, declaring

* its **canonical name** and **aliases** ("rs"/"random" for random search,
  "smac" for SMAC-RF, ...), so the CLI, the :class:`~repro.study.StudySpec`
  and the deprecated ``build_*_optimizer`` shims all resolve names from one
  table with one "did you mean" error path;
* its **capabilities** (constrained and/or unconstrained problems, whether a
  transfer source is required), so misconfigured studies fail with a clear
  message before any simulation is spent;
* a **builder** turning ``(problem, rng, context)`` into a configured
  optimizer instance, replacing the ``if/elif`` factories that used to live
  in ``experiments/runner.py``.

This module is a leaf: it imports only the standard library, so optimizer
modules can import the decorator without cycles.  Resolution lazily imports
the built-in optimizer packages, so ``resolve_optimizer("kato")`` works even
when :mod:`repro.core` has not been imported yet.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Callable


class UnknownOptimizerError(ValueError):
    """Raised when a name matches no registered optimizer (with a hint)."""


@dataclass
class BuildContext:
    """Everything a registered builder may need beyond ``(problem, rng)``.

    Attributes
    ----------
    quick:
        Use reduced surrogate/search budgets (the test and smoke scale);
        ``False`` selects the paper-scale defaults.
    source:
        A :class:`repro.core.SourceModel` for transfer optimizers.
    source_data:
        ``(x_unit, y)`` arrays for optimizers (TLMBO) that consume raw
        source observations instead of a trained source model.
    batch_size:
        Designs per iteration; ``None`` keeps the optimizer's default.
    options:
        Free-form optimizer keyword overrides from
        :attr:`repro.study.StudySpec.optimizer_options` (passed to the
        optimizer constructor, or to :class:`~repro.core.KATOConfig` for
        KATO-family entries).
    """

    quick: bool = True
    source: object | None = None
    source_data: tuple | None = None
    batch_size: int | None = None
    options: dict = field(default_factory=dict)

    def constructor_kwargs(self, **defaults) -> dict:
        """Merge quick-scale defaults, the batch size and user overrides."""
        kwargs = dict(defaults)
        if self.batch_size is not None:
            kwargs["batch_size"] = int(self.batch_size)
        kwargs.update(self.options)
        return kwargs


@dataclass(frozen=True)
class OptimizerSpec:
    """One registry row: identity, capabilities and the builder."""

    name: str
    cls: type
    builder: Callable
    aliases: tuple[str, ...] = ()
    supports_constrained: bool = True
    supports_unconstrained: bool = True
    requires_source: bool = False
    requires_source_data: bool = False
    description: str = ""

    def build(self, problem, rng, context: BuildContext | None = None):
        """Construct a configured optimizer for ``problem``.

        Validates the capability matrix first so a bad pairing fails with an
        actionable message instead of deep inside the optimizer.
        """
        context = context or BuildContext()
        constrained = getattr(problem, "n_constraints", 0) > 0
        if constrained and not self.supports_constrained:
            raise UnknownOptimizerError(
                f"optimizer {self.name!r} does not support constrained "
                f"problems (got {problem.name!r} with "
                f"{problem.n_constraints} constraints)")
        if not constrained and not self.supports_unconstrained:
            raise UnknownOptimizerError(
                f"optimizer {self.name!r} requires a constrained problem "
                f"(got unconstrained {problem.name!r})")
        if self.requires_source and context.source is None:
            raise UnknownOptimizerError(
                f"optimizer {self.name!r} requires a transfer source model; "
                "configure StudySpec.transfer (or pass source=...)")
        if self.requires_source_data and context.source_data is None:
            raise UnknownOptimizerError(
                f"optimizer {self.name!r} requires raw source data "
                "(x_unit, y); configure StudySpec.transfer with fom=true "
                "(or pass source_data=...)")
        return self.builder(self.cls, problem, rng, context)


_OPTIMIZERS: dict[str, OptimizerSpec] = {}
_ALIASES: dict[str, str] = {}

#: Modules whose import triggers the built-in registrations.
_BUILTIN_MODULES = ("repro.bo", "repro.baselines", "repro.core")
_builtins_loaded = False


def _default_builder(cls, problem, rng, context: BuildContext):
    return cls(problem, rng=rng, **context.constructor_kwargs())


def _canonical(name: str) -> str:
    """Case- and separator-insensitive key ("KATO-TL" -> "kato_tl")."""
    return str(name).strip().lower().replace("-", "_").replace(" ", "_")


def register_optimizer(name: str, *, aliases: tuple[str, ...] | list[str] = (),
                       builder: Callable | None = None,
                       supports_constrained: bool = True,
                       supports_unconstrained: bool = True,
                       requires_source: bool = False,
                       requires_source_data: bool = False,
                       description: str = "",
                       overwrite: bool = False):
    """Class decorator adding an optimizer to the registry.

    Parameters
    ----------
    name:
        Canonical name (lower-case, underscores).  Hyphenated and mixed-case
        spellings resolve automatically; ``aliases`` is for genuinely
        different spellings ("rs" for "random_search").
    builder:
        ``(cls, problem, rng, context) -> optimizer``; defaults to
        ``cls(problem, rng=rng, **context.constructor_kwargs())``.
    supports_constrained / supports_unconstrained:
        The capability matrix checked before construction.
    requires_source / requires_source_data:
        Whether a transfer source model / raw source observations must be
        supplied through the :class:`BuildContext`.

    The same class may be registered under several names with different
    builders (e.g. ``"kato"`` and ``"kato_tl"``).
    """
    canonical = _canonical(name)

    def decorator(cls):
        doc = (cls.__doc__ or "").strip()
        summary = description or (doc.splitlines()[0] if doc else "")
        spec = OptimizerSpec(
            name=canonical,
            cls=cls,
            builder=builder or _default_builder,
            aliases=tuple(_canonical(a) for a in aliases),
            supports_constrained=supports_constrained,
            supports_unconstrained=supports_unconstrained,
            requires_source=requires_source,
            requires_source_data=requires_source_data,
            description=summary,
        )
        if canonical in _OPTIMIZERS and not overwrite:
            raise ValueError(f"optimizer {name!r} is already registered "
                             f"(to {_OPTIMIZERS[canonical].cls.__name__}); pass "
                             "overwrite=True to replace it")
        _OPTIMIZERS[canonical] = spec
        for alias in spec.aliases:
            existing = _ALIASES.get(alias)
            if existing not in (None, canonical) and not overwrite:
                raise ValueError(f"alias {alias!r} already points to {existing!r}")
            _ALIASES[alias] = canonical
        return cls

    return decorator


def _ensure_builtins() -> None:
    """Import the built-in optimizer packages so their entries exist."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    _builtins_loaded = True


def available_optimizers() -> list[str]:
    """Sorted canonical optimizer names."""
    _ensure_builtins()
    return sorted(_OPTIMIZERS)


def optimizer_aliases() -> dict[str, str]:
    """The alias table, ``{alias: canonical_name}`` (one source of truth)."""
    _ensure_builtins()
    return dict(sorted(_ALIASES.items()))


def optimizer_specs() -> list[OptimizerSpec]:
    """All registry rows, sorted by canonical name (for the CLI listing)."""
    _ensure_builtins()
    return [_OPTIMIZERS[name] for name in sorted(_OPTIMIZERS)]


def resolve_optimizer(name: str) -> OptimizerSpec:
    """Look up one optimizer by canonical name or alias.

    Raises :class:`UnknownOptimizerError` with a "did you mean" hint built
    from the full name+alias vocabulary.
    """
    _ensure_builtins()
    key = _canonical(name)
    key = _ALIASES.get(key, key)
    spec = _OPTIMIZERS.get(key)
    if spec is not None:
        return spec
    from repro.utils.validation import suggestion_hint
    vocabulary = sorted(set(_OPTIMIZERS) | set(_ALIASES))
    raise UnknownOptimizerError(
        f"unknown optimizer {name!r}{suggestion_hint(key, vocabulary)}; "
        f"available: {', '.join(sorted(_OPTIMIZERS))}")


def build_optimizer(name: str, problem, rng, *, quick: bool = True,
                    source=None, source_data=None, batch_size: int | None = None,
                    options: dict | None = None):
    """Resolve ``name`` and build a configured optimizer (the one front door)."""
    context = BuildContext(quick=quick, source=source, source_data=source_data,
                           batch_size=batch_size, options=dict(options or {}))
    return resolve_optimizer(name).build(problem, rng, context)
