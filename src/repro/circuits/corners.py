"""Robust sizing across PVT corners: the ``*_corners`` problem family.

A :class:`CornerSizingProblem` wraps one of the registered testbench
problems and evaluates every design at a set of
:class:`~repro.bench.CornerSpec` conditions -- per-corner technology cards
derived with :func:`~repro.bench.apply_corner` and per-corner analysis
temperatures -- fanning the simulations through the same pluggable execution
backends as the batched evaluation engine.  The reported metrics are the
*worst case* across corners (each constraint against its sense, the
objective against its direction), so a feasible design is feasible at every
corner: robust sizing as a drop-in
:class:`~repro.bo.problem.OptimizationProblem` that every optimizer and the
whole Study API consume unchanged.

The nominal corner is always evaluated first and is bit-identical to the
wrapped problem's own simulation, so a corner study's nominal column is
directly comparable to the non-robust study of the same circuit.
"""

from __future__ import annotations

import hashlib

from repro.bench.corners import (
    CornerFailure,
    CornerSpec,
    CornerSweep,
    apply_corner,
    standard_corners,
    worst_case_metrics,
)
from repro.circuits.bandgap import BandgapReference
from repro.circuits.base import CircuitSizingProblem
from repro.circuits.ldo import LowDropoutRegulator
from repro.circuits.three_stage_opamp import ThreeStageOpAmp
from repro.circuits.two_stage_opamp import TwoStageOpAmp


class CornerSizingProblem(CircuitSizingProblem):
    """Worst-case-across-corners variant of a testbench sizing problem.

    Parameters
    ----------
    base_name:
        Registry-style short name of the wrapped problem (used to derive
        this problem's name, ``<base_name>_corners_<node>``).
    base_cls:
        The wrapped :class:`CircuitSizingProblem` subclass; must be
        constructible as ``base_cls(technology=..., **base_kwargs)``.
    technology:
        Nominal node name or card; per-corner cards are derived from it.
    corners:
        :class:`~repro.bench.CornerSpec` instances (or plain dicts with the
        same fields, e.g. from a JSON study spec); defaults to the five-
        corner :func:`~repro.bench.standard_corners` set.  The first corner
        is the aggregation reference and should be the nominal one.
    backend:
        Execution backend for the corner fan-out (name, instance or ``None``
        for the environment default).  Composes with design-level dispatch:
        inside an engine worker the default resolves to serial.
    max_workers:
        Worker count for pooled backends created from a name.
    base_kwargs:
        Forwarded to every per-corner instance of ``base_cls``.
    """

    #: The wrapper has no bench of its own -- its *corner fan-out* is the
    #: batched unit (CornerSweep stacks the per-corner benches instead).
    supports_batch_simulation = False

    def __init__(self, base_name: str, base_cls: type,
                 technology="180nm", corners=None,
                 backend=None, max_workers: int | None = None,
                 **base_kwargs):
        if corners is None:
            corners = standard_corners()
        corners = tuple(corner if isinstance(corner, CornerSpec)
                        else CornerSpec.from_dict(dict(corner))
                        for corner in corners)
        nominal = base_cls(technology=technology, **base_kwargs)
        children = []
        for corner in corners:
            child = base_cls(technology=apply_corner(nominal.technology, corner),
                             **base_kwargs)
            child.sim_temperature = float(corner.temperature)
            children.append(child)
        super().__init__(name=f"{base_name}_corners",
                         technology=nominal.technology,
                         design_space=nominal.design_space,
                         objective=nominal.objective,
                         minimize=nominal.minimize,
                         constraints=list(nominal.constraints))
        self.corners = corners
        self._children = children
        self._sweep = CornerSweep(corners, backend=backend,
                                  max_workers=max_workers)

    # ------------------------------------------------------------------ #
    # evaluation                                                          #
    # ------------------------------------------------------------------ #
    def testbench(self):
        """Corner problems delegate to their children's benches."""
        raise NotImplementedError(
            f"{self.name} is a corner sweep over {len(self.corners)} benches; "
            "use .children[i].bench for one corner's testbench")

    @property
    def children(self) -> list[CircuitSizingProblem]:
        """Per-corner problem instances, in corner order (nominal first)."""
        return list(self._children)

    def simulate(self, design: dict[str, float]) -> dict[str, float]:
        outcomes = self._sweep.run(self._children, design)
        per_corner = []
        for outcome in outcomes:
            if isinstance(outcome, CornerFailure):
                # A corner whose simulation *raised* (rather than returning
                # pessimised metrics itself) pessimises the whole design.
                return self.failed_metrics()
            per_corner.append(outcome)
        return worst_case_metrics(per_corner, self.objective, self.minimize,
                                  self.constraints)

    def failed_metrics(self) -> dict[str, float]:
        metrics = self._children[0].failed_metrics()
        metrics[f"{self.objective}_nominal"] = metrics[self.objective]
        return metrics

    # ------------------------------------------------------------------ #
    # identity / bookkeeping                                              #
    # ------------------------------------------------------------------ #
    @property
    def cache_token(self) -> str:
        """Fold every corner (conditions and per-corner child identity) in.

        Two corner problems sharing a name but differing in corner set,
        temperature, supply scale or any child configuration must never
        share design-cache entries.
        """
        parts = (tuple(child.cache_token for child in self._children),
                 tuple(corner.describe() for corner in self.corners))
        digest = hashlib.sha1(repr(parts).encode()).hexdigest()[:16]
        return f"{self.name}:{digest}"

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["corners"] = [corner.describe() for corner in self.corners]
        return info

    def close(self) -> None:
        """Shut down the corner fan-out backend's pool (idempotent)."""
        self._sweep.close()


class TwoStageOpAmpCorners(CornerSizingProblem):
    """Two-stage op-amp sized for its worst PVT corner."""

    def __init__(self, technology="180nm", corners=None, backend=None,
                 max_workers=None, **kwargs):
        super().__init__("two_stage_opamp", TwoStageOpAmp,
                         technology=technology, corners=corners,
                         backend=backend, max_workers=max_workers, **kwargs)


class ThreeStageOpAmpCorners(CornerSizingProblem):
    """Three-stage op-amp sized for its worst PVT corner."""

    def __init__(self, technology="180nm", corners=None, backend=None,
                 max_workers=None, **kwargs):
        super().__init__("three_stage_opamp", ThreeStageOpAmp,
                         technology=technology, corners=corners,
                         backend=backend, max_workers=max_workers, **kwargs)


class BandgapReferenceCorners(CornerSizingProblem):
    """Bandgap reference sized for its worst PVT corner."""

    def __init__(self, technology="180nm", corners=None, backend=None,
                 max_workers=None, **kwargs):
        super().__init__("bandgap", BandgapReference,
                         technology=technology, corners=corners,
                         backend=backend, max_workers=max_workers, **kwargs)


class LowDropoutRegulatorCorners(CornerSizingProblem):
    """LDO sized for its worst PVT corner."""

    def __init__(self, technology="180nm", corners=None, backend=None,
                 max_workers=None, **kwargs):
        super().__init__("ldo", LowDropoutRegulator,
                         technology=technology, corners=corners,
                         backend=backend, max_workers=max_workers, **kwargs)
