"""Three-stage ring oscillator (VCO core): frequency, power, phase noise.

Topology: three identical CMOS inverters in a ring (``n1 -> n2 -> n3 ->
n1``) with an explicit stage capacitor on every node -- the capacitor is
the frequency-setting element (a varactor in a real VCO), so the sized
inverter drive against it sets the per-stage delay and the oscillation
frequency ``f = 1 / (2 * 3 * t_stage)``.

Simulation recipe: the DC operating point of an odd ring is its *metastable*
symmetric state (every node at the inverter switching threshold, every
device conducting).  The transient starts there and a brief current kick
into ``n1`` breaks the symmetry; the ring spins up and the steady-state
frequency is measured from the rising-edge crossings of mid-supply in the
second half of the window.  The same metastable bias is also exactly where
small-signal analyses are meaningful for the ring:

* ``power`` -- supply draw at the metastable point (uW): every stage
  conducts its short-circuit current there, the class-A worst case that
  bounds the oscillator's standing current;
* ``pn_proxy`` -- integrated output noise (uVrms) of the linearised ring at
  ``n1`` via the adjoint noise analysis.  Voltage noise at the switching
  threshold divided by the slew rate is the classic first-order jitter
  estimate, so this integrated noise is the device-physics proxy for phase
  noise: flicker-heavy rings score worse, larger (lower ``1/f``, higher
  ``gm``) devices score better.

Metrics: ``freq`` (MHz, constrained from below), ``power`` (uW, the
objective), ``pn_proxy`` (uVrms) and ``v_mid`` (V, the metastable level).
"""

from __future__ import annotations

import numpy as np

from repro import bench
from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.problem import Constraint
from repro.circuits.base import CircuitSizingProblem
from repro.pdk import Technology
from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    Mosfet,
    PulseWaveform,
    VoltageSource,
)
from repro.spice.ac import logspace_frequencies

_N_STAGES = 3


def _ring_design_space(technology: Technology) -> DesignSpace:
    min_w, max_w = technology.min_width, technology.max_width
    min_l, max_l = technology.min_length, technology.max_length
    w_cap = min(max_w, min_w * 100)
    return DesignSpace([
        DesignVariable("w_n", min_w * 2, w_cap, log_scale=True, unit="m"),
        DesignVariable("w_p", min_w * 4, w_cap, log_scale=True, unit="m"),
        DesignVariable("l_gate", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("c_stage", 0.2e-12, 5e-12, log_scale=True, unit="F"),
    ])


class RingOscillatorVCO(CircuitSizingProblem):
    """Size the ring for minimum standing power at a target frequency."""

    def __init__(self, technology: str | Technology = "180nm",
                 min_freq_mhz: float = 50.0, t_stop: float = 250e-9,
                 kick_current: float = 100e-6):
        tech = technology
        if isinstance(tech, str):
            from repro.pdk import get_technology
            tech = get_technology(tech)
        constraints = [Constraint("freq", float(min_freq_mhz), "ge")]
        super().__init__(name="ring_vco", technology=tech,
                         design_space=_ring_design_space(tech),
                         objective="power", minimize=True,
                         constraints=constraints)
        self.t_stop = float(t_stop)
        self.kick_current = float(kick_current)
        self.kick_delay = self.t_stop * 0.005
        self.kick_width = self.t_stop * 0.005

    # ------------------------------------------------------------------ #
    # netlist                                                             #
    # ------------------------------------------------------------------ #
    def build_circuit(self, design: dict[str, float]) -> Circuit:
        tech = self.technology
        w_n = tech.clamp_width(design["w_n"])
        w_p = tech.clamp_width(design["w_p"])
        l_gate = tech.clamp_length(design["l_gate"])
        c_stage = max(design["c_stage"], 1e-15)
        circuit = Circuit(f"ring_vco_{tech.name}")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        nodes = [f"n{i + 1}" for i in range(_N_STAGES)]
        for index, out in enumerate(nodes):
            inp = nodes[index - 1]  # stage input is the previous output
            circuit.add(Mosfet(f"MN{index + 1}", out, inp, "0", "0",
                               tech.nmos, w_n, l_gate))
            circuit.add(Mosfet(f"MP{index + 1}", out, inp, "vdd", "vdd",
                               tech.pmos, w_p, l_gate))
            circuit.add(Capacitor(f"C{index + 1}", out, "0", c_stage))
        # Start-up kick: a brief current pulse pulls n1 off the metastable
        # point; dc=0 keeps the operating point the symmetric ring bias.
        circuit.add(CurrentSource(
            "IKICK", "n1", "0", dc=0.0,
            waveform=PulseWaveform(initial=0.0, pulsed=self.kick_current,
                                   delay=self.kick_delay,
                                   width=self.kick_width)))
        return circuit

    # ------------------------------------------------------------------ #
    # measures                                                            #
    # ------------------------------------------------------------------ #
    @property
    def noise_frequencies(self) -> np.ndarray:
        """Noise grid: 100 Hz to 10 GHz, 10 points per decade."""
        return logspace_frequencies(1e2, 1e10, points_per_decade=10)

    def _measure_freq(self, ctx: "bench.MeasureContext") -> float:
        """Oscillation frequency (MHz) from mid-supply rising crossings in
        the second half of the window (0 when the ring never spins up)."""
        result = ctx.result("tran")
        times = result.times
        values = result.voltage("n1")
        mask = times >= 0.5 * self.t_stop
        t, v = times[mask], values[mask]
        threshold = 0.5 * self.technology.vdd
        above = v >= threshold
        rising = np.nonzero(~above[:-1] & above[1:])[0]
        if rising.size < 2:
            return 0.0
        # Linear interpolation of each crossing instant, then mean period.
        t0, t1 = t[rising], t[rising + 1]
        v0, v1 = v[rising], v[rising + 1]
        crossings = t0 + (threshold - v0) / (v1 - v0) * (t1 - t0)
        period = float(np.mean(np.diff(crossings)))
        if period <= 0.0:
            return 0.0
        return float(1e-6 / period)

    def _measure_power(self, ctx: "bench.MeasureContext") -> float:
        """Standing (short-circuit) power at the metastable bias, in uW."""
        op = ctx.result("op")
        current = abs(ctx.circuit("main").device("VDD")
                      .branch_current(op.voltages))
        return float(current * self.technology.vdd * 1e6)

    def _measure_v_mid(self, ctx: "bench.MeasureContext") -> float:
        return float(ctx.result("op").voltage("n1"))

    def testbench(self) -> bench.Testbench:
        return bench.Testbench(
            name=self.name,
            builders={"main": self.build_circuit},
            analyses=[
                bench.OPSpec("op"),
                bench.NoiseSpec("noise", frequencies=self.noise_frequencies,
                                output="n1", op="op"),
                bench.OPSpec("op_tran", transient=True),
                bench.TranSpec("tran", t_stop=self.t_stop,
                               observe=("n1",), op="op_tran"),
            ],
            measures=[
                bench.Measure("freq", self._measure_freq),
                bench.Measure("power", self._measure_power),
                bench.integrated_noise_uvrms("noise", name="pn_proxy"),
                bench.Measure("v_mid", self._measure_v_mid),
            ],
            temperature=self.sim_temperature)

    def failed_metrics(self) -> dict[str, float]:
        return {**super().failed_metrics(), "pn_proxy": 1e6, "v_mid": 0.0}
