"""Factory for the evaluation problems by name and technology node.

The registry is open: the paper's testbenches register themselves below, and
downstream code (plugins, tests, private testbenches) can add entries with
the :func:`register_problem` decorator so :func:`make_problem`, the Study
API and the ``python -m repro`` CLI all see them through one table.
"""

from __future__ import annotations

from repro.circuits.bandgap import BandgapReference
from repro.circuits.base import CircuitSizingProblem
from repro.circuits.comparator import DynamicComparator
from repro.circuits.corners import (
    BandgapReferenceCorners,
    LowDropoutRegulatorCorners,
    ThreeStageOpAmpCorners,
    TwoStageOpAmpCorners,
)
from repro.circuits.ldo import LowDropoutRegulator
from repro.circuits.montecarlo import (
    BandgapReferenceYield,
    DynamicComparatorYield,
    LowDropoutRegulatorYield,
    ThreeStageOpAmpYield,
    TwoStageOpAmpYield,
)
from repro.circuits.ring_vco import RingOscillatorVCO
from repro.circuits.robust import (
    BandgapReferenceRobust,
    LowDropoutRegulatorRobust,
    TwoStageOpAmpRobust,
)
from repro.circuits.three_stage_opamp import ThreeStageOpAmp
from repro.circuits.two_stage_opamp import TwoStageOpAmp, TwoStageOpAmpSettling
from repro.utils.validation import suggestion_hint

_PROBLEMS: dict[str, type] = {}


def register_problem(name: str, *, overwrite: bool = False):
    """Class decorator adding a sizing problem to the :func:`make_problem` table.

    The decorated class must be constructible as ``cls(technology=..., **kwargs)``.
    Registration is idempotent only with ``overwrite=True``; a silent
    double-registration under one name is almost always a bug.
    """
    key = name.lower()

    def decorator(cls):
        if key in _PROBLEMS and not overwrite:
            raise ValueError(f"problem {name!r} is already registered "
                             f"(to {_PROBLEMS[key].__name__}); pass overwrite=True "
                             "to replace it")
        _PROBLEMS[key] = cls
        return cls

    return decorator


def available_problems() -> list[str]:
    """Names accepted by :func:`make_problem`."""
    return sorted(_PROBLEMS)


def make_problem(name: str, technology: str = "180nm", **kwargs) -> CircuitSizingProblem:
    """Instantiate one of the registered evaluation circuits.

    Parameters
    ----------
    name:
        A registered problem name (see :func:`available_problems`); the
        paper's circuits are ``"two_stage_opamp"``, ``"two_stage_opamp_settling"``,
        ``"three_stage_opamp"`` and ``"bandgap"``.
    technology:
        ``"180nm"`` or ``"40nm"``.
    """
    key = name.lower()
    if key not in _PROBLEMS:
        raise KeyError(f"unknown problem {name!r}{suggestion_hint(key, _PROBLEMS)}; "
                       f"available: {available_problems()}")
    return _PROBLEMS[key](technology=technology, **kwargs)


register_problem("two_stage_opamp")(TwoStageOpAmp)
register_problem("two_stage_opamp_settling")(TwoStageOpAmpSettling)
register_problem("three_stage_opamp")(ThreeStageOpAmp)
register_problem("bandgap")(BandgapReference)
register_problem("ldo")(LowDropoutRegulator)
register_problem("comparator")(DynamicComparator)
register_problem("ring_vco")(RingOscillatorVCO)
# Robust-sizing variants: the same circuits judged by their worst PVT corner.
register_problem("two_stage_opamp_corners")(TwoStageOpAmpCorners)
register_problem("three_stage_opamp_corners")(ThreeStageOpAmpCorners)
register_problem("bandgap_corners")(BandgapReferenceCorners)
register_problem("ldo_corners")(LowDropoutRegulatorCorners)
# Statistical variants: the same circuits judged by their Monte Carlo
# mismatch yield (objective s.t. specs hold with probability >= target).
register_problem("two_stage_opamp_yield")(TwoStageOpAmpYield)
register_problem("three_stage_opamp_yield")(ThreeStageOpAmpYield)
register_problem("bandgap_yield")(BandgapReferenceYield)
register_problem("ldo_yield")(LowDropoutRegulatorYield)
register_problem("comparator_yield")(DynamicComparatorYield)
# Joint robustness: worst-case-corner Monte Carlo mismatch yield.
register_problem("two_stage_opamp_robust")(TwoStageOpAmpRobust)
register_problem("bandgap_robust")(BandgapReferenceRobust)
register_problem("ldo_robust")(LowDropoutRegulatorRobust)
