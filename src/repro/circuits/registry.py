"""Factory for the evaluation problems by name and technology node."""

from __future__ import annotations

from repro.circuits.bandgap import BandgapReference
from repro.circuits.base import CircuitSizingProblem
from repro.circuits.three_stage_opamp import ThreeStageOpAmp
from repro.circuits.two_stage_opamp import TwoStageOpAmp, TwoStageOpAmpSettling

_PROBLEMS = {
    "two_stage_opamp": TwoStageOpAmp,
    "two_stage_opamp_settling": TwoStageOpAmpSettling,
    "three_stage_opamp": ThreeStageOpAmp,
    "bandgap": BandgapReference,
}


def available_problems() -> list[str]:
    """Names accepted by :func:`make_problem`."""
    return sorted(_PROBLEMS)


def make_problem(name: str, technology: str = "180nm", **kwargs) -> CircuitSizingProblem:
    """Instantiate one of the paper's evaluation circuits.

    Parameters
    ----------
    name:
        ``"two_stage_opamp"``, ``"two_stage_opamp_settling"``,
        ``"three_stage_opamp"`` or ``"bandgap"``.
    technology:
        ``"180nm"`` or ``"40nm"``.
    """
    key = name.lower()
    if key not in _PROBLEMS:
        raise KeyError(f"unknown problem {name!r}; available: {available_problems()}")
    return _PROBLEMS[key](technology=technology, **kwargs)
