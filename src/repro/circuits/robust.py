"""Joint corners-and-mismatch robustness: the ``*_robust`` problem family.

The ``*_corners`` problems certify a design against global process/voltage/
temperature shifts, the ``*_yield`` problems against local Pelgrom mismatch
-- but silicon experiences both at once, and the worst mismatch yield is
rarely found at the nominal corner (a slow-corner amplifier has less gain
margin to absorb offsets).  A :class:`RobustSizingProblem` composes the two
existing layers instead of inventing a third: one
:class:`~repro.circuits.montecarlo.YieldSizingProblem` child per PVT
corner, fanned out by the same :class:`~repro.bench.CornerSweep` the
corners family uses, folded by the same
:func:`~repro.bench.worst_case_metrics` aggregation.

The fold aggregates every constrained metric against its sense, so the
``yield`` constraint (``ge``) reduces to the **minimum across corners** --
the reported yield is the *worst-case-corner* mismatch yield, and a
feasible design holds its specs with the target probability at every
corner.  The nominal corner comes first, so the nominal column of a robust
study is directly comparable to the plain ``*_yield`` study.

The full fan-out is corners x samples simulations per design; robust
problems default to the three-corner subset (nominal plus the two
worst-case process corners at temperature extremes) and inherit the yield
family's adaptive early stopping, which prices clearly-good and
clearly-dead designs at ``n_min`` samples per corner.
"""

from __future__ import annotations

import hashlib

from repro.bench.corners import (
    CornerFailure,
    CornerSpec,
    CornerSweep,
    apply_corner,
    standard_corners,
    worst_case_metrics,
)
from repro.circuits.bandgap import BandgapReference
from repro.circuits.base import CircuitSizingProblem
from repro.circuits.ldo import LowDropoutRegulator
from repro.circuits.montecarlo import YieldSizingProblem
from repro.circuits.two_stage_opamp import TwoStageOpAmp


def default_robust_corners() -> tuple[CornerSpec, ...]:
    """Nominal plus the slow-hot and fast-cold extremes.

    The five-corner :func:`~repro.bench.standard_corners` set times the
    Monte Carlo sample count is the honest full sign-off; this three-corner
    subset keeps the default evaluation price at 3x a yield problem while
    still visiting both process extremes at their stressing temperatures.
    """
    by_name = {corner.name: corner for corner in standard_corners()}
    return (standard_corners()[0], by_name["ss_hot_low"],
            by_name["ff_cold_high"])


class RobustSizingProblem(CircuitSizingProblem):
    """Worst-case-corner mismatch yield: corners x Monte Carlo composed.

    Parameters
    ----------
    base_name:
        Registry-style short name of the wrapped problem (this problem is
        named ``<base_name>_robust_<node>``).
    base_cls:
        The wrapped :class:`CircuitSizingProblem` subclass; must be
        constructible as ``base_cls(technology=..., **base_kwargs)``.
    technology:
        Nominal node name or card; per-corner cards are derived from it.
    corners:
        :class:`~repro.bench.CornerSpec` instances or equivalent dicts;
        defaults to :func:`default_robust_corners`.  The first corner is
        the aggregation reference and should be the nominal one.
    yield_target:
        Per-corner mismatch yield constraint threshold (fraction).
    mc:
        :class:`~repro.mc.MonteCarloConfig` (or dict / ``None``) shared by
        every per-corner yield child.
    backend / max_workers:
        Execution backend for the corner fan-out; the sample fan-out inside
        each corner resolves its own backend (serial inside pool workers).
    base_kwargs:
        Forwarded to every per-corner base problem instance.
    """

    #: Corner fan-out of Monte Carlo fan-outs: the children orchestrate
    #: their own batched sample simulations; the wrapper has no bench.
    supports_batch_simulation = False

    def __init__(self, base_name: str, base_cls: type,
                 technology="180nm", corners=None,
                 yield_target: float = 0.9, mc=None,
                 backend=None, max_workers: int | None = None,
                 **base_kwargs):
        if corners is None:
            corners = default_robust_corners()
        corners = tuple(corner if isinstance(corner, CornerSpec)
                        else CornerSpec.from_dict(dict(corner))
                        for corner in corners)
        nominal = base_cls(technology=technology, **base_kwargs)
        children = []
        for corner in corners:
            child = YieldSizingProblem(
                base_name, base_cls,
                technology=apply_corner(nominal.technology, corner),
                yield_target=yield_target, mc=mc, **base_kwargs)
            child.sim_temperature = float(corner.temperature)
            child.base_problem.sim_temperature = float(corner.temperature)
            children.append(child)
        # The child constraints already include the yield spec; reuse the
        # first child's set so the wrapper classifies identically.
        super().__init__(name=f"{base_name}_robust",
                         technology=nominal.technology,
                         design_space=nominal.design_space,
                         objective=nominal.objective,
                         minimize=nominal.minimize,
                         constraints=list(children[0].constraints))
        self.yield_target = float(yield_target)
        self.corners = corners
        self._children = children
        self._sweep = CornerSweep(corners, backend=backend,
                                  max_workers=max_workers)

    # ------------------------------------------------------------------ #
    # evaluation                                                          #
    # ------------------------------------------------------------------ #
    def testbench(self):
        raise NotImplementedError(
            f"{self.name} fans Monte Carlo yield problems across "
            f"{len(self.corners)} corners; use "
            ".children[i].base_problem.bench for one corner's testbench")

    @property
    def children(self) -> list[YieldSizingProblem]:
        """Per-corner yield problems, in corner order (nominal first)."""
        return list(self._children)

    def mismatch_device_names(self) -> tuple[str, ...]:
        return self._children[0].mismatch_device_names()

    def simulate(self, design: dict[str, float]) -> dict[str, float]:
        outcomes = self._sweep.run(self._children, design)
        per_corner = []
        for outcome in outcomes:
            if isinstance(outcome, CornerFailure):
                return self.failed_metrics()
            per_corner.append(outcome)
        return worst_case_metrics(per_corner, self.objective, self.minimize,
                                  self.constraints)

    def failed_metrics(self) -> dict[str, float]:
        metrics = self._children[0].failed_metrics()
        metrics[f"{self.objective}_nominal"] = metrics[self.objective]
        return metrics

    # ------------------------------------------------------------------ #
    # identity / bookkeeping                                              #
    # ------------------------------------------------------------------ #
    @property
    def cache_token(self) -> str:
        """Fold every corner condition and per-corner child identity in."""
        parts = (tuple(child.cache_token for child in self._children),
                 tuple(corner.describe() for corner in self.corners))
        digest = hashlib.sha1(repr(parts).encode()).hexdigest()[:16]
        return f"{self.name}:{digest}"

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["corners"] = [corner.describe() for corner in self.corners]
        info["yield_target"] = self.yield_target
        info["monte_carlo"] = self._children[0].mc_config.describe()
        return info

    def close(self) -> None:
        """Shut down the fan-out backends (idempotent)."""
        self._sweep.close()
        for child in self._children:
            child.close()


class TwoStageOpAmpRobust(RobustSizingProblem):
    """Two-stage op-amp: worst-case-corner mismatch yield."""

    def __init__(self, technology="180nm", corners=None, yield_target=0.9,
                 mc=None, backend=None, max_workers=None, **kwargs):
        super().__init__("two_stage_opamp", TwoStageOpAmp,
                         technology=technology, corners=corners,
                         yield_target=yield_target, mc=mc, backend=backend,
                         max_workers=max_workers, **kwargs)


class BandgapReferenceRobust(RobustSizingProblem):
    """Bandgap reference: worst-case-corner mismatch yield."""

    def __init__(self, technology="180nm", corners=None, yield_target=0.9,
                 mc=None, backend=None, max_workers=None, **kwargs):
        super().__init__("bandgap", BandgapReference,
                         technology=technology, corners=corners,
                         yield_target=yield_target, mc=mc, backend=backend,
                         max_workers=max_workers, **kwargs)


class LowDropoutRegulatorRobust(RobustSizingProblem):
    """LDO: worst-case-corner mismatch yield."""

    def __init__(self, technology="180nm", corners=None, yield_target=0.9,
                 mc=None, backend=None, max_workers=None, **kwargs):
        super().__init__("ldo", LowDropoutRegulator,
                         technology=technology, corners=corners,
                         yield_target=yield_target, mc=mc, backend=backend,
                         max_workers=max_workers, **kwargs)
