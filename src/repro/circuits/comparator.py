"""Clocked dynamic comparator (StrongARM latch): decision time and offset.

Topology -- the classic StrongARM sense amplifier:

* clocked tail -- NMOS ``MTAIL`` enabling the input pair when the clock
  rises;
* input pair -- ``MIN1`` (gate ``inp``) discharging the internal node
  ``xn`` and ``MIN2`` (gate ``inn``) discharging ``xp``;
* regenerative latch -- cross-coupled NMOS (``MNL1``/``MNL2``, sources on
  the internal nodes) and cross-coupled PMOS (``MPL1``/``MPL2``);
* precharge -- clocked PMOS switches parking both outputs *and* both
  internal nodes at VDD while the clock is low;
* explicit load capacitors on both outputs.

The bench solves the precharged state (clock low) as the transient
operating point, then releases the clock with a fast
:class:`~repro.spice.StepWaveform` edge: the side whose input is higher
steers more tail current, its internal node discharges first, and the
cross-coupled pairs regenerate the millivolt-level imbalance to full swing.
With ``inp`` above ``inn`` the correct decision is ``outn`` low / ``outp``
high.

Metrics: ``t_decide`` (us, the objective) -- the time from the clock edge
to the differential output crossing half the supply; ``v_diff`` (V) -- the
final differential output, positive when the decision is correct; and
``decision`` (1/0) -- correctness, carried as a ``>= 0.5`` constraint so
the Monte Carlo yield wrapper's spec classification *is* the offset test:
``comparator_yield`` reports the probability that sampled Pelgrom mismatch
leaves the comparator resolving a ``input_overdrive`` (default 5 mV) input
correctly, i.e. the fraction of silicon whose input-referred offset is
below the overdrive.
"""

from __future__ import annotations

import numpy as np

from repro import bench
from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.problem import Constraint
from repro.circuits.base import CircuitSizingProblem
from repro.pdk import Technology
from repro.spice import (
    Capacitor,
    Circuit,
    Mosfet,
    Resistor,
    StepWaveform,
    VoltageSource,
)


def _comparator_design_space(technology: Technology) -> DesignSpace:
    min_w, max_w = technology.min_width, technology.max_width
    min_l, max_l = technology.min_length, technology.max_length
    w_cap = min(max_w, min_w * 200)
    return DesignSpace([
        DesignVariable("w_in", min_w * 4, w_cap, log_scale=True, unit="m"),
        DesignVariable("l_in", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("w_latch_n", min_w * 2, w_cap, log_scale=True, unit="m"),
        DesignVariable("w_latch_p", min_w * 2, w_cap, log_scale=True, unit="m"),
        DesignVariable("w_tail", min_w * 4, w_cap, log_scale=True, unit="m"),
    ])


class DynamicComparator(CircuitSizingProblem):
    """Size the StrongARM latch for fast, correct decisions.

    The objective is the regeneration (decision) time at a small
    ``input_overdrive``; the ``decision`` constraint declares the design
    dead unless the latch resolves to the correct side, and (through the
    yield wrapper) turns Monte Carlo mismatch classification into an
    input-referred offset test.
    """

    def __init__(self, technology: str | Technology = "180nm",
                 input_overdrive: float = 5e-3,
                 load_capacitance: float = 50e-15,
                 t_stop: float = 10e-9, max_t_decide_ns: float = 5.0):
        tech = technology
        if isinstance(tech, str):
            from repro.pdk import get_technology
            tech = get_technology(tech)
        constraints = [
            Constraint("decision", 0.5, "ge"),
            Constraint("t_decide", float(max_t_decide_ns), "le"),
        ]
        super().__init__(name="comparator", technology=tech,
                         design_space=_comparator_design_space(tech),
                         objective="t_decide", minimize=True,
                         constraints=constraints)
        self.input_overdrive = float(input_overdrive)
        self.load_capacitance = float(load_capacitance)
        self.t_stop = float(t_stop)
        # Clock edge: late enough that the precharged state is the clean
        # baseline, fast enough to look like a real clock driver.
        self.clk_delay = self.t_stop * 0.1
        self.clk_rise_time = self.t_stop * 0.01

    # ------------------------------------------------------------------ #
    # netlist                                                             #
    # ------------------------------------------------------------------ #
    def build_circuit(self, design: dict[str, float]) -> Circuit:
        tech = self.technology
        vdd = tech.vdd
        vcm = tech.common_mode
        half = 0.5 * self.input_overdrive
        w_in = tech.clamp_width(design["w_in"])
        l_in = tech.clamp_length(design["l_in"])
        l_min = tech.min_length
        w_ln = tech.clamp_width(design["w_latch_n"])
        w_lp = tech.clamp_width(design["w_latch_p"])
        w_tail = tech.clamp_width(design["w_tail"])
        circuit = Circuit(f"comparator_{tech.name}")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=vdd))
        circuit.add(VoltageSource("VIP", "inp", "0", dc=vcm + half))
        circuit.add(VoltageSource("VIN", "inn", "0", dc=vcm - half))
        circuit.add(VoltageSource(
            "VCLK", "clk", "0", dc=0.0,
            waveform=StepWaveform(initial=0.0, final=vdd,
                                  delay=self.clk_delay,
                                  rise_time=self.clk_rise_time)))
        # Clocked tail and input pair.  With the clock low every device on
        # the tail node is off and the node would float; a weak bleed to
        # ground (standing in for junction leakage) keeps the precharge
        # operating point well-posed without loading the decision.
        circuit.add(Mosfet("MTAIL", "tail", "clk", "0", "0",
                           tech.nmos, w_tail, l_min))
        circuit.add(Resistor("RBLEED", "tail", "0", 10e6))
        circuit.add(Mosfet("MIN1", "xn", "inp", "tail", "0",
                           tech.nmos, w_in, l_in))
        circuit.add(Mosfet("MIN2", "xp", "inn", "tail", "0",
                           tech.nmos, w_in, l_in))
        # Regenerative cross-coupled pairs.
        circuit.add(Mosfet("MNL1", "outn", "outp", "xn", "0",
                           tech.nmos, w_ln, l_min))
        circuit.add(Mosfet("MNL2", "outp", "outn", "xp", "0",
                           tech.nmos, w_ln, l_min))
        circuit.add(Mosfet("MPL1", "outn", "outp", "vdd", "vdd",
                           tech.pmos, w_lp, l_min))
        circuit.add(Mosfet("MPL2", "outp", "outn", "vdd", "vdd",
                           tech.pmos, w_lp, l_min))
        # Precharge switches: outputs and internal nodes park at VDD.
        w_pre = tech.clamp_width(2.0 * tech.min_width)
        for name, node in (("MPC1", "outn"), ("MPC2", "outp"),
                           ("MPC3", "xn"), ("MPC4", "xp")):
            circuit.add(Mosfet(name, node, "clk", "vdd", "vdd",
                               tech.pmos, w_pre, l_min))
        circuit.add(Capacitor("CLP", "outp", "0", self.load_capacitance))
        circuit.add(Capacitor("CLN", "outn", "0", self.load_capacitance))
        return circuit

    # ------------------------------------------------------------------ #
    # measures                                                            #
    # ------------------------------------------------------------------ #
    def _differential(self, result) -> tuple[np.ndarray, np.ndarray]:
        times = result.times
        diff = result.voltage("outp") - result.voltage("outn")
        return times, diff

    def _measure_t_decide(self, ctx: "bench.MeasureContext") -> float:
        """Clock edge to |v(outp) - v(outn)| > VDD/2, in ns (window if never)."""
        times, diff = self._differential(ctx.result("tran"))
        t_edge = self.clk_delay
        threshold = 0.5 * self.technology.vdd
        after = times >= t_edge
        crossed = np.nonzero(after & (np.abs(diff) >= threshold))[0]
        if crossed.size == 0:
            return float((self.t_stop - t_edge) * 1e9)
        return float((times[crossed[0]] - t_edge) * 1e9)

    def _measure_v_diff(self, ctx: "bench.MeasureContext") -> float:
        _, diff = self._differential(ctx.result("tran"))
        return float(diff[-1])

    def _measure_decision(self, ctx: "bench.MeasureContext") -> float:
        """1.0 when the latch resolved to the correct side, else 0.0.

        Correct for ``inp > inn``: ``outp`` high, ``outn`` low -- and the
        swing must be a real decision (past half supply), not a metastable
        residue.
        """
        _, diff = self._differential(ctx.result("tran"))
        threshold = 0.5 * self.technology.vdd
        return 1.0 if diff[-1] >= threshold else 0.0

    def testbench(self) -> bench.Testbench:
        return bench.Testbench(
            name=self.name,
            builders={"main": self.build_circuit},
            analyses=[
                bench.OPSpec("op", transient=True),
                bench.TranSpec("tran", t_stop=self.t_stop,
                               observe=("outp", "outn"), op="op"),
            ],
            measures=[
                bench.Measure("t_decide", self._measure_t_decide),
                bench.Measure("v_diff", self._measure_v_diff),
                bench.Measure("decision", self._measure_decision),
            ],
            temperature=self.sim_temperature)

    def failed_metrics(self) -> dict[str, float]:
        return {**super().failed_metrics(), "v_diff": 0.0}
