"""Bandgap voltage-reference testbench (paper Eq. 17).

The paper's bandgap (Fig. 3c) is a large opamp-assisted reference; here the
classic opamp-based topology with the same metrics is built:

* two branches driven by matched PMOS current sources from the supply --
  branch A is a single unit-area junction, branch B is a resistor ``R1`` in
  series with an ``N``-times larger junction;
* a transconductance-modelled error amplifier forces the branch voltages
  equal, making the branch current proportional to absolute temperature
  (PTAT), ``I = Vt ln(N) / R1``;
* a third mirrored branch pushes that current through ``R2`` in series with
  another junction, producing the reference voltage whose temperature
  coefficient the optimizer minimises.

Design variables: ``R1``, ``R2``, mirror device geometry, the error
amplifier's input device geometry (which sets its gm and output resistance)
and its bias current -- eight in total.  Metrics: temperature coefficient
``tc`` (ppm/degC), total supply current ``i_total`` (uA) and power-supply
rejection ratio ``psrr`` (dB at 100 Hz).
"""

from __future__ import annotations

import numpy as np

from repro import bench
from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.problem import Constraint
from repro.circuits.base import CircuitSizingProblem
from repro.pdk import Technology
from repro.spice import (
    VCCS,
    Circuit,
    Diode,
    Mosfet,
    Resistor,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
)
from repro.spice.devices.mosfet import square_law
from repro.spice.sweep import temperature_coefficient_ppm, temperature_sweep


def _bandgap_design_space(technology: Technology) -> DesignSpace:
    min_w, max_w = technology.min_width, technology.max_width
    min_l, max_l = technology.min_length, technology.max_length
    return DesignSpace([
        DesignVariable("r_ptat", 10e3, 500e3, log_scale=True, unit="ohm"),
        DesignVariable("r_out", 50e3, 2e6, log_scale=True, unit="ohm"),
        DesignVariable("w_mirror", min_w * 4, max_w, log_scale=True, unit="m"),
        DesignVariable("l_mirror", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("w_amp_in", min_w * 2, max_w / 2, log_scale=True, unit="m"),
        DesignVariable("l_amp_in", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("i_amp", 0.2e-6, 3e-6, log_scale=True, unit="A"),
        DesignVariable("area_ratio", 4.0, 24.0, log_scale=False, unit=""),
    ])


class BandgapReference(CircuitSizingProblem):
    """Constrained bandgap sizing: minimise TC with current and PSRR limits."""

    def __init__(self, technology: str | Technology = "180nm"):
        tech = technology
        if isinstance(tech, str):
            from repro.pdk import get_technology
            tech = get_technology(tech)
        space = _bandgap_design_space(tech)
        constraints = [
            Constraint("i_total", 6.0, "le"),
            Constraint("psrr", 50.0, "ge"),
        ]
        super().__init__(name="bandgap", technology=tech, design_space=space,
                         objective="tc", minimize=True, constraints=constraints)

    # ------------------------------------------------------------------ #
    # error-amplifier small-signal model                                  #
    # ------------------------------------------------------------------ #
    def _amplifier_parameters(self, design: dict[str, float]) -> tuple[float, float]:
        """gm and output resistance of the behavioural error amplifier.

        Derived from the square-law model of its input device at the given
        bias current, so the amplifier's gain (and hence loop accuracy and
        PSRR) responds to the geometric design variables the same way a real
        five-transistor amplifier would.
        """
        tech = self.technology
        width = tech.clamp_width(design["w_amp_in"])
        length = tech.clamp_length(design["l_amp_in"])
        bias = float(design["i_amp"])
        half_bias = 0.5 * bias
        beta = tech.nmos.kp * width / length
        vov = np.sqrt(max(2.0 * half_bias / beta, 1e-9))
        op = square_law(tech.nmos, width, length, tech.nmos.vth0 + vov, vov + 0.2)
        gm = op.gm if op.gm > 0 else np.sqrt(2.0 * beta * half_bias)
        lam_n = tech.nmos.effective_lambda(length)
        lam_p = tech.pmos.effective_lambda(length)
        r_out = 1.0 / (half_bias * (lam_n + lam_p) + 1e-12)
        return float(gm), float(r_out)

    # ------------------------------------------------------------------ #
    # netlist                                                             #
    # ------------------------------------------------------------------ #
    def build_circuit(self, design: dict[str, float], supply_ac: float = 0.0) -> Circuit:
        """Construct the bandgap core netlist for one design point."""
        tech = self.technology
        vdd = tech.vdd
        w_mirror = tech.clamp_width(design["w_mirror"])
        l_mirror = tech.clamp_length(design["l_mirror"])
        area_ratio = float(np.clip(design["area_ratio"], 1.5, 64.0))
        gm_amp, r_amp = self._amplifier_parameters(design)

        circuit = Circuit(f"bandgap_{tech.name}")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=vdd, ac=supply_ac))
        # Matched PMOS current sources, gates driven by the error amplifier.
        circuit.add(Mosfet("MPA", "va", "vctrl", "vdd", "vdd", tech.pmos, w_mirror, l_mirror))
        circuit.add(Mosfet("MPB", "vb", "vctrl", "vdd", "vdd", tech.pmos, w_mirror, l_mirror))
        circuit.add(Mosfet("MPC", "vref", "vctrl", "vdd", "vdd", tech.pmos, w_mirror, l_mirror))
        # Branch A: unit junction.  Branch B: R1 + N-times junction.
        circuit.add(Diode("DA", "va", "0", area=1.0))
        circuit.add(Resistor("R1", "vb", "vb1", max(design["r_ptat"], 1.0)))
        circuit.add(Diode("DB", "vb1", "0", area=area_ratio))
        # Output branch: R2 + unit junction gives the reference voltage.
        circuit.add(Resistor("R2", "vref", "vr1", max(design["r_out"], 1.0)))
        circuit.add(Diode("DC", "vr1", "0", area=1.0))
        # Error amplifier: transconductance into its output resistance.  The
        # control node vctrl rides on VDD through r_amp so the PMOS gates track
        # the supply (as they do with a real PMOS-input amplifier), which is
        # what gives the reference its finite PSRR.
        circuit.add(VCCS("GAMP", "vctrl", "vdd", "va", "vb", gm_amp))
        circuit.add(Resistor("RAMP", "vctrl", "vdd", r_amp))
        return circuit

    # ------------------------------------------------------------------ #
    # evaluation                                                          #
    # ------------------------------------------------------------------ #
    #: Temperature grid of the TC sweep (the "room" point is the middle one).
    SWEEP_TEMPERATURES = (-20.0, 100.0, 7)

    def _sweep_grid(self) -> np.ndarray:
        lo, hi, count = self.SWEEP_TEMPERATURES
        return np.linspace(lo, hi, count)

    def _build_psrr_circuit(self, design: dict[str, float]) -> Circuit:
        # One netlist serves every analysis: the unit supply AC drive only
        # affects the small-signal system, so the temperature sweep and the
        # bias are bit-identical to a quiet-supply build.
        return self.build_circuit(design, supply_ac=1.0)

    def _room_point(self, ctx: "bench.MeasureContext"):
        points = ctx.result("tsweep").points
        return points[len(points) // 2]

    def _reference_alive(self, ctx: "bench.MeasureContext") -> bool:
        # A collapsed loop parks the reference at ground -- treat as failure.
        return abs(self._room_point(ctx).voltage("vref")) >= 0.05

    def _measure_i_total(self, ctx: "bench.MeasureContext") -> float:
        # Supply current at room temperature: the three mirror branches plus
        # the error-amplifier bias.
        room = self._room_point(ctx)
        i_branches = sum(abs(room.device_info[name].get("ids", 0.0))
                         for name in ("MPA", "MPB", "MPC"))
        return float((i_branches + ctx.design["i_amp"]) * 1e6)

    def _measure_vref(self, ctx: "bench.MeasureContext") -> float:
        return float(self._room_point(ctx).voltage("vref"))

    def testbench(self) -> "bench.Testbench":
        """TC sweep, bias and supply-gain AC on one shared netlist."""
        return bench.Testbench(
            name=self.name,
            builders={"main": self._build_psrr_circuit},
            analyses=[
                bench.TempSweepSpec("tsweep", temperatures=self._sweep_grid(),
                                    observe="vref"),
                bench.OPSpec("op"),
                bench.ACSpec("ac", frequencies=np.array([10.0, 100.0, 1000.0]),
                             observe=("vref",), op="op"),
            ],
            checks=[bench.Check("reference did not collapse to ground",
                                self._reference_alive)],
            measures=[
                bench.tc_ppm("tsweep", name="tc"),
                bench.Measure("i_total", self._measure_i_total),
                bench.psrr_db(100.0, analysis="ac", node="vref", name="psrr"),
                bench.Measure("vref", self._measure_vref),
            ],
            temperature=self.sim_temperature)

    def _legacy_simulate(self, design: dict[str, float]) -> dict[str, float]:
        """Pre-testbench imperative path, kept as the equivalence reference."""
        circuit = self.build_circuit(design)
        # Temperature sweep for the reference voltage and its coefficient.
        temperatures = self._sweep_grid()
        try:
            _, vref_curve, points = temperature_sweep(circuit, temperatures, "vref")
        except (np.linalg.LinAlgError, KeyError, ValueError):
            return self.failed_metrics()
        if not all(p.converged for p in points) or not np.all(np.isfinite(vref_curve)):
            return self.failed_metrics()
        room = points[len(points) // 2]
        if abs(room.voltage("vref")) < 0.05:
            return self.failed_metrics()
        tc = temperature_coefficient_ppm(temperatures, vref_curve)

        i_branches = sum(abs(room.device_info[name].get("ids", 0.0))
                         for name in ("MPA", "MPB", "MPC"))
        i_total = (i_branches + design["i_amp"]) * 1e6

        # PSRR at 100 Hz: AC gain from the supply to the reference node.
        psrr_circuit = self.build_circuit(design, supply_ac=1.0)
        op = dc_operating_point(psrr_circuit)
        if not op.converged:
            return self.failed_metrics()
        ac = ac_analysis(psrr_circuit, op,
                         frequencies=np.array([10.0, 100.0, 1000.0]), observe=["vref"])
        supply_gain_db = ac.gain_at("vref", 100.0)
        psrr_db = -supply_gain_db
        return {
            "tc": float(tc),
            "i_total": float(i_total),
            "psrr": float(psrr_db),
            "vref": float(room.voltage("vref")),
        }
