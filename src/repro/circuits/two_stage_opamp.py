"""Two-stage Miller-compensated operational amplifier testbench (paper Eq. 15).

Topology (paper Fig. 3a, standard Miller op-amp):

* first stage -- NMOS differential pair (MN1/MN2) with an ideal tail current
  source ``Ib1`` and a PMOS current-mirror load (MP1/MP2);
* second stage -- PMOS common-source device (MP3) biased by an ideal current
  sink ``Ib2``;
* Miller compensation ``Cc`` with series zero-nulling resistor ``Rz``;
* capacitive load ``CL``.

Design variables: widths and lengths of the first-stage devices and the
second-stage device, ``Cc``, ``Rz`` and both bias currents -- ten in total.
Metrics: total current ``i_total`` (uA), open-loop ``gain`` (dB), phase
margin ``pm`` (degrees) and gain-bandwidth product ``gbw`` (MHz).

:class:`TwoStageOpAmpSettling` reuses the same amplifier in a unity-gain
follower testbench and judges it by *time-domain* figures of merit extracted
from a transient step response: settling time, slew rate and overshoot.
"""

from __future__ import annotations

import numpy as np

from repro import bench
from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.problem import Constraint
from repro.circuits.base import CircuitSizingProblem
from repro.errors import ConvergenceError
from repro.pdk import Technology
from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    Mosfet,
    Resistor,
    StepWaveform,
    VoltageSource,
    Waveform,
    ac_analysis,
    dc_operating_point,
    transient_analysis,
    transient_operating_point,
)


def _two_stage_design_space(technology: Technology) -> DesignSpace:
    min_w, max_w = technology.min_width, technology.max_width
    min_l, max_l = technology.min_length, technology.max_length
    return DesignSpace([
        DesignVariable("w_diff", min_w * 4, max_w, log_scale=True, unit="m"),
        DesignVariable("l_diff", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("w_load", min_w * 4, max_w, log_scale=True, unit="m"),
        DesignVariable("l_load", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("w_out", min_w * 8, max_w, log_scale=True, unit="m"),
        DesignVariable("l_out", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("c_comp", 0.1e-12, 10e-12, log_scale=True, unit="F"),
        DesignVariable("r_zero", 100.0, 50e3, log_scale=True, unit="ohm"),
        DesignVariable("i_bias1", 1e-6, 100e-6, log_scale=True, unit="A"),
        DesignVariable("i_bias2", 2e-6, 300e-6, log_scale=True, unit="A"),
    ])


class TwoStageOpAmp(CircuitSizingProblem):
    """Constrained sizing of the two-stage OpAmp.

    180 nm constraints follow paper Eq. 15 (PM > 60 deg, GBW > 4 MHz,
    Gain > 60 dB); the 40 nm variant relaxes the gain target to 50 dB as in
    the paper's Table 2.
    """

    def __init__(self, technology: str | Technology = "180nm",
                 load_capacitance: float = 2e-12):
        tech = technology
        space = None
        if isinstance(tech, str):
            from repro.pdk import get_technology
            tech = get_technology(tech)
        space = _two_stage_design_space(tech)
        gain_spec = 60.0 if tech.name == "180nm" else 50.0
        constraints = [
            Constraint("gain", gain_spec, "ge"),
            Constraint("pm", 60.0, "ge"),
            Constraint("gbw", 4.0, "ge"),
        ]
        super().__init__(name="two_stage_opamp", technology=tech, design_space=space,
                         objective="i_total", minimize=True, constraints=constraints)
        self.load_capacitance = float(load_capacitance)

    # ------------------------------------------------------------------ #
    # netlist                                                             #
    # ------------------------------------------------------------------ #
    def _add_amplifier_core(self, circuit: Circuit, design: dict[str, float],
                            mn1_gate: str, mn2_gate: str) -> None:
        """Add the amplifier itself (everything but the input sources).

        The two testbenches differ only in how the differential-pair gates
        are driven, so the gate node names are the only parameters: the AC
        testbench wires them to its differential sources, the follower wires
        MN1 to the output (feedback) and MN2 to the stimulus.
        """
        tech = self.technology
        w_diff = tech.clamp_width(design["w_diff"])
        l_diff = tech.clamp_length(design["l_diff"])
        w_load = tech.clamp_width(design["w_load"])
        l_load = tech.clamp_length(design["l_load"])
        w_out = tech.clamp_width(design["w_out"])
        l_out = tech.clamp_length(design["l_out"])
        # First stage: NMOS differential pair, ideal tail sink, PMOS mirror load.
        circuit.add(CurrentSource("IB1", "tail", "0", dc=design["i_bias1"]))
        circuit.add(Mosfet("MN1", "x1", mn1_gate, "tail", "0", tech.nmos, w_diff, l_diff))
        circuit.add(Mosfet("MN2", "out1", mn2_gate, "tail", "0", tech.nmos, w_diff, l_diff))
        circuit.add(Mosfet("MP1", "x1", "x1", "vdd", "vdd", tech.pmos, w_load, l_load))
        circuit.add(Mosfet("MP2", "out1", "x1", "vdd", "vdd", tech.pmos, w_load, l_load))
        # Second stage: PMOS common source with ideal current-sink bias.
        circuit.add(Mosfet("MP3", "out", "out1", "vdd", "vdd", tech.pmos, w_out, l_out))
        circuit.add(CurrentSource("IB2", "out", "0", dc=design["i_bias2"]))
        # Miller compensation and load.
        circuit.add(Resistor("RZ", "out1", "zc", max(design["r_zero"], 1.0)))
        circuit.add(Capacitor("CC", "zc", "out", max(design["c_comp"], 1e-15)))
        circuit.add(Capacitor("CL", "out", "0", self.load_capacitance))

    def build_circuit(self, design: dict[str, float],
                      ac_differential: bool = True,
                      supply_ac: float = 0.0) -> Circuit:
        """Construct the open-loop AC testbench netlist for one design point."""
        tech = self.technology
        circuit = Circuit(f"two_stage_opamp_{tech.name}")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd, ac=supply_ac))
        diff_amp = 0.5 if ac_differential else 0.0
        circuit.add(VoltageSource("VIP", "inp", "0", dc=tech.common_mode, ac=+diff_amp))
        circuit.add(VoltageSource("VIN", "inn", "0", dc=tech.common_mode, ac=-diff_amp))
        self._add_amplifier_core(circuit, design, mn1_gate="inp", mn2_gate="inn")
        return circuit

    def build_follower_circuit(self, design: dict[str, float],
                               waveform: Waveform) -> Circuit:
        """Unity-gain follower testbench: the amplifier tracks ``waveform``.

        Same amplifier core as :meth:`build_circuit`, but the inverting input
        is tied directly to the output (100% feedback) and the non-inverting
        input is driven by a transient stimulus -- the standard bench for
        slew-rate and settling-time measurements.  The mirror-side gate (MN1)
        is the *inverting* input of this topology -- raising it raises out1
        through the MP1/MP2 mirror, which cuts MP3 and pulls the output down
        -- so the output feeds back to MN1 and the stimulus drives MN2 for
        negative feedback.
        """
        tech = self.technology
        circuit = Circuit(f"two_stage_follower_{tech.name}")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        circuit.add(VoltageSource("VIP", "inp", "0", dc=tech.common_mode,
                                  waveform=waveform))
        self._add_amplifier_core(circuit, design, mn1_gate="out", mn2_gate="inp")
        return circuit

    # ------------------------------------------------------------------ #
    # evaluation                                                          #
    # ------------------------------------------------------------------ #
    def testbench(self) -> bench.Testbench:
        """Open-loop AC bench: one bias solve shared by every measurement.

        If either gain device is far from saturation the amplifier is
        effectively dead, but it is still measured -- the AC analysis simply
        reports a tiny gain (and a non-finite gain marks the design failed
        through the measure's finite gate).
        """
        return bench.Testbench(
            name=self.name,
            builders={"main": self.build_circuit},
            analyses=[
                bench.OPSpec("op"),
                bench.ACSpec("ac", frequencies=self.ac_frequencies,
                             observe=("out",), op="op"),
            ],
            measures=[
                bench.supply_current_ua(analysis="op", source="VDD",
                                        circuit="main", name="i_total"),
                bench.gain_db("ac", "out", name="gain"),
                bench.phase_margin_deg("ac", "out", name="pm"),
                bench.gbw_mhz("ac", "out", name="gbw"),
            ],
            temperature=self.sim_temperature)

    def _build_dc_follower(self, design: dict[str, float]) -> Circuit:
        """Unity-feedback netlist with a quiet DC input (mismatch bias)."""
        return self.build_follower_circuit(design, waveform=None)

    def mc_testbench(self) -> bench.Testbench:
        """Mismatch bench: feedback-servoed bias, open-loop AC around it.

        The open-loop bench of :meth:`testbench` only holds its operating
        point because perfectly matched devices leave zero systematic input
        offset; a sampled Pelgrom offset of a few millivolts times the full
        open-loop gain rails the second stage, which measures the *bias
        collapse*, not the amplifier.  Mismatch sign-off therefore solves
        the DC bias in unity feedback -- the offset appears at the output,
        attenuated by the loop, and every device stays in its region -- and
        linearises the open-loop AC analysis around that bias, exactly the
        recipe the three-stage amplifier uses for its nominal bench.  Metric
        names match :meth:`testbench`, so the spec constraints classify
        samples unchanged.
        """
        return bench.Testbench(
            name=f"{self.name}_mc",
            builders={"dc": self._build_dc_follower,
                      "main": self.build_circuit},
            analyses=[
                bench.OPSpec("op", circuit="dc"),
                bench.ACSpec("ac", circuit="main",
                             frequencies=self.ac_frequencies,
                             observe=("out",), op="op"),
            ],
            measures=[
                bench.supply_current_ua(analysis="op", source="VDD",
                                        circuit="dc", name="i_total"),
                bench.gain_db("ac", "out", name="gain"),
                bench.phase_margin_deg("ac", "out", name="pm"),
                bench.gbw_mhz("ac", "out", name="gbw"),
            ],
            temperature=self.sim_temperature)

    def _legacy_simulate(self, design: dict[str, float]) -> dict[str, float]:
        """Pre-testbench imperative path, kept as the equivalence reference."""
        circuit = self.build_circuit(design)
        op = dc_operating_point(circuit)
        if not op.converged:
            return self.failed_metrics()
        # Total supply current measured at the VDD source branch.
        i_total = abs(circuit.device("VDD").branch_current(op.voltages))
        ac = ac_analysis(circuit, op, self.ac_frequencies, observe=["out"])
        gain_db = ac.dc_gain_db("out")
        gbw_hz = ac.unity_gain_frequency("out")
        pm_deg = ac.phase_margin_degrees("out")
        if not np.isfinite(gain_db):
            return self.failed_metrics()
        return {
            "i_total": i_total * 1e6,
            "gain": float(gain_db),
            "pm": float(pm_deg),
            "gbw": float(gbw_hz / 1e6),
        }


class TwoStageOpAmpSettling(TwoStageOpAmp):
    """Size the two-stage OpAmp for fast settling in a follower testbench.

    The amplifier is placed in unity feedback and hit with a
    ``step_amplitude`` step around the common-mode level; transient analysis
    then yields the time-domain metrics:

    * ``t_settle`` (us, the objective) -- time to stay within
      ``settle_tolerance`` of the final output value, capped at the analysis
      window when the output never settles;
    * ``slew`` (V/us) -- 10%-90% output slew rate, constrained from below;
    * ``overshoot`` (%) -- peak excursion past the final value, constrained
      from above;
    * ``i_total`` (uA) -- reported for reference (not constrained here).

    Every transient configuration scalar (window, tolerances, step size)
    lives as a plain attribute, so
    :attr:`~repro.circuits.base.CircuitSizingProblem.cache_token` folds it
    into the design-cache identity automatically -- two differently
    configured settling problems never share cached results.
    """

    def __init__(self, technology: str | Technology = "180nm",
                 load_capacitance: float = 2e-12,
                 step_amplitude: float = 0.2, t_stop: float = 4e-6,
                 settle_tolerance: float = 0.01,
                 min_slew: float = 1.0, max_overshoot: float = 25.0,
                 transient_reltol: float = 1e-4,
                 transient_abstol: float = 1e-6):
        super().__init__(technology=technology, load_capacitance=load_capacitance)
        self.name = f"two_stage_opamp_settling_{self.technology.name}"
        self.objective = "t_settle"
        self.minimize = True
        # Thresholds are also kept as plain float attributes: cache_token
        # hashes scalar attributes only, and two instances with different
        # constraint levels must never share cached feasibility verdicts.
        self.min_slew = float(min_slew)
        self.max_overshoot = float(max_overshoot)
        self.constraints = [
            Constraint("slew", self.min_slew, "ge"),
            Constraint("overshoot", self.max_overshoot, "le"),
        ]
        self.step_amplitude = float(step_amplitude)
        self.t_stop = float(t_stop)
        self.settle_tolerance = float(settle_tolerance)
        self.transient_reltol = float(transient_reltol)
        self.transient_abstol = float(transient_abstol)
        # Step timing: a short settling window before the edge gives a clean
        # pre-step baseline, and a finite rise keeps the stimulus physical.
        self.step_delay = self.t_stop * 0.05
        self.step_rise_time = self.t_stop * 1e-3

    def step_waveform(self) -> StepWaveform:
        """The follower stimulus: a step around the common-mode level."""
        vcm = self.technology.common_mode
        half = 0.5 * self.step_amplitude
        return StepWaveform(initial=vcm - half, final=vcm + half,
                            delay=self.step_delay,
                            rise_time=self.step_rise_time)

    def _build_follower(self, design: dict[str, float]) -> Circuit:
        return self.build_follower_circuit(design, self.step_waveform())

    def _follower_tracks(self, ctx: "bench.MeasureContext") -> bool:
        # A follower whose output does not track at least half the input step
        # is dead; "settling" instantly onto a stuck output must not score.
        result = ctx.result("tran")
        initial = result.value_at("out", self.step_delay)
        final = result.final_value("out")
        return abs(final - initial) >= 0.5 * self.step_amplitude

    def _measure_settle(self, ctx: "bench.MeasureContext") -> float:
        settle = ctx.result("tran").settling_time(
            "out", tolerance=self.settle_tolerance, t_start=self.step_delay)
        if not np.isfinite(settle):
            # Never entered the band: report the whole window as the (worst
            # finite) settling time so surrogates stay trainable.
            settle = self.t_stop - self.step_delay
        return float(settle * 1e6)

    def testbench(self) -> "bench.Testbench":
        """Unity-follower step bench: transient bias shared with the supply
        current measure, step response judged by time-domain measures."""
        t_edge = self.step_delay
        return bench.Testbench(
            name=self.name,
            builders={"main": self._build_follower},
            analyses=[
                bench.OPSpec("op", transient=True),
                bench.TranSpec("tran", t_stop=self.t_stop, observe=("out",),
                               reltol=self.transient_reltol,
                               abstol=self.transient_abstol, op="op"),
            ],
            checks=[bench.Check("follower output tracks the input step",
                                self._follower_tracks)],
            measures=[
                bench.Measure("t_settle", self._measure_settle),
                bench.slew_v_per_us("tran", "out", t_start=t_edge, name="slew"),
                bench.overshoot_pct("tran", "out", t_start=t_edge,
                                    name="overshoot"),
                bench.supply_current_ua(analysis="op", source="VDD",
                                        circuit="main", name="i_total"),
            ],
            temperature=self.sim_temperature)

    def mc_testbench(self) -> "bench.Testbench":
        """The follower step bench is closed-loop already: offsets shift the
        output by millivolts instead of railing it, so mismatch samples run
        the regular bench (overriding the AC servo bench inherited from
        :class:`TwoStageOpAmp`, whose metrics the settling constraints do
        not reference)."""
        return self.testbench()

    def _legacy_simulate(self, design: dict[str, float]) -> dict[str, float]:
        """Pre-testbench imperative path, kept as the equivalence reference."""
        circuit = self.build_follower_circuit(design, self.step_waveform())
        op = transient_operating_point(circuit)
        if not op.converged:
            return self.failed_metrics()
        i_total = abs(circuit.device("VDD").branch_current(op.voltages))
        try:
            result = transient_analysis(
                circuit, self.t_stop, observe=["out"], operating_point=op,
                reltol=self.transient_reltol, abstol=self.transient_abstol)
        except ConvergenceError:
            return self.failed_metrics()
        t_edge = self.step_delay
        initial = result.value_at("out", t_edge)
        final = result.final_value("out")
        if abs(final - initial) < 0.5 * self.step_amplitude:
            return self.failed_metrics()
        settle = result.settling_time("out", tolerance=self.settle_tolerance,
                                      t_start=t_edge)
        if not np.isfinite(settle):
            settle = self.t_stop - t_edge
        return {
            "t_settle": float(settle * 1e6),
            "slew": float(result.slew_rate("out", t_start=t_edge) * 1e-6),
            "overshoot": float(result.overshoot_percent("out", t_start=t_edge)),
            "i_total": float(i_total * 1e6),
        }

    def failed_metrics(self) -> dict[str, float]:
        return {**super().failed_metrics(), "i_total": 1e6}
