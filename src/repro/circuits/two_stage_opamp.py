"""Two-stage Miller-compensated operational amplifier testbench (paper Eq. 15).

Topology (paper Fig. 3a, standard Miller op-amp):

* first stage -- NMOS differential pair (MN1/MN2) with an ideal tail current
  source ``Ib1`` and a PMOS current-mirror load (MP1/MP2);
* second stage -- PMOS common-source device (MP3) biased by an ideal current
  sink ``Ib2``;
* Miller compensation ``Cc`` with series zero-nulling resistor ``Rz``;
* capacitive load ``CL``.

Design variables: widths and lengths of the first-stage devices and the
second-stage device, ``Cc``, ``Rz`` and both bias currents -- ten in total.
Metrics: total current ``i_total`` (uA), open-loop ``gain`` (dB), phase
margin ``pm`` (degrees) and gain-bandwidth product ``gbw`` (MHz).
"""

from __future__ import annotations

import numpy as np

from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.problem import Constraint
from repro.circuits.base import CircuitSizingProblem
from repro.pdk import Technology
from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    Mosfet,
    Resistor,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
)


def _two_stage_design_space(technology: Technology) -> DesignSpace:
    min_w, max_w = technology.min_width, technology.max_width
    min_l, max_l = technology.min_length, technology.max_length
    return DesignSpace([
        DesignVariable("w_diff", min_w * 4, max_w, log_scale=True, unit="m"),
        DesignVariable("l_diff", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("w_load", min_w * 4, max_w, log_scale=True, unit="m"),
        DesignVariable("l_load", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("w_out", min_w * 8, max_w, log_scale=True, unit="m"),
        DesignVariable("l_out", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("c_comp", 0.1e-12, 10e-12, log_scale=True, unit="F"),
        DesignVariable("r_zero", 100.0, 50e3, log_scale=True, unit="ohm"),
        DesignVariable("i_bias1", 1e-6, 100e-6, log_scale=True, unit="A"),
        DesignVariable("i_bias2", 2e-6, 300e-6, log_scale=True, unit="A"),
    ])


class TwoStageOpAmp(CircuitSizingProblem):
    """Constrained sizing of the two-stage OpAmp.

    180 nm constraints follow paper Eq. 15 (PM > 60 deg, GBW > 4 MHz,
    Gain > 60 dB); the 40 nm variant relaxes the gain target to 50 dB as in
    the paper's Table 2.
    """

    def __init__(self, technology: str | Technology = "180nm",
                 load_capacitance: float = 2e-12):
        tech = technology
        space = None
        if isinstance(tech, str):
            from repro.pdk import get_technology
            tech = get_technology(tech)
        space = _two_stage_design_space(tech)
        gain_spec = 60.0 if tech.name == "180nm" else 50.0
        constraints = [
            Constraint("gain", gain_spec, "ge"),
            Constraint("pm", 60.0, "ge"),
            Constraint("gbw", 4.0, "ge"),
        ]
        super().__init__(name="two_stage_opamp", technology=tech, design_space=space,
                         objective="i_total", minimize=True, constraints=constraints)
        self.load_capacitance = float(load_capacitance)

    # ------------------------------------------------------------------ #
    # netlist                                                             #
    # ------------------------------------------------------------------ #
    def build_circuit(self, design: dict[str, float],
                      ac_differential: bool = True,
                      supply_ac: float = 0.0) -> Circuit:
        """Construct the testbench netlist for one design point."""
        tech = self.technology
        vdd, vcm = tech.vdd, tech.common_mode
        w_diff = tech.clamp_width(design["w_diff"])
        l_diff = tech.clamp_length(design["l_diff"])
        w_load = tech.clamp_width(design["w_load"])
        l_load = tech.clamp_length(design["l_load"])
        w_out = tech.clamp_width(design["w_out"])
        l_out = tech.clamp_length(design["l_out"])

        circuit = Circuit(f"two_stage_opamp_{tech.name}")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=vdd, ac=supply_ac))
        diff_amp = 0.5 if ac_differential else 0.0
        circuit.add(VoltageSource("VIP", "inp", "0", dc=vcm, ac=+diff_amp))
        circuit.add(VoltageSource("VIN", "inn", "0", dc=vcm, ac=-diff_amp))
        # First stage: NMOS differential pair, ideal tail sink, PMOS mirror load.
        circuit.add(CurrentSource("IB1", "tail", "0", dc=design["i_bias1"]))
        circuit.add(Mosfet("MN1", "x1", "inp", "tail", "0", tech.nmos, w_diff, l_diff))
        circuit.add(Mosfet("MN2", "out1", "inn", "tail", "0", tech.nmos, w_diff, l_diff))
        circuit.add(Mosfet("MP1", "x1", "x1", "vdd", "vdd", tech.pmos, w_load, l_load))
        circuit.add(Mosfet("MP2", "out1", "x1", "vdd", "vdd", tech.pmos, w_load, l_load))
        # Second stage: PMOS common source with ideal current-sink bias.
        circuit.add(Mosfet("MP3", "out", "out1", "vdd", "vdd", tech.pmos, w_out, l_out))
        circuit.add(CurrentSource("IB2", "out", "0", dc=design["i_bias2"]))
        # Miller compensation and load.
        circuit.add(Resistor("RZ", "out1", "zc", max(design["r_zero"], 1.0)))
        circuit.add(Capacitor("CC", "zc", "out", max(design["c_comp"], 1e-15)))
        circuit.add(Capacitor("CL", "out", "0", self.load_capacitance))
        return circuit

    # ------------------------------------------------------------------ #
    # evaluation                                                          #
    # ------------------------------------------------------------------ #
    def simulate(self, design: dict[str, float]) -> dict[str, float]:
        circuit = self.build_circuit(design)
        op = dc_operating_point(circuit)
        if not op.converged:
            return self.failed_metrics()
        # Total supply current measured at the VDD source branch.
        i_total = abs(circuit.device("VDD").branch_current(op.voltages))
        # Sanity check the bias: if either gain device is far from saturation
        # the amplifier is effectively dead, but we still measure it -- the AC
        # analysis will simply report a tiny gain.
        ac = ac_analysis(circuit, op, self.ac_frequencies, observe=["out"])
        gain_db = ac.dc_gain_db("out")
        gbw_hz = ac.unity_gain_frequency("out")
        pm_deg = ac.phase_margin_degrees("out")
        if not np.isfinite(gain_db):
            return self.failed_metrics()
        return {
            "i_total": i_total * 1e6,
            "gain": float(gain_db),
            "pm": float(pm_deg),
            "gbw": float(gbw_hz / 1e6),
        }
