"""Low-dropout regulator (LDO) testbench: PSRR, noise and load transient.

Topology -- the canonical PMOS-pass LDO:

* pass device -- one large PMOS (``MPASS``) from the supply to the
  regulated output;
* error amplifier -- a single-pole transconductance stage: a VCCS
  (``GEA``) comparing the reference against the feedback tap, working into
  its output resistance ``REA`` (to the supply, so the gate parks near VDD
  and the pass device defaults off) and compensation capacitance ``CEA``;
  its bias draw is modelled by an explicit current sink (square-law
  ``I = gm * V_ov / 2`` at ``V_ov = 0.2 V``), so quiescent current really
  trades off against loop bandwidth;
* feedback -- an equal resistive divider, so the output regulates to
  ``2 * vref`` with ``vref = 0.4 * VDD`` (20% dropout headroom);
* load -- a DC current sink plus output capacitor.

Feedback polarity: the VCCS pulls ``i = gm * (vref - vfb)`` out of the gate
node, so an output droop (``vfb < vref``) drops the gate through ``REA`` and
turns the pass device on harder -- negative feedback.

Three netlist variants share the core: ``main`` (reference carries the AC
excitation -- closed-loop gain, bias, noise), ``psrr`` (the *supply* carries
it -- supply injection), and ``tran`` (the load current steps between the
light and heavy levels -- droop/recovery).  Metrics: quiescent current
``i_q`` (uA, the objective), regulation error ``v_err`` (mV), ``psrr`` (dB
at the PSRR spot frequency), integrated output noise ``vnoise`` (uVrms) and
load-step droop ``droop`` (mV).
"""

from __future__ import annotations

import numpy as np

from repro import bench
from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.problem import Constraint
from repro.circuits.base import CircuitSizingProblem
from repro.pdk import Technology
from repro.spice import (
    VCCS,
    Capacitor,
    Circuit,
    CurrentSource,
    Mosfet,
    PulseWaveform,
    Resistor,
    VoltageSource,
)
from repro.spice.ac import logspace_frequencies

#: Assumed error-amplifier overdrive for the bias-draw model (V).
_EA_OVERDRIVE = 0.2


def _ldo_design_space(technology: Technology) -> DesignSpace:
    min_w, max_w = technology.min_width, technology.max_width
    min_l, max_l = technology.min_length, technology.max_length
    return DesignSpace([
        DesignVariable("w_pass", min_w * 20, max_w, log_scale=True, unit="m"),
        DesignVariable("l_pass", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("gm_ea", 1e-5, 1e-2, log_scale=True, unit="S"),
        DesignVariable("r_ea", 1e4, 1e6, log_scale=True, unit="ohm"),
        DesignVariable("c_ea", 0.1e-12, 10e-12, log_scale=True, unit="F"),
        DesignVariable("r_fb", 1e4, 1e6, log_scale=True, unit="ohm"),
    ])


class LowDropoutRegulator(CircuitSizingProblem):
    """Constrained LDO sizing: minimise quiescent current subject to
    regulation accuracy, PSRR, output noise and load-step droop specs."""

    def __init__(self, technology: str | Technology = "180nm",
                 load_current: float = 1e-3, load_capacitance: float = 100e-12,
                 psrr_frequency: float = 1e3,
                 min_psrr_db: float = 30.0, max_v_err_mv: float = 50.0,
                 max_noise_uvrms: float = 500.0, max_droop_mv: float = 100.0,
                 t_stop: float = 20e-6):
        tech = technology
        if isinstance(tech, str):
            from repro.pdk import get_technology
            tech = get_technology(tech)
        constraints = [
            Constraint("v_err", float(max_v_err_mv), "le"),
            Constraint("psrr", float(min_psrr_db), "ge"),
            Constraint("vnoise", float(max_noise_uvrms), "le"),
            Constraint("droop", float(max_droop_mv), "le"),
        ]
        super().__init__(name="ldo", technology=tech,
                         design_space=_ldo_design_space(tech),
                         objective="i_q", minimize=True,
                         constraints=constraints)
        self.load_current = float(load_current)
        self.load_capacitance = float(load_capacitance)
        self.psrr_frequency = float(psrr_frequency)
        self.t_stop = float(t_stop)
        # Load step: light load to the rated load, edge early enough that
        # both the droop and the recovery fit in the window.
        self.step_delay = self.t_stop * 0.25
        self.step_rise_time = self.t_stop * 1e-3

    # ------------------------------------------------------------------ #
    # targets derived from the technology card                            #
    # ------------------------------------------------------------------ #
    @property
    def v_ref(self) -> float:
        """Reference voltage: 0.4 * VDD (divider doubles it at the output)."""
        return 0.4 * self.technology.vdd

    @property
    def v_target(self) -> float:
        """Nominal regulated output: 0.8 * VDD (20% dropout headroom)."""
        return 2.0 * self.v_ref

    # ------------------------------------------------------------------ #
    # netlist                                                             #
    # ------------------------------------------------------------------ #
    def _add_regulator_core(self, circuit: Circuit,
                            design: dict[str, float]) -> None:
        """Everything but the supply/reference sources and the load current."""
        tech = self.technology
        w_pass = tech.clamp_width(design["w_pass"])
        l_pass = tech.clamp_length(design["l_pass"])
        r_ea = max(design["r_ea"], 1.0)
        r_fb = max(design["r_fb"], 1.0)
        gm_ea = max(design["gm_ea"], 1e-12)
        # Error amplifier: VCCS pulls gm*(vref - vfb) out of the gate node;
        # REA to the supply parks the gate at VDD (pass device off) when the
        # amplifier is quiet, CEA sets the dominant pole at the gate.
        circuit.add(VCCS("GEA", "gate", "0", "ref", "fb", gm_ea))
        circuit.add(Resistor("REA", "vdd", "gate", r_ea))
        circuit.add(Capacitor("CEA", "gate", "0", max(design["c_ea"], 1e-15)))
        # Modelled amplifier bias draw (square law: I = gm * Vov / 2).
        circuit.add(CurrentSource("IEA", "vdd", "0",
                                  dc=gm_ea * _EA_OVERDRIVE / 2.0))
        # Pass device and output network.
        circuit.add(Mosfet("MPASS", "out", "gate", "vdd", "vdd",
                           tech.pmos, w_pass, l_pass))
        circuit.add(Resistor("RFB1", "out", "fb", r_fb))
        circuit.add(Resistor("RFB2", "fb", "0", r_fb))
        circuit.add(Capacitor("COUT", "out", "0", self.load_capacitance))

    def build_circuit(self, design: dict[str, float],
                      supply_ac: float = 0.0,
                      reference_ac: float = 1.0) -> Circuit:
        """The ``main`` bench netlist: DC load, AC excitation on the reference."""
        tech = self.technology
        circuit = Circuit(f"ldo_{tech.name}")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd, ac=supply_ac))
        circuit.add(VoltageSource("VREF", "ref", "0", dc=self.v_ref,
                                  ac=reference_ac))
        self._add_regulator_core(circuit, design)
        circuit.add(CurrentSource("ILOAD", "out", "0", dc=self.load_current))
        return circuit

    def build_psrr_circuit(self, design: dict[str, float]) -> Circuit:
        """Supply-injection variant: AC on VDD, quiet reference."""
        return self.build_circuit(design, supply_ac=1.0, reference_ac=0.0)

    def build_tran_circuit(self, design: dict[str, float]) -> Circuit:
        """Load-transient variant: the load current steps to the rated load."""
        tech = self.technology
        circuit = Circuit(f"ldo_tran_{tech.name}")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=tech.vdd))
        circuit.add(VoltageSource("VREF", "ref", "0", dc=self.v_ref))
        self._add_regulator_core(circuit, design)
        light = 0.1 * self.load_current
        circuit.add(CurrentSource(
            "ILOAD", "out", "0", dc=light,
            waveform=PulseWaveform(initial=light, pulsed=self.load_current,
                                   delay=self.step_delay,
                                   rise=self.step_rise_time,
                                   fall=self.step_rise_time,
                                   width=self.t_stop)))
        return circuit

    # ------------------------------------------------------------------ #
    # measures                                                            #
    # ------------------------------------------------------------------ #
    @property
    def noise_frequencies(self) -> np.ndarray:
        """Noise grid: 1 Hz to 100 MHz, 10 points per decade."""
        return logspace_frequencies(1e0, 1e8, points_per_decade=10)

    def _measure_i_q(self, ctx: "bench.MeasureContext") -> float:
        """Quiescent current: total supply draw minus the delivered load (uA)."""
        op = ctx.result("op")
        total = abs(ctx.circuit("main").device("VDD").branch_current(op.voltages))
        return float(max(total - self.load_current, 0.0) * 1e6)

    def _measure_v_err(self, ctx: "bench.MeasureContext") -> float:
        """Regulation error: |V(out) - target| in mV."""
        return float(abs(ctx.result("op").voltage("out") - self.v_target) * 1e3)

    def _measure_droop(self, ctx: "bench.MeasureContext") -> float:
        """Worst output excursion below the pre-step level after the load
        step, in mV (a regulator that rides through reports ~0)."""
        result = ctx.result("tran")
        baseline = result.value_at("out", self.step_delay)
        times = result.times
        values = result.voltage("out")
        after = values[times >= self.step_delay]
        return float(max(baseline - float(after.min()), 0.0) * 1e3)

    def testbench(self) -> bench.Testbench:
        return bench.Testbench(
            name=self.name,
            builders={"main": self.build_circuit,
                      "psrr": self.build_psrr_circuit,
                      "tran": self.build_tran_circuit},
            analyses=[
                bench.OPSpec("op"),
                bench.OPSpec("op_psrr", circuit="psrr"),
                bench.OPSpec("op_tran", circuit="tran", transient=True),
                bench.ACSpec("psrr_ac", circuit="psrr",
                             frequencies=self.ac_frequencies,
                             observe=("out",), op="op_psrr"),
                bench.NoiseSpec("noise", frequencies=self.noise_frequencies,
                                output="out", op="op"),
                bench.TranSpec("tran", circuit="tran", t_stop=self.t_stop,
                               observe=("out",), op="op_tran"),
            ],
            measures=[
                bench.Measure("i_q", self._measure_i_q),
                bench.Measure("v_err", self._measure_v_err,
                              require_finite=True),
                bench.psrr_db(self.psrr_frequency, analysis="psrr_ac",
                              node="out", name="psrr"),
                bench.integrated_noise_uvrms("noise", name="vnoise"),
                bench.Measure("droop", self._measure_droop),
            ],
            temperature=self.sim_temperature)
