"""Yield-aware sizing under local mismatch: the ``*_yield`` problem family.

A :class:`YieldSizingProblem` wraps one of the registered testbench problems
and judges every design twice:

* **nominally** -- the wrapped problem's own simulation supplies the
  objective and the original spec constraints, bit-identical to the plain
  problem (so yield studies are directly comparable to nominal ones);
* **statistically** -- a :class:`~repro.mc.MonteCarloRunner` fans seeded
  Pelgrom mismatch samples through the engine's execution backends,
  classifies each against the specs and reports the Wilson-interval yield,
  which enters the problem as one extra constraint ``yield >= target``.

The optimization task is therefore *optimise the nominal objective subject
to the specs holding at nominal and with probability >= target under
mismatch* -- robust sizing as a drop-in
:class:`~repro.bo.problem.OptimizationProblem`, the statistical twin of
:class:`~repro.circuits.corners.CornerSizingProblem`.

Alongside the yield the metrics carry the sense-aware sigma statistics of
every base metric (``<metric>_mean`` / ``_std`` / ``_p99``, see
:func:`repro.bench.aggregate.sigma_metrics`), so reports can show *how* a
design fails, not just how often.  Adaptive stopping keeps the price honest:
designs whose yield is pinned near 0 or 1 after ``n_min`` samples stop
early, marginal designs earn the full ``n_max``, and a design that is
already dead at nominal skips Monte Carlo entirely.
"""

from __future__ import annotations

import hashlib

from repro.bench.aggregate import sigma_metrics
from repro.bo.problem import Constraint
from repro.circuits.bandgap import BandgapReference
from repro.circuits.base import CircuitSizingProblem
from repro.circuits.comparator import DynamicComparator
from repro.circuits.ldo import LowDropoutRegulator
from repro.circuits.three_stage_opamp import ThreeStageOpAmp
from repro.circuits.two_stage_opamp import TwoStageOpAmp
from repro.mc import MonteCarloConfig, MonteCarloRunner


class YieldSizingProblem(CircuitSizingProblem):
    """Mismatch-yield-constrained variant of a testbench sizing problem.

    Parameters
    ----------
    base_name:
        Registry-style short name of the wrapped problem (used to derive
        this problem's name, ``<base_name>_yield_<node>``).
    base_cls:
        The wrapped :class:`CircuitSizingProblem` subclass; must be
        constructible as ``base_cls(technology=..., **base_kwargs)``.
    technology:
        Nominal node name or card; per-sample cards are derived from it.
    yield_target:
        The constraint threshold on the estimated yield (fraction in
        ``(0, 1]``).
    mc:
        :class:`~repro.mc.MonteCarloConfig`, or a plain dict of its fields
        (what a JSON study spec's ``problem_options`` carries), or ``None``
        for the defaults.
    backend:
        Execution backend for the sample fan-out (name, instance or ``None``
        for the environment default).  Composes with design-level dispatch:
        inside an engine worker the default resolves to serial.
    max_workers:
        Worker count for pooled backends created from a name.
    base_kwargs:
        Forwarded to the wrapped ``base_cls``.
    """

    #: The wrapper has no bench of its own -- its *sample fan-out* is the
    #: batched unit (MonteCarloRunner stacks the per-sample benches instead).
    supports_batch_simulation = False

    def __init__(self, base_name: str, base_cls: type,
                 technology="180nm", yield_target: float = 0.9,
                 mc=None, backend=None, max_workers: int | None = None,
                 **base_kwargs):
        if not 0.0 < yield_target <= 1.0:
            raise ValueError(f"yield_target must be in (0, 1], "
                             f"got {yield_target}")
        base = base_cls(technology=technology, **base_kwargs)
        super().__init__(name=f"{base_name}_yield",
                         technology=base.technology,
                         design_space=base.design_space,
                         objective=base.objective,
                         minimize=base.minimize,
                         constraints=[*base.constraints,
                                      Constraint("yield", float(yield_target),
                                                 "ge")])
        self.yield_target = float(yield_target)
        self._base = base
        self._runner = MonteCarloRunner(mc, backend=backend,
                                        max_workers=max_workers)
        self._device_names: tuple[str, ...] | None = None

    # ------------------------------------------------------------------ #
    # evaluation                                                          #
    # ------------------------------------------------------------------ #
    @property
    def base_problem(self) -> CircuitSizingProblem:
        """The wrapped nominal problem."""
        return self._base

    @property
    def mc_config(self) -> MonteCarloConfig:
        return self._runner.config

    def testbench(self):
        """Yield problems delegate to their base problem's bench."""
        raise NotImplementedError(
            f"{self.name} runs Monte Carlo over its base problem; use "
            ".base_problem.bench for the underlying testbench")

    def with_variation(self, sample):
        """Varying the wrapper is always a mistake -- fail loudly.

        A sample applied here would be ignored (simulation delegates to the
        un-varied base problem) while still paying for a nested Monte Carlo
        run; vary :attr:`base_problem` instead.
        """
        raise NotImplementedError(
            f"{self.name} wraps Monte Carlo itself; apply variation to "
            ".base_problem, not to the yield wrapper")

    def mismatch_device_names(self) -> tuple[str, ...]:
        if self._device_names is None:
            self._device_names = self._base.mismatch_device_names()
        return self._device_names

    def simulate(self, design: dict[str, float]) -> dict[str, float]:
        nominal, ok = self._base.simulate_checked(design)
        if not ok:
            # Dead at nominal: the mismatch yield of a non-functional design
            # is zero by definition -- skip the whole sample fan-out.
            return self.failed_metrics()
        result = self._runner.run(self._base, design,
                                  device_names=self.mismatch_device_names())
        metrics = dict(nominal)
        metrics.update(result.estimate.as_metrics("yield"))
        metrics["mc_samples"] = float(result.n_samples)
        metrics.update(sigma_metrics(result.per_sample, self._base.objective,
                                     self._base.minimize,
                                     self._base.constraints))
        return metrics

    def failed_metrics(self) -> dict[str, float]:
        metrics = self._base.failed_metrics()
        # Sigma statistics of a design that was never sampled: the
        # pessimised value with zero spread keeps every key present and
        # every consumer (tables, surrogates) on finite floats.
        for name, value in list(metrics.items()):
            metrics[f"{name}_mean"] = value
            metrics[f"{name}_std"] = 0.0
            metrics[f"{name}_p99"] = value
        metrics.update({"yield": 0.0, "yield_ci_low": 0.0,
                        "yield_ci_high": 0.0, "mc_samples": 0.0})
        return metrics

    # ------------------------------------------------------------------ #
    # identity / bookkeeping                                              #
    # ------------------------------------------------------------------ #
    @property
    def cache_token(self) -> str:
        """Fold the base identity, the yield target and the MC setup in.

        Two yield problems sharing a name but differing in sample count,
        sampler, seed, CI target or any base configuration must never share
        design-cache entries -- their metric dictionaries differ.
        """
        parts = (self._base.cache_token, self.yield_target,
                 self.mc_config.describe())
        digest = hashlib.sha1(repr(parts).encode()).hexdigest()[:16]
        return f"{self.name}:{digest}"

    def describe(self) -> dict[str, object]:
        info = super().describe()
        info["yield_target"] = self.yield_target
        info["monte_carlo"] = self.mc_config.describe()
        info["mismatch_devices"] = list(self.mismatch_device_names())
        return info

    def close(self) -> None:
        """Shut down the sample fan-out backend's pool (idempotent)."""
        self._runner.close()
        self._base.close()


class TwoStageOpAmpYield(YieldSizingProblem):
    """Two-stage op-amp sized for spec yield under device mismatch."""

    def __init__(self, technology="180nm", yield_target=0.9, mc=None,
                 backend=None, max_workers=None, **kwargs):
        super().__init__("two_stage_opamp", TwoStageOpAmp,
                         technology=technology, yield_target=yield_target,
                         mc=mc, backend=backend, max_workers=max_workers,
                         **kwargs)


class ThreeStageOpAmpYield(YieldSizingProblem):
    """Three-stage op-amp sized for spec yield under device mismatch."""

    def __init__(self, technology="180nm", yield_target=0.9, mc=None,
                 backend=None, max_workers=None, **kwargs):
        super().__init__("three_stage_opamp", ThreeStageOpAmp,
                         technology=technology, yield_target=yield_target,
                         mc=mc, backend=backend, max_workers=max_workers,
                         **kwargs)


class BandgapReferenceYield(YieldSizingProblem):
    """Bandgap reference sized for spec yield under device mismatch."""

    def __init__(self, technology="180nm", yield_target=0.9, mc=None,
                 backend=None, max_workers=None, **kwargs):
        super().__init__("bandgap", BandgapReference,
                         technology=technology, yield_target=yield_target,
                         mc=mc, backend=backend, max_workers=max_workers,
                         **kwargs)


class LowDropoutRegulatorYield(YieldSizingProblem):
    """LDO sized for spec yield under device mismatch."""

    def __init__(self, technology="180nm", yield_target=0.9, mc=None,
                 backend=None, max_workers=None, **kwargs):
        super().__init__("ldo", LowDropoutRegulator,
                         technology=technology, yield_target=yield_target,
                         mc=mc, backend=backend, max_workers=max_workers,
                         **kwargs)


class DynamicComparatorYield(YieldSizingProblem):
    """Comparator offset sign-off: the spec-classification yield *is* the
    probability that sampled mismatch keeps the input-referred offset below
    the bench's input overdrive (the ``decision`` constraint)."""

    def __init__(self, technology="180nm", yield_target=0.9, mc=None,
                 backend=None, max_workers=None, **kwargs):
        super().__init__("comparator", DynamicComparator,
                         technology=technology, yield_target=yield_target,
                         mc=mc, backend=backend, max_workers=max_workers,
                         **kwargs)
