"""Shared infrastructure for the circuit sizing problems."""

from __future__ import annotations

import copy
import hashlib

import numpy as np

from repro.bo.design_space import DesignSpace
from repro.bo.problem import Constraint, OptimizationProblem
from repro.pdk import Technology, apply_variation, get_technology
from repro.pdk.variation import VariationSample
from repro.spice.ac import logspace_frequencies


class VariationBuilder:
    """A circuit builder wrapped with a local-mismatch post-pass.

    Calls the underlying builder, then perturbs the built netlist's MOSFETs
    according to the technology card's
    :attr:`~repro.pdk.Technology.variation` sample (see
    :func:`repro.pdk.apply_variation`).  Picklable whenever the wrapped
    builder is (bound methods of picklable problems qualify), so varied
    benches ship to process workers like nominal ones.
    """

    def __init__(self, builder, technology: Technology):
        self.builder = builder
        self.technology = technology

    def __call__(self, design: dict[str, float], **kwargs):
        circuit = self.builder(design, **kwargs)
        apply_variation(circuit, self.technology)
        return circuit


def simulate_design(problem: "CircuitSizingProblem",
                    design: dict[str, float]) -> dict[str, float]:
    """Pure, picklable worker entry point: run one testbench simulation.

    Every circuit problem's :meth:`~CircuitSizingProblem.simulate` is a pure
    function of the problem's configuration and the named design point -- no
    hidden mutable state -- so ``(problem, design)`` can be pickled to a
    process pool and simulated there.  The in-repo engine dispatches the
    higher-level :func:`repro.engine.evaluate_design_task` (which adds the
    constraint bookkeeping and failure encoding around ``evaluate``); this
    wrapper is the minimal metric-level entry point for external
    distribution frameworks that only want raw simulations.
    """
    return problem.simulate(design)


def simulate_checked_batch(jobs):
    """Run many ``(problem, design)`` simulations through one batched solve.

    The vectorised counterpart of calling each problem's
    :meth:`CircuitSizingProblem.simulate_checked` in a loop: every job's
    testbench is handed to one :class:`~repro.bench.BatchSimulator` session,
    which stacks the structurally-identical operating-point and AC solves
    across jobs into ``(B, N, N)`` tensor solves.  The jobs may carry
    *different* problem instances (per-sample mismatch clones, per-corner
    variants) as long as their benches declare the same analyses.

    Returns one entry per job, in order: ``(metrics, ok)`` exactly as
    :meth:`~CircuitSizingProblem.simulate_checked` would produce (pessimised
    :meth:`~repro.bo.problem.OptimizationProblem.failed_metrics` with
    ``ok=False`` for failed simulations), or a
    :class:`~repro.bench.BatchJobError` when the job's simulation *raised* --
    the batched analogue of the exception a serial ``simulate`` call would
    have thrown, for the caller's failure isolation to classify.

    Structurally incompatible benches (a :class:`ValueError` from the batch
    validator) fall back to per-job serial sessions, so this entry point is
    total over any job mix.
    """
    from repro.bench import BatchJobError, BatchSimulator, Simulator
    results = [None] * len(jobs)
    prepared = []
    for index, (problem, design) in enumerate(jobs):
        try:
            bench = problem.bench
        except Exception as exc:  # noqa: BLE001 - mirror serial simulate()
            results[index] = BatchJobError(
                type(exc).__name__, f"{type(exc).__name__}: {exc}")
            continue
        prepared.append((index, problem, bench, design))
    if prepared:
        try:
            outcomes = BatchSimulator().run(
                [(bench, design) for _, _, bench, design in prepared])
        except ValueError:
            # Mixed bench structures cannot share one batch; serial sessions
            # per job produce the identical results, just one at a time.
            outcomes = []
            for _, _, bench, design in prepared:
                try:
                    outcomes.append(Simulator().run(bench, design))
                except Exception as exc:  # noqa: BLE001
                    outcomes.append(BatchJobError(
                        type(exc).__name__, f"{type(exc).__name__}: {exc}"))
        for (index, problem, _, _), outcome in zip(prepared, outcomes):
            if isinstance(outcome, BatchJobError):
                results[index] = outcome
            elif not outcome.ok:
                results[index] = (problem.failed_metrics(), False)
            else:
                results[index] = (outcome.metrics, True)
    return results


class CircuitSizingProblem(OptimizationProblem):
    """Base class for testbench-backed sizing problems.

    Subclasses declare their simulation setup in :meth:`testbench` -- circuit
    builders, analyses, checks and measures (see :mod:`repro.bench`) -- and
    :meth:`simulate` executes it through a
    :class:`~repro.bench.Simulator` session with operating-point reuse.
    This class handles the technology card, the analysis temperature, the
    analysis frequency grid and the "failed simulation" metric values (a
    design whose DC analysis does not converge, or whose amplifier is
    effectively dead, must still return a full metric dictionary -- with
    values that violate the constraints -- see
    :meth:`repro.bo.problem.OptimizationProblem.failed_metrics` -- so the
    optimizers can learn from it).

    :meth:`simulate` is **pure and picklable**: it builds fresh netlists per
    call and touches no shared state, which is what lets the evaluation
    engine dispatch designs to worker processes (see :func:`simulate_design`).

    ``temperature`` is the default analysis temperature (Celsius) for every
    analysis that does not pin its own -- PVT corner variants retarget a
    whole problem to a corner temperature through it.
    """

    #: Testbench problems build one bench per design, which is exactly what
    #: :func:`simulate_checked_batch` can stack into vectorised solves.
    supports_batch_simulation = True

    def __init__(self, name: str, technology: str | Technology,
                 design_space: DesignSpace, objective: str, minimize: bool,
                 constraints: list[Constraint], temperature: float = 27.0):
        if isinstance(technology, str):
            technology = get_technology(technology)
        self.technology = technology
        self.sim_temperature = float(temperature)
        super().__init__(name=f"{name}_{technology.name}", design_space=design_space,
                         objective=objective, minimize=minimize, constraints=constraints)

    @property
    def cache_token(self) -> str:
        """Name plus a digest of scalar config and the technology card.

        Constructor options that change the testbench without changing the
        name -- e.g. ``load_capacitance`` or the analysis temperature -- must
        be part of the design-cache identity, or a shared cache could serve
        one configuration's metrics to another.  Hashing every scalar
        attribute covers present and future options without per-subclass
        bookkeeping; the technology fingerprint distinguishes same-named
        nodes with different silicon (PVT corner cards).
        """
        scalars = sorted((key, value) for key, value in self.__dict__.items()
                         if isinstance(value, (bool, int, float, str)))
        digest = hashlib.sha1(
            repr((scalars, self.technology.fingerprint)).encode()
        ).hexdigest()[:16]
        return f"{self.name}:{digest}"

    # ------------------------------------------------------------------ #
    # declarative testbench                                               #
    # ------------------------------------------------------------------ #
    def testbench(self):
        """Build this problem's declarative :class:`repro.bench.Testbench`.

        Subclasses construct the bench from their circuit builders and the
        measure/analysis vocabulary in :mod:`repro.bench`.  Called for every
        simulation (see :attr:`bench`), so it must be cheap and side-effect
        free: pure data assembly over ``self``'s configuration, with builders
        that are pure functions of the design point.
        """
        raise NotImplementedError

    def mc_testbench(self):
        """The bench used when a local-mismatch sample is applied.

        Defaults to :meth:`testbench`.  Circuits whose regular bench is
        *offset-intolerant* override this: an op-amp characterised open loop
        rails (or loses its bias entirely) under the millivolts of input
        offset that realistic Pelgrom mismatch produces, so its Monte Carlo
        bench must solve the DC bias in feedback -- the standard mismatch
        sign-off recipe -- while measuring the same metric names the
        constraints reference.  Closed-loop circuits (the bandgap, the
        follower settling bench) absorb offsets by construction and keep
        the default.
        """
        return self.testbench()

    @property
    def bench(self):
        """A freshly built testbench reflecting the *current* configuration.

        Deliberately not cached: the bench bakes in scalar configuration
        (temperature, frequency grids, transient windows) at construction,
        and a cached copy would go stale if an attribute is mutated after
        the first simulation -- while :attr:`cache_token` follows the new
        configuration, silently caching old-configuration metrics under the
        new identity.  Construction is dataclasses and closures, noise next
        to one Newton solve.

        When the technology card carries a local-mismatch sample (see
        :meth:`with_variation`), the bench comes from :meth:`mc_testbench`
        instead and every builder is wrapped so the built netlists are
        perturbed per device before simulation; the bench's declared
        analyses and measures are untouched.
        """
        if getattr(self.technology, "variation", None) is None:
            return self.testbench()
        bench = self.mc_testbench()
        bench.builders = {
            key: VariationBuilder(builder, self.technology)
            for key, builder in bench.builders.items()}
        return bench

    # ------------------------------------------------------------------ #
    # local mismatch                                                      #
    # ------------------------------------------------------------------ #
    def with_variation(self, sample: VariationSample) -> "CircuitSizingProblem":
        """A shallow derived problem carrying one mismatch sample.

        The clone shares every configuration attribute with this problem but
        holds ``technology.with_variation(sample)``; its simulations perturb
        each matched MOSFET by the sample's z-scores (scaled by the Pelgrom
        sigma of the device's sized geometry), and its
        :attr:`cache_token` differs through the derived card's fingerprint,
        so per-sample results never collide in a shared design cache.  The
        attached engine is dropped -- sample evaluation is orchestrated by
        :class:`repro.mc.MonteCarloRunner`, not per-clone engines.
        """
        clone = copy.copy(self)
        clone.technology = self.technology.with_variation(sample)
        clone._engine = None
        return clone

    def mismatch_device_names(self) -> tuple[str, ...]:
        """The matched devices: every MOSFET of the *mismatch* netlists.

        Builds each :meth:`mc_testbench` circuit once at the design-space
        midpoint (the device *set* is topology, independent of sizing) and
        returns the sorted union of MOSFET names across builders, so shared
        amplifier cores appearing in several netlist variants draw one
        consistent mismatch sample per device.  Enumerating the MC bench --
        not the nominal one -- matters: a device present only in the
        mismatch netlist (e.g. a bias servo) must still be sampled, or it
        would silently run at nominal in every Monte Carlo sample.
        """
        from repro.spice.devices.mosfet import Mosfet
        bench = self.mc_testbench()
        midpoint = self.design_space.from_unit(
            np.full((1, self.design_space.dim), 0.5))[0]
        design = self.design_space.as_dict(midpoint)
        names: set[str] = set()
        for builder in bench.builders.values():
            circuit = builder(design)
            names.update(device.name for device in circuit.devices
                         if isinstance(device, Mosfet))
        return tuple(sorted(names))

    def simulate(self, design: dict[str, float]) -> dict[str, float]:
        """Run the declarative testbench for one named design point."""
        return self.simulate_checked(design)[0]

    def simulate_checked(self, design: dict[str, float]
                         ) -> tuple[dict[str, float], bool]:
        """Like :meth:`simulate`, but with an explicit success flag.

        Returns ``(metrics, ok)`` where a failed simulation carries the
        pessimised :meth:`failed_metrics` and ``ok=False``.  Wrappers that
        must *branch* on failure (e.g. the yield problems skipping Monte
        Carlo for designs dead at nominal) use this instead of comparing
        the returned dictionary against the failure sentinel.
        """
        from repro.bench import Simulator
        result = Simulator().run(self.bench, design)
        if not result.ok:
            return self.failed_metrics(), False
        return result.metrics, True

    # ------------------------------------------------------------------ #
    # analysis helpers                                                    #
    # ------------------------------------------------------------------ #
    @property
    def ac_frequencies(self) -> np.ndarray:
        """Default AC grid: 10 mHz to 10 GHz, 10 points per decade.

        The grid starts well below the dominant pole of even very-high-gain
        designs so the measured low-frequency phase is a valid reference for
        the phase-margin computation.
        """
        return logspace_frequencies(1e-2, 1e10, points_per_decade=10)

    def describe(self) -> dict[str, object]:
        """Summary used by reports and the experiment index."""
        return {
            "name": self.name,
            "technology": self.technology.name,
            "n_design_variables": self.design_space.dim,
            "design_variables": self.design_space.names,
            "objective": self.objective,
            "minimize": self.minimize,
            "constraints": [
                f"{c.name} {'>=' if c.sense == 'ge' else '<='} {c.threshold}"
                for c in self.constraints
            ],
        }
