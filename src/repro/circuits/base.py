"""Shared infrastructure for the circuit sizing problems."""

from __future__ import annotations

import numpy as np

from repro.bo.design_space import DesignSpace
from repro.bo.problem import Constraint, OptimizationProblem
from repro.pdk import Technology, get_technology
from repro.spice.ac import logspace_frequencies


class CircuitSizingProblem(OptimizationProblem):
    """Base class for testbench-backed sizing problems.

    Subclasses build the netlist and extract metrics in :meth:`simulate`;
    this class handles the technology card, the analysis frequency grid and
    the "failed simulation" metric values (a design whose DC analysis does
    not converge, or whose amplifier is effectively dead, must still return
    a full metric dictionary -- with values that violate the constraints --
    so the optimizers can learn from it).
    """

    def __init__(self, name: str, technology: str | Technology,
                 design_space: DesignSpace, objective: str, minimize: bool,
                 constraints: list[Constraint]):
        if isinstance(technology, str):
            technology = get_technology(technology)
        self.technology = technology
        super().__init__(name=f"{name}_{technology.name}", design_space=design_space,
                         objective=objective, minimize=minimize, constraints=constraints)

    # ------------------------------------------------------------------ #
    # analysis helpers                                                    #
    # ------------------------------------------------------------------ #
    @property
    def ac_frequencies(self) -> np.ndarray:
        """Default AC grid: 10 mHz to 10 GHz, 10 points per decade.

        The grid starts well below the dominant pole of even very-high-gain
        designs so the measured low-frequency phase is a valid reference for
        the phase-margin computation.
        """
        return logspace_frequencies(1e-2, 1e10, points_per_decade=10)

    def failed_metrics(self) -> dict[str, float]:
        """Metric values reported for designs whose simulation failed.

        Subclasses override to provide problem-specific "very bad" values;
        the default pessimises every metric relative to its constraint.
        """
        metrics: dict[str, float] = {}
        large = 1e6
        metrics[self.objective] = large if self.minimize else -large
        for constraint in self.constraints:
            if constraint.sense == "ge":
                metrics[constraint.name] = constraint.threshold - large
            else:
                metrics[constraint.name] = constraint.threshold + large
        return metrics

    def describe(self) -> dict[str, object]:
        """Summary used by reports and the experiment index."""
        return {
            "name": self.name,
            "technology": self.technology.name,
            "n_design_variables": self.design_space.dim,
            "design_variables": self.design_space.names,
            "objective": self.objective,
            "minimize": self.minimize,
            "constraints": [
                f"{c.name} {'>=' if c.sense == 'ge' else '<='} {c.threshold}"
                for c in self.constraints
            ],
        }
