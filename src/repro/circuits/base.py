"""Shared infrastructure for the circuit sizing problems."""

from __future__ import annotations

import hashlib

import numpy as np

from repro.bo.design_space import DesignSpace
from repro.bo.problem import Constraint, OptimizationProblem
from repro.pdk import Technology, get_technology
from repro.spice.ac import logspace_frequencies


def simulate_design(problem: "CircuitSizingProblem",
                    design: dict[str, float]) -> dict[str, float]:
    """Pure, picklable worker entry point: run one testbench simulation.

    Every circuit problem's :meth:`~CircuitSizingProblem.simulate` is a pure
    function of the problem's configuration and the named design point -- no
    hidden mutable state -- so ``(problem, design)`` can be pickled to a
    process pool and simulated there.  The in-repo engine dispatches the
    higher-level :func:`repro.engine.evaluate_design_task` (which adds the
    constraint bookkeeping and failure encoding around ``evaluate``); this
    wrapper is the minimal metric-level entry point for external
    distribution frameworks that only want raw simulations.
    """
    return problem.simulate(design)


class CircuitSizingProblem(OptimizationProblem):
    """Base class for testbench-backed sizing problems.

    Subclasses build the netlist and extract metrics in :meth:`simulate`;
    this class handles the technology card, the analysis frequency grid and
    the "failed simulation" metric values (a design whose DC analysis does
    not converge, or whose amplifier is effectively dead, must still return
    a full metric dictionary -- with values that violate the constraints --
    see :meth:`repro.bo.problem.OptimizationProblem.failed_metrics` -- so
    the optimizers can learn from it).

    :meth:`simulate` is **pure and picklable**: it builds a fresh netlist
    per call and touches no shared state, which is what lets the evaluation
    engine dispatch designs to worker processes (see :func:`simulate_design`).
    """

    def __init__(self, name: str, technology: str | Technology,
                 design_space: DesignSpace, objective: str, minimize: bool,
                 constraints: list[Constraint]):
        if isinstance(technology, str):
            technology = get_technology(technology)
        self.technology = technology
        super().__init__(name=f"{name}_{technology.name}", design_space=design_space,
                         objective=objective, minimize=minimize, constraints=constraints)

    @property
    def cache_token(self) -> str:
        """Name (which embeds the technology) plus a digest of scalar config.

        Constructor options that change the testbench without changing the
        name -- e.g. ``load_capacitance`` -- must be part of the design-cache
        identity, or a shared cache could serve one configuration's metrics
        to another.  Hashing every scalar attribute covers present and
        future options without per-subclass bookkeeping.
        """
        scalars = sorted((key, value) for key, value in self.__dict__.items()
                         if isinstance(value, (bool, int, float, str)))
        digest = hashlib.sha1(repr(scalars).encode()).hexdigest()[:16]
        return f"{self.name}:{digest}"

    # ------------------------------------------------------------------ #
    # analysis helpers                                                    #
    # ------------------------------------------------------------------ #
    @property
    def ac_frequencies(self) -> np.ndarray:
        """Default AC grid: 10 mHz to 10 GHz, 10 points per decade.

        The grid starts well below the dominant pole of even very-high-gain
        designs so the measured low-frequency phase is a valid reference for
        the phase-margin computation.
        """
        return logspace_frequencies(1e-2, 1e10, points_per_decade=10)

    def describe(self) -> dict[str, object]:
        """Summary used by reports and the experiment index."""
        return {
            "name": self.name,
            "technology": self.technology.name,
            "n_design_variables": self.design_space.dim,
            "design_variables": self.design_space.names,
            "objective": self.objective,
            "minimize": self.minimize,
            "constraints": [
                f"{c.name} {'>=' if c.sense == 'ge' else '<='} {c.threshold}"
                for c in self.constraints
            ],
        }
