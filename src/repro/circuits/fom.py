"""Figure-of-merit wrapper turning constrained problems into FOM maximisation.

Implements paper Eq. 2: every metric is clipped at its specification bound,
normalised by the (min, max) observed over random samples, signed by whether
it is to be maximised or minimised, and summed.  The result is a single
unconstrained objective to *maximise* -- the setting of the paper's Fig. 4.

The wrapper is metric-agnostic: it works off the base problem's constraint
list, so the time-domain figures of merit (settling time, slew rate,
overshoot from :class:`repro.circuits.TwoStageOpAmpSettling`) fold into the
FOM exactly like the AC metrics -- window-capped settling times are finite
by construction, and any stray non-finite sample is already excluded from
the normalisation ranges.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.bo.problem import OptimizationProblem
from repro.circuits.base import CircuitSizingProblem
from repro.utils.random import RandomState, as_rng


class FOMProblem(OptimizationProblem):
    """Unconstrained FOM view of a constrained circuit problem (paper Eq. 2).

    Parameters
    ----------
    base:
        The underlying constrained circuit problem.
    n_normalization_samples:
        Number of random designs used to estimate each metric's ``f_min`` /
        ``f_max`` normalisation range (the paper uses 10,000; the default
        here is smaller because our simulator is the budget bottleneck in
        tests -- benchmarks pass a larger value).
    normalization:
        Optional pre-computed ``{metric: (f_min, f_max)}`` mapping; when
        given, no random sampling is performed.
    """

    def __init__(self, base: CircuitSizingProblem,
                 n_normalization_samples: int = 200,
                 normalization: dict[str, tuple[float, float]] | None = None,
                 rng: RandomState = None):
        super().__init__(name=f"fom_{base.name}", design_space=base.design_space,
                         objective="fom", minimize=False, constraints=[])
        self.base = base
        self.rng = as_rng(rng)
        if normalization is not None:
            self.normalization = dict(normalization)
        else:
            self.normalization = self._estimate_normalization(n_normalization_samples)

    # ------------------------------------------------------------------ #
    # normalisation ranges                                                 #
    # ------------------------------------------------------------------ #
    def _estimate_normalization(self, n_samples: int) -> dict[str, tuple[float, float]]:
        designs = self.base.design_space.sample(n_samples, rng=self.rng)
        evaluations = self.base.evaluate_batch(designs)
        metrics = self.base.metrics_matrix(evaluations)
        normalization: dict[str, tuple[float, float]] = {}
        for index, name in enumerate(self.base.metric_names):
            column = metrics[:, index]
            finite = column[np.isfinite(column) & (np.abs(column) < 1e5)]
            if finite.size == 0:
                finite = np.array([0.0, 1.0])
            f_min, f_max = float(finite.min()), float(finite.max())
            if f_max - f_min < 1e-12:
                f_max = f_min + 1.0
            normalization[name] = (f_min, f_max)
        return normalization

    # ------------------------------------------------------------------ #
    # FOM computation                                                     #
    # ------------------------------------------------------------------ #
    def fom_from_metrics(self, metrics: dict[str, float]) -> float:
        """Paper Eq. 2 applied to one metric dictionary."""
        total = 0.0
        for name in self.base.metric_names:
            f_min, f_max = self.normalization[name]
            value = float(metrics[name])
            if name == self.base.objective:
                minimize = self.base.minimize
                bound = None
            else:
                constraint = next(c for c in self.base.constraints if c.name == name)
                minimize = constraint.sense == "le"
                bound = constraint.threshold
            # Clip at the specification bound: exceeding the spec earns no
            # extra credit (min(f, f_bound) in Eq. 2 for maximised metrics).
            if bound is not None:
                value = min(value, bound) if not minimize else max(value, bound)
            value = float(np.clip(value, f_min, f_max))
            normalized = (value - f_min) / (f_max - f_min)
            weight = -1.0 if minimize else 1.0
            total += weight * normalized
        return float(total)

    def simulate(self, design: dict[str, float]) -> dict[str, float]:
        metrics = self.base.simulate(design)
        return {**metrics, "fom": self.fom_from_metrics(metrics)}

    def close(self) -> None:
        """Release resources the wrapped problem owns (corner-sweep pools)."""
        self.base.close()

    @property
    def cache_token(self) -> str:
        """Name plus a digest of the normalisation ranges and base identity.

        Two FOM wrappers may share a name while differing in their
        randomly-estimated ``(f_min, f_max)`` ranges *or* in their base
        problem's configuration (e.g. load capacitance), so both are part of
        the cache identity.
        """
        digest = hashlib.sha1(repr(sorted(self.normalization.items())).encode())
        digest.update(self.base.cache_token.encode())
        return f"{self.name}:{digest.hexdigest()[:16]}"

    def failed_metrics(self) -> dict[str, float]:
        """Pessimised base metrics plus the (worst-possible) FOM they imply.

        Keeps the :attr:`metric_names` completeness invariant -- the engine's
        failure isolation records these for crashed simulations, and
        :meth:`metrics_matrix` must find every name.
        """
        metrics = self.base.failed_metrics()
        return {**metrics, "fom": self.fom_from_metrics(metrics)}

    @property
    def metric_names(self) -> list[str]:
        return ["fom", *self.base.metric_names]
