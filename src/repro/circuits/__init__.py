"""Circuit sizing problems: the paper's three evaluation testbenches.

Each testbench builds a parametric netlist for :mod:`repro.spice`, runs DC
operating-point, AC and (for the bandgap) temperature analyses, and exposes
the result as a constrained :class:`repro.bo.OptimizationProblem`:

* :class:`TwoStageOpAmp` -- Eq. 15: minimise ``I_total`` s.t. PM, GBW, Gain.
* :class:`TwoStageOpAmpSettling` -- time-domain variant: minimise the 1%
  settling time of a unity-gain follower step response s.t. slew rate and
  overshoot limits (transient analysis).
* :class:`ThreeStageOpAmp` -- Eq. 16: same metrics, higher gain target.
* :class:`BandgapReference` -- Eq. 17: minimise TC s.t. ``I_total``, PSRR.

:class:`FOMProblem` wraps any of them into the unconstrained
figure-of-merit objective of Eq. 2 for the Fig. 4 experiments.
"""

from repro.circuits.base import CircuitSizingProblem, simulate_design
from repro.circuits.two_stage_opamp import TwoStageOpAmp, TwoStageOpAmpSettling
from repro.circuits.three_stage_opamp import ThreeStageOpAmp
from repro.circuits.bandgap import BandgapReference
from repro.circuits.fom import FOMProblem
from repro.circuits.registry import available_problems, make_problem

__all__ = [
    "CircuitSizingProblem",
    "TwoStageOpAmp",
    "TwoStageOpAmpSettling",
    "ThreeStageOpAmp",
    "BandgapReference",
    "FOMProblem",
    "make_problem",
    "available_problems",
    "simulate_design",
]
