"""Circuit sizing problems: the paper's three evaluation testbenches.

Each testbench builds a parametric netlist for :mod:`repro.spice`, runs DC
operating-point, AC and (for the bandgap) temperature analyses, and exposes
the result as a constrained :class:`repro.bo.OptimizationProblem`:

* :class:`TwoStageOpAmp` -- Eq. 15: minimise ``I_total`` s.t. PM, GBW, Gain.
* :class:`TwoStageOpAmpSettling` -- time-domain variant: minimise the 1%
  settling time of a unity-gain follower step response s.t. slew rate and
  overshoot limits (transient analysis).
* :class:`ThreeStageOpAmp` -- Eq. 16: same metrics, higher gain target.
* :class:`BandgapReference` -- Eq. 17: minimise TC s.t. ``I_total``, PSRR.

Beyond the paper's three circuits, the registry carries scenario-expansion
families exercising the wider analysis surface:

* :class:`LowDropoutRegulator` -- PSRR, output noise (adjoint noise
  analysis) and load-transient droop of a PMOS-pass LDO.
* :class:`DynamicComparator` -- StrongARM latch decision time; its yield
  variant turns Monte Carlo mismatch into an input-referred offset test.
* :class:`RingOscillatorVCO` -- ring frequency, standing power and an
  integrated-noise phase-noise proxy at the metastable bias.

Each testbench is *declarative*: the problem's ``testbench()`` method builds
a :class:`repro.bench.Testbench` (circuits, analyses, checks, measures) and
``simulate()`` executes it with operating-point reuse.  The ``*_corners``
variants (:mod:`repro.circuits.corners`) evaluate the same benches across a
PVT corner set and report worst-case metrics, the ``*_yield`` variants
(:mod:`repro.circuits.montecarlo`) estimate each design's spec yield under
seeded Pelgrom device mismatch, and the ``*_robust`` variants
(:mod:`repro.circuits.robust`) compose the two -- worst-case-corner
mismatch yield -- robust sizing for every optimizer with zero optimizer
changes.

:class:`FOMProblem` wraps any of them into the unconstrained
figure-of-merit objective of Eq. 2 for the Fig. 4 experiments.
"""

from repro.circuits.base import CircuitSizingProblem, simulate_design
from repro.circuits.two_stage_opamp import TwoStageOpAmp, TwoStageOpAmpSettling
from repro.circuits.three_stage_opamp import ThreeStageOpAmp
from repro.circuits.bandgap import BandgapReference
from repro.circuits.ldo import LowDropoutRegulator
from repro.circuits.comparator import DynamicComparator
from repro.circuits.ring_vco import RingOscillatorVCO
from repro.circuits.corners import (
    BandgapReferenceCorners,
    CornerSizingProblem,
    LowDropoutRegulatorCorners,
    ThreeStageOpAmpCorners,
    TwoStageOpAmpCorners,
)
from repro.circuits.montecarlo import (
    BandgapReferenceYield,
    DynamicComparatorYield,
    LowDropoutRegulatorYield,
    ThreeStageOpAmpYield,
    TwoStageOpAmpYield,
    YieldSizingProblem,
)
from repro.circuits.robust import (
    BandgapReferenceRobust,
    LowDropoutRegulatorRobust,
    RobustSizingProblem,
    TwoStageOpAmpRobust,
    default_robust_corners,
)
from repro.circuits.fom import FOMProblem
from repro.circuits.registry import (
    available_problems,
    make_problem,
    register_problem,
)

__all__ = [
    "CircuitSizingProblem",
    "TwoStageOpAmp",
    "TwoStageOpAmpSettling",
    "ThreeStageOpAmp",
    "BandgapReference",
    "CornerSizingProblem",
    "TwoStageOpAmpCorners",
    "ThreeStageOpAmpCorners",
    "BandgapReferenceCorners",
    "YieldSizingProblem",
    "TwoStageOpAmpYield",
    "ThreeStageOpAmpYield",
    "BandgapReferenceYield",
    "LowDropoutRegulator",
    "DynamicComparator",
    "RingOscillatorVCO",
    "LowDropoutRegulatorCorners",
    "LowDropoutRegulatorYield",
    "DynamicComparatorYield",
    "RobustSizingProblem",
    "TwoStageOpAmpRobust",
    "BandgapReferenceRobust",
    "LowDropoutRegulatorRobust",
    "default_robust_corners",
    "FOMProblem",
    "make_problem",
    "available_problems",
    "register_problem",
    "simulate_design",
]
