"""Three-stage nested-Miller operational amplifier testbench (paper Eq. 16).

Topology (paper Fig. 3b, standard three-stage NMC amplifier):

* first stage -- NMOS differential pair with ideal tail current ``Ib1`` and
  PMOS mirror load;
* second stage -- NMOS common-source device biased by an ideal current
  source from the supply (``Ib2``);
* third stage -- PMOS common-source output device biased by an ideal current
  sink (``Ib3``);
* nested Miller capacitors ``Cm1`` (output -> first-stage output) and
  ``Cm2`` (output -> second-stage output);
* capacitive load ``CL``.

The design space has twelve variables -- intentionally a different
dimensionality from the two-stage amplifier, because KAT-GP's encoder has to
bridge design spaces of different sizes (paper section 3.2).
"""

from __future__ import annotations

import numpy as np

from repro import bench
from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.problem import Constraint
from repro.circuits.base import CircuitSizingProblem
from repro.pdk import Technology
from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    Mosfet,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
)


def _three_stage_design_space(technology: Technology) -> DesignSpace:
    min_w, max_w = technology.min_width, technology.max_width
    min_l, max_l = technology.min_length, technology.max_length
    return DesignSpace([
        DesignVariable("w_diff", min_w * 4, max_w, log_scale=True, unit="m"),
        DesignVariable("l_diff", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("w_load", min_w * 4, max_w, log_scale=True, unit="m"),
        DesignVariable("l_load", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("w_mid", min_w * 4, max_w, log_scale=True, unit="m"),
        DesignVariable("l_mid", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("w_out", min_w * 8, max_w, log_scale=True, unit="m"),
        DesignVariable("l_out", min_l, max_l, log_scale=True, unit="m"),
        DesignVariable("c_m1", 0.1e-12, 10e-12, log_scale=True, unit="F"),
        DesignVariable("c_m2", 0.05e-12, 5e-12, log_scale=True, unit="F"),
        DesignVariable("i_bias1", 1e-6, 80e-6, log_scale=True, unit="A"),
        DesignVariable("i_bias23", 2e-6, 250e-6, log_scale=True, unit="A"),
    ])


class ThreeStageOpAmp(CircuitSizingProblem):
    """Constrained sizing of the three-stage OpAmp.

    180 nm constraints follow paper Eq. 16 (PM > 60 deg, GBW > 2 MHz,
    Gain > 80 dB); the 40 nm variant relaxes the gain target to 70 dB as in
    the paper's Table 2.
    """

    def __init__(self, technology: str | Technology = "180nm",
                 load_capacitance: float = 15e-12):
        tech = technology
        if isinstance(tech, str):
            from repro.pdk import get_technology
            tech = get_technology(tech)
        space = _three_stage_design_space(tech)
        gain_spec = 80.0 if tech.name == "180nm" else 70.0
        constraints = [
            Constraint("gain", gain_spec, "ge"),
            Constraint("pm", 60.0, "ge"),
            Constraint("gbw", 2.0, "ge"),
        ]
        super().__init__(name="three_stage_opamp", technology=tech, design_space=space,
                         objective="i_total", minimize=True, constraints=constraints)
        self.load_capacitance = float(load_capacitance)

    # ------------------------------------------------------------------ #
    # netlist                                                             #
    # ------------------------------------------------------------------ #
    def build_circuit(self, design: dict[str, float], feedback: bool = False,
                      supply_ac: float = 0.0) -> Circuit:
        """Construct the testbench netlist for one design point.

        A cascade of three high-gain stages does not self-bias in open loop,
        so the DC operating point is solved in unity-gain feedback
        (``feedback=True`` ties the output to the inverting input) and the
        open-loop AC analysis (``feedback=False``) reuses that operating
        point -- the standard op-amp characterisation recipe.
        """
        tech = self.technology
        vdd, vcm = tech.vdd, tech.common_mode
        w_diff = tech.clamp_width(design["w_diff"])
        l_diff = tech.clamp_length(design["l_diff"])
        w_load = tech.clamp_width(design["w_load"])
        l_load = tech.clamp_length(design["l_load"])
        w_mid = tech.clamp_width(design["w_mid"])
        l_mid = tech.clamp_length(design["l_mid"])
        w_out = tech.clamp_width(design["w_out"])
        l_out = tech.clamp_length(design["l_out"])

        circuit = Circuit(f"three_stage_opamp_{tech.name}")
        circuit.add(VoltageSource("VDD", "vdd", "0", dc=vdd, ac=supply_ac))
        # The signal path inn -> out1 -> out2 -> out has polarities (-, +, -),
        # so the output must be fed back to the *non-inverting-named* input
        # (MN1's gate) for the unity-gain DC bias; open-loop AC drives both
        # inputs differentially.
        if feedback:
            inp_node = "out"
        else:
            inp_node = "inp"
            circuit.add(VoltageSource("VIP", "inp", "0", dc=vcm, ac=+0.5))
        circuit.add(VoltageSource("VIN", "inn", "0", dc=vcm, ac=-0.5))
        # Stage 1: NMOS diff pair + PMOS mirror load (output on MN2's drain).
        circuit.add(CurrentSource("IB1", "tail", "0", dc=design["i_bias1"]))
        circuit.add(Mosfet("MN1", "x1", inp_node, "tail", "0", tech.nmos, w_diff, l_diff))
        circuit.add(Mosfet("MN2", "out1", "inn", "tail", "0", tech.nmos, w_diff, l_diff))
        circuit.add(Mosfet("MP1", "x1", "x1", "vdd", "vdd", tech.pmos, w_load, l_load))
        circuit.add(Mosfet("MP2", "out1", "x1", "vdd", "vdd", tech.pmos, w_load, l_load))
        # Stage 2 (non-inverting): PMOS common source into an NMOS current
        # mirror whose output pulls from the ideal source IB2.
        circuit.add(Mosfet("MP4", "y2", "out1", "vdd", "vdd", tech.pmos, w_mid, l_mid))
        circuit.add(Mosfet("MN5", "y2", "y2", "0", "0", tech.nmos, w_mid, l_mid))
        circuit.add(Mosfet("MN6", "out2", "y2", "0", "0", tech.nmos, w_mid, l_mid))
        circuit.add(CurrentSource("IB2", "vdd", "out2", dc=design["i_bias23"]))
        # Stage 3 (inverting): NMOS common source with an ideal current-source load.
        circuit.add(Mosfet("MN7", "out", "out2", "0", "0", tech.nmos, w_out, l_out))
        circuit.add(CurrentSource("IB3", "vdd", "out", dc=design["i_bias23"]))
        # Nested Miller compensation (stages 2+3 are net inverting) and load.
        circuit.add(Capacitor("CM1", "out", "out1", max(design["c_m1"], 1e-15)))
        circuit.add(Capacitor("CM2", "out", "out2", max(design["c_m2"], 1e-15)))
        circuit.add(Capacitor("CL", "out", "0", self.load_capacitance))
        return circuit

    def _build_feedback_circuit(self, design: dict[str, float]) -> Circuit:
        return self.build_circuit(design, feedback=True)

    # ------------------------------------------------------------------ #
    # evaluation                                                          #
    # ------------------------------------------------------------------ #
    def testbench(self) -> bench.Testbench:
        """Two netlist variants, one bias: the DC operating point is solved
        on the unity-feedback circuit and reused by the open-loop AC analysis
        (device names match across the variants, so the small-signal stamps
        linearise around the feedback bias -- the standard op-amp recipe)."""
        return bench.Testbench(
            name=self.name,
            builders={"dc": self._build_feedback_circuit,
                      "main": self.build_circuit},
            analyses=[
                bench.OPSpec("op", circuit="dc"),
                bench.ACSpec("ac", circuit="main",
                             frequencies=self.ac_frequencies,
                             observe=("out",), op="op"),
            ],
            measures=[
                bench.supply_current_ua(analysis="op", source="VDD",
                                        circuit="dc", name="i_total"),
                bench.gain_db("ac", "out", name="gain"),
                bench.phase_margin_deg("ac", "out", name="pm"),
                bench.gbw_mhz("ac", "out", name="gbw"),
            ],
            temperature=self.sim_temperature)

    def _legacy_simulate(self, design: dict[str, float]) -> dict[str, float]:
        """Pre-testbench imperative path, kept as the equivalence reference."""
        # DC bias point in unity-gain feedback.
        dc_circuit = self.build_circuit(design, feedback=True)
        op = dc_operating_point(dc_circuit)
        if not op.converged:
            return self.failed_metrics()
        # Open-loop AC analysis around that bias point (device names match).
        ac_circuit = self.build_circuit(design, feedback=False)
        # Total supply current from the VDD source branch of the bias solution.
        i_total = abs(dc_circuit.device("VDD").branch_current(op.voltages))
        ac = ac_analysis(ac_circuit, op, self.ac_frequencies, observe=["out"])
        gain_db = ac.dc_gain_db("out")
        gbw_hz = ac.unity_gain_frequency("out")
        pm_deg = ac.phase_margin_degrees("out")
        if not np.isfinite(gain_db):
            return self.failed_metrics()
        return {
            "i_total": i_total * 1e6,
            "gain": float(gain_db),
            "pm": float(pm_deg),
            "gbw": float(gbw_hz / 1e6),
        }
