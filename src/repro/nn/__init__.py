"""Minimal neural-network building blocks on top of :mod:`repro.autodiff`.

The paper only needs small shallow networks: the KAT-GP encoder and decoder
are ``linear(d_in x 32) - sigmoid - linear(32 x d_out)`` and the Neural
Kernel wraps linear maps around primitive kernels.  This package provides
those building blocks with a PyTorch-like ``Module`` API.
"""

from repro.nn.module import Module, Parameter
from repro.nn.layers import Identity, Linear, MLP, Sequential, Sigmoid, Tanh, ReLU
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Sigmoid",
    "Tanh",
    "ReLU",
    "Identity",
    "Sequential",
    "MLP",
    "init",
]
