"""Layers: linear maps, activations, sequential containers and a small MLP."""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor
from repro.autodiff.functional import as_tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.random import RandomState, as_rng


class Linear(Module):
    """Affine map ``y = x W^T + b`` for row-major inputs of shape ``(n, d_in)``."""

    def __init__(self, in_features: int, out_features: int,
                 bias: bool = True, rng: RandomState = None,
                 init_scheme: str = "xavier_uniform"):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = as_rng(rng)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        if init_scheme == "xavier_uniform":
            weight = init.xavier_uniform(in_features, out_features, rng)
        elif init_scheme == "xavier_normal":
            weight = init.xavier_normal(in_features, out_features, rng)
        elif init_scheme == "kaiming_uniform":
            weight = init.kaiming_uniform(in_features, out_features, rng)
        elif init_scheme == "near_identity":
            weight = init.near_identity(in_features, out_features, rng)
        else:
            raise ValueError(f"unknown init scheme: {init_scheme!r}")
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, x) -> Tensor:
        x = as_tensor(x)
        out = x @ self.weight.transpose()
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Linear(in_features={self.in_features}, "
                f"out_features={self.out_features}, "
                f"bias={self.bias is not None})")


class Sigmoid(Module):
    """Elementwise logistic activation."""

    def forward(self, x) -> Tensor:
        return as_tensor(x).sigmoid()


class Tanh(Module):
    """Elementwise hyperbolic-tangent activation."""

    def forward(self, x) -> Tensor:
        return as_tensor(x).tanh()


class ReLU(Module):
    """Elementwise rectified-linear activation."""

    def forward(self, x) -> Tensor:
        return as_tensor(x).relu()


class Identity(Module):
    """Pass-through layer (useful as a disabled encoder/decoder)."""

    def forward(self, x) -> Tensor:
        return as_tensor(x)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module):
        self.children = list(modules)

    def forward(self, x) -> Tensor:
        out = as_tensor(x)
        for module in self.children:
            out = module(out)
        return out

    def __len__(self) -> int:
        return len(self.children)

    def __getitem__(self, index: int) -> Module:
        return self.children[index]


_ACTIVATIONS = {
    "sigmoid": Sigmoid,
    "tanh": Tanh,
    "relu": ReLU,
    "identity": Identity,
}


class MLP(Module):
    """A small fully connected network.

    The paper's encoder and decoder are the special case
    ``MLP(d_in, d_out, hidden=(32,), activation="sigmoid")``.
    """

    def __init__(self, in_features: int, out_features: int,
                 hidden: tuple[int, ...] = (32,), activation: str = "sigmoid",
                 rng: RandomState = None, output_activation: str = "identity"):
        rng = as_rng(rng)
        if activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {activation!r}")
        if output_activation not in _ACTIVATIONS:
            raise ValueError(f"unknown output activation {output_activation!r}")
        sizes = [int(in_features), *[int(h) for h in hidden], int(out_features)]
        layers: list[Module] = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            layers.append(Linear(fan_in, fan_out, rng=rng))
            is_last = index == len(sizes) - 2
            layers.append(_ACTIVATIONS[output_activation if is_last else activation]())
        self.net = Sequential(*layers)
        self.in_features = int(in_features)
        self.out_features = int(out_features)

    def forward(self, x) -> Tensor:
        return self.net(x)
