"""Base classes for trainable modules and their parameters."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.autodiff import Tensor


class Parameter(Tensor):
    """A tensor that is registered as trainable by :class:`Module`."""

    def __init__(self, data, name: str | None = None):
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class with parameter registration, in the spirit of ``nn.Module``.

    Sub-modules and parameters assigned as attributes are discovered
    automatically, so optimizers can simply iterate ``module.parameters()``.
    """

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # parameter management                                                #
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(name, parameter)`` pairs for this module and children."""
        seen: set[int] = set()
        for attr_name, value in vars(self).items():
            full = f"{prefix}{attr_name}"
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full}.{index}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{index}.")
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Parameter):
                        yield f"{full}.{key}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{key}.")

    def parameters(self) -> list[Parameter]:
        """Return the unique trainable parameters of this module tree."""
        unique: list[Parameter] = []
        seen: set[int] = set()
        for _, param in self.named_parameters():
            if id(param) not in seen:
                seen.add(id(param))
                unique.append(param)
        return unique

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return int(sum(p.size for p in self.parameters()))

    # ------------------------------------------------------------------ #
    # (de)serialisation                                                   #
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Return a copy of all parameter values keyed by dotted name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            value = np.asarray(value, dtype=float)
            if value.shape != own[name].data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{value.shape} vs {own[name].data.shape}"
                )
            own[name].data = value.copy()
