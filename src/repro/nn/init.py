"""Weight-initialisation schemes for the small networks used by KATO."""

from __future__ import annotations

import numpy as np

from repro.utils.random import RandomState, as_rng


def xavier_uniform(fan_in: int, fan_out: int, rng: RandomState = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_out, fan_in)`` weight."""
    rng = as_rng(rng)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=(fan_out, fan_in))


def xavier_normal(fan_in: int, fan_out: int, rng: RandomState = None) -> np.ndarray:
    """Glorot/Xavier normal initialisation for a ``(fan_out, fan_in)`` weight."""
    rng = as_rng(rng)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=(fan_out, fan_in))


def kaiming_uniform(fan_in: int, fan_out: int, rng: RandomState = None) -> np.ndarray:
    """He uniform initialisation, appropriate for ReLU networks."""
    rng = as_rng(rng)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=(fan_out, fan_in))


def near_identity(fan_in: int, fan_out: int, rng: RandomState = None,
                  noise: float = 0.01) -> np.ndarray:
    """Initialise close to (a slice of) the identity map.

    The KAT-GP encoder benefits from starting near the identity so that the
    aligned source GP initially behaves like the plain source GP on shared
    dimensions; small noise breaks symmetry for training.
    """
    rng = as_rng(rng)
    weight = np.zeros((fan_out, fan_in))
    for i in range(min(fan_in, fan_out)):
        weight[i, i] = 1.0
    return weight + rng.normal(0.0, noise, size=weight.shape)
