"""Pareto-dominance utilities (minimisation convention throughout)."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_matrix


def is_dominated(a: np.ndarray, b: np.ndarray) -> bool:
    """Return True when objective vector ``a`` is dominated by ``b``.

    ``b`` dominates ``a`` when it is no worse in every objective and strictly
    better in at least one (minimisation).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(b <= a) and np.any(b < a))


def pareto_front_mask(objectives) -> np.ndarray:
    """Boolean mask of non-dominated rows of an ``(n, k)`` objective matrix."""
    objectives = check_matrix(objectives, "objectives")
    n = objectives.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        if not mask[i]:
            continue
        dominated_by_i = np.all(objectives[i] <= objectives, axis=1) & np.any(
            objectives[i] < objectives, axis=1)
        dominated_by_i[i] = False
        mask &= ~dominated_by_i
        # Re-check i itself: if anything dominates i, clear it.
        dominates_i = np.all(objectives <= objectives[i], axis=1) & np.any(
            objectives < objectives[i], axis=1)
        if np.any(dominates_i & mask):
            mask[i] = False
    return mask


def fast_non_dominated_sort(objectives) -> list[np.ndarray]:
    """Deb's fast non-dominated sorting.

    Returns a list of index arrays; the first entry is the Pareto front,
    subsequent entries are successive fronts after removing earlier ones.
    """
    objectives = check_matrix(objectives, "objectives")
    n = objectives.shape[0]
    dominated_sets: list[list[int]] = [[] for _ in range(n)]
    domination_counts = np.zeros(n, dtype=int)

    for i in range(n):
        better = np.all(objectives[i] <= objectives, axis=1) & np.any(
            objectives[i] < objectives, axis=1)
        worse = np.all(objectives <= objectives[i], axis=1) & np.any(
            objectives < objectives[i], axis=1)
        dominated_sets[i] = list(np.nonzero(better)[0])
        domination_counts[i] = int(np.count_nonzero(worse))

    fronts: list[np.ndarray] = []
    current = np.nonzero(domination_counts == 0)[0]
    while current.size:
        fronts.append(current)
        counts = domination_counts.copy()
        for index in current:
            for dominated in dominated_sets[index]:
                counts[dominated] -= 1
            counts[index] = -1  # mark as assigned
        domination_counts = counts
        current = np.nonzero(domination_counts == 0)[0]
    return fronts


def crowding_distance(objectives) -> np.ndarray:
    """NSGA-II crowding distance of each row (larger = more isolated)."""
    objectives = check_matrix(objectives, "objectives")
    n, k = objectives.shape
    if n <= 2:
        return np.full(n, np.inf)
    distance = np.zeros(n)
    for j in range(k):
        order = np.argsort(objectives[:, j], kind="stable")
        spread = objectives[order[-1], j] - objectives[order[0], j]
        distance[order[0]] = np.inf
        distance[order[-1]] = np.inf
        if spread <= 1e-15:
            continue
        gaps = (objectives[order[2:], j] - objectives[order[:-2], j]) / spread
        distance[order[1:-1]] += gaps
    return distance


def hypervolume_2d(front, reference) -> float:
    """Hypervolume of a 2-objective front w.r.t. a reference point (minimisation)."""
    front = check_matrix(front, "front", n_cols=2)
    reference = np.asarray(reference, dtype=float)
    mask = np.all(front <= reference, axis=1)
    front = front[mask]
    if front.shape[0] == 0:
        return 0.0
    front = front[pareto_front_mask(front)]
    order = np.argsort(front[:, 0])
    front = front[order]
    volume = 0.0
    previous_y = reference[1]
    for x, y in front:
        volume += (reference[0] - x) * (previous_y - y)
        previous_y = y
    return float(volume)
