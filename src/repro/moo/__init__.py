"""Multi-objective optimization utilities: NSGA-II and Pareto-front tools."""

from repro.moo.pareto import (
    crowding_distance,
    fast_non_dominated_sort,
    hypervolume_2d,
    is_dominated,
    pareto_front_mask,
)
from repro.moo.nsga2 import NSGA2, NSGA2Result

__all__ = [
    "NSGA2",
    "NSGA2Result",
    "fast_non_dominated_sort",
    "crowding_distance",
    "pareto_front_mask",
    "is_dominated",
    "hypervolume_2d",
]
