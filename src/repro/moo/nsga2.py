"""NSGA-II genetic multi-objective optimizer.

MACE (and KATO's modified constrained MACE) search the Pareto front of the
acquisition objectives with NSGA-II (paper section 3.3).  This is a standard
implementation with simulated binary crossover (SBX), polynomial mutation,
binary tournament selection on (rank, crowding distance) and elitist
environmental selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.moo.pareto import crowding_distance, fast_non_dominated_sort
from repro.utils.random import RandomState, as_rng
from repro.utils.validation import check_matrix


@dataclass
class NSGA2Result:
    """Result of one NSGA-II run.

    Attributes
    ----------
    x:
        Final population decision variables, ``(pop_size, d)``.
    objectives:
        Final population objective values, ``(pop_size, k)``.
    pareto_x / pareto_objectives:
        The non-dominated subset of the final population.
    n_generations:
        Number of generations actually run.
    """

    x: np.ndarray
    objectives: np.ndarray
    pareto_x: np.ndarray
    pareto_objectives: np.ndarray
    n_generations: int


class NSGA2:
    """NSGA-II for box-constrained multi-objective minimisation.

    Parameters
    ----------
    pop_size:
        Population size (kept even internally).
    n_generations:
        Number of generations.
    crossover_prob / crossover_eta:
        SBX probability and distribution index.
    mutation_prob / mutation_eta:
        Per-gene polynomial-mutation probability (defaults to ``1/d``) and
        distribution index.
    """

    def __init__(self, pop_size: int = 64, n_generations: int = 40,
                 crossover_prob: float = 0.9, crossover_eta: float = 15.0,
                 mutation_prob: float | None = None, mutation_eta: float = 20.0,
                 rng: RandomState = None):
        if pop_size < 4:
            raise ValueError("pop_size must be at least 4")
        self.pop_size = int(pop_size) + (int(pop_size) % 2)
        self.n_generations = int(n_generations)
        self.crossover_prob = float(crossover_prob)
        self.crossover_eta = float(crossover_eta)
        self.mutation_prob = mutation_prob
        self.mutation_eta = float(mutation_eta)
        self.rng = as_rng(rng)

    # ------------------------------------------------------------------ #
    # public API                                                          #
    # ------------------------------------------------------------------ #
    def minimize(self, objective_fn: Callable[[np.ndarray], np.ndarray],
                 bounds, initial_population: np.ndarray | None = None) -> NSGA2Result:
        """Minimise a vector objective over a box.

        Parameters
        ----------
        objective_fn:
            Vectorised callable mapping ``(n, d)`` decision matrices to
            ``(n, k)`` objective matrices (minimisation).
        bounds:
            ``(d, 2)`` lower/upper bounds.
        initial_population:
            Optional seed individuals (clipped to bounds); the rest of the
            population is sampled uniformly.
        """
        bounds = check_matrix(bounds, "bounds", n_cols=2)
        dim = bounds.shape[0]
        lower, upper = bounds[:, 0], bounds[:, 1]
        if np.any(upper < lower):
            raise ValueError("upper bounds must not be below lower bounds")
        mutation_prob = self.mutation_prob if self.mutation_prob is not None else 1.0 / dim

        population = self.rng.uniform(lower, upper, size=(self.pop_size, dim))
        if initial_population is not None:
            seed = check_matrix(initial_population, "initial_population", n_cols=dim)
            count = min(seed.shape[0], self.pop_size)
            population[:count] = np.clip(seed[:count], lower, upper)
        objectives = self._evaluate(objective_fn, population)

        for _ in range(self.n_generations):
            offspring = self._make_offspring(population, objectives, lower, upper,
                                             mutation_prob)
            offspring_objectives = self._evaluate(objective_fn, offspring)
            population, objectives = self._environmental_selection(
                np.vstack([population, offspring]),
                np.vstack([objectives, offspring_objectives]),
            )

        fronts = fast_non_dominated_sort(objectives)
        pareto = fronts[0]
        return NSGA2Result(
            x=population,
            objectives=objectives,
            pareto_x=population[pareto],
            pareto_objectives=objectives[pareto],
            n_generations=self.n_generations,
        )

    # ------------------------------------------------------------------ #
    # internals                                                           #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _evaluate(objective_fn, population: np.ndarray) -> np.ndarray:
        values = np.asarray(objective_fn(population), dtype=float)
        if values.ndim == 1:
            values = values.reshape(-1, 1)
        if values.shape[0] != population.shape[0]:
            raise ValueError(
                "objective_fn must return one row per individual "
                f"({values.shape[0]} vs {population.shape[0]})"
            )
        # Non-finite objectives are treated as maximally bad.
        values = np.where(np.isfinite(values), values, 1e18)
        return values

    def _rank_and_crowding(self, objectives: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        ranks = np.empty(objectives.shape[0], dtype=int)
        crowding = np.empty(objectives.shape[0], dtype=float)
        for rank, front in enumerate(fast_non_dominated_sort(objectives)):
            ranks[front] = rank
            crowding[front] = crowding_distance(objectives[front])
        return ranks, crowding

    def _tournament(self, ranks: np.ndarray, crowding: np.ndarray, count: int) -> np.ndarray:
        candidates = self.rng.integers(0, ranks.shape[0], size=(count, 2))
        first, second = candidates[:, 0], candidates[:, 1]
        better_rank = ranks[first] < ranks[second]
        equal_rank = ranks[first] == ranks[second]
        better_crowd = crowding[first] > crowding[second]
        pick_first = better_rank | (equal_rank & better_crowd)
        return np.where(pick_first, first, second)

    def _sbx(self, parents_a: np.ndarray, parents_b: np.ndarray,
             lower: np.ndarray, upper: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Simulated binary crossover on parent pairs."""
        shape = parents_a.shape
        u = self.rng.uniform(size=shape)
        beta = np.where(
            u <= 0.5,
            (2.0 * u) ** (1.0 / (self.crossover_eta + 1.0)),
            (1.0 / (2.0 * (1.0 - u))) ** (1.0 / (self.crossover_eta + 1.0)),
        )
        do_cross = self.rng.uniform(size=(shape[0], 1)) < self.crossover_prob
        beta = np.where(do_cross, beta, 1.0)
        child_a = 0.5 * ((1 + beta) * parents_a + (1 - beta) * parents_b)
        child_b = 0.5 * ((1 - beta) * parents_a + (1 + beta) * parents_b)
        return (np.clip(child_a, lower, upper), np.clip(child_b, lower, upper))

    def _polynomial_mutation(self, population: np.ndarray, lower: np.ndarray,
                             upper: np.ndarray, mutation_prob: float) -> np.ndarray:
        span = np.maximum(upper - lower, 1e-30)
        u = self.rng.uniform(size=population.shape)
        do_mutate = self.rng.uniform(size=population.shape) < mutation_prob
        delta = np.where(
            u < 0.5,
            (2.0 * u) ** (1.0 / (self.mutation_eta + 1.0)) - 1.0,
            1.0 - (2.0 * (1.0 - u)) ** (1.0 / (self.mutation_eta + 1.0)),
        )
        mutated = population + do_mutate * delta * span
        return np.clip(mutated, lower, upper)

    def _make_offspring(self, population: np.ndarray, objectives: np.ndarray,
                        lower: np.ndarray, upper: np.ndarray,
                        mutation_prob: float) -> np.ndarray:
        ranks, crowding = self._rank_and_crowding(objectives)
        parent_indices = self._tournament(ranks, crowding, self.pop_size)
        parents = population[parent_indices]
        half = self.pop_size // 2
        child_a, child_b = self._sbx(parents[:half], parents[half:], lower, upper)
        offspring = np.vstack([child_a, child_b])
        return self._polynomial_mutation(offspring, lower, upper, mutation_prob)

    def _environmental_selection(self, population: np.ndarray,
                                 objectives: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        selected: list[int] = []
        for front in fast_non_dominated_sort(objectives):
            if len(selected) + front.size <= self.pop_size:
                selected.extend(front.tolist())
                continue
            remaining = self.pop_size - len(selected)
            crowding = crowding_distance(objectives[front])
            order = np.argsort(-crowding, kind="stable")
            selected.extend(front[order[:remaining]].tolist())
            break
        index = np.asarray(selected, dtype=int)
        return population[index], objectives[index]
