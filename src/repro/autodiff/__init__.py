"""Reverse-mode automatic differentiation on top of numpy.

The paper trains its Neural Kernel, encoder and decoder with gradient descent
in PyTorch.  PyTorch is not available in this offline environment, so this
package provides a small, well-tested reverse-mode autodiff engine with
exactly the operations the rest of the library needs: elementwise arithmetic,
broadcasting, matrix products, reductions and the nonlinearities used by the
Neural Kernel (``exp``) and the encoder/decoder (``sigmoid``/``tanh``).

The public surface mirrors a tiny subset of PyTorch:

>>> from repro.autodiff import Tensor
>>> w = Tensor([[1.0, 2.0]], requires_grad=True)
>>> x = Tensor([[3.0], [4.0]])
>>> loss = (w @ x).sum()
>>> loss.backward()
>>> w.grad
array([[3., 4.]])
"""

from repro.autodiff.tensor import Tensor, is_grad_enabled, no_grad
from repro.autodiff import functional

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]
