"""A small reverse-mode automatic-differentiation engine.

Only the operations required by this package are implemented, but they are
implemented carefully: correct broadcasting in the backward pass, stable
nonlinearities and topologically-ordered gradient accumulation.  The engine is
deliberately eager and graph-per-call (like PyTorch), which is the natural fit
for the GP marginal-likelihood training loops used throughout the library.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable

import numpy as np

# Graph-construction state is thread-local so concurrent forward passes (the
# engine's ThreadBackend runs simulations and surrogate evaluations on worker
# threads) cannot observe a ``no_grad`` entered on another thread.
_GRAD_STATE = threading.local()


def is_grad_enabled() -> bool:
    """Whether new tensors participate in graph construction on this thread."""
    return getattr(_GRAD_STATE, "enabled", True)


def _set_grad_enabled(enabled: bool) -> None:
    _GRAD_STATE.enabled = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (pure forward passes).

    The flag is per-thread: entering ``no_grad`` on one thread leaves graph
    construction untouched on every other thread.
    """
    previous = is_grad_enabled()
    _set_grad_enabled(False)
    try:
        yield
    finally:
        _set_grad_enabled(previous)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Remove leading broadcast dimensions.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    return arr


class Tensor:
    """A numpy array plus the bookkeeping needed for reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to a float numpy array.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream scalar.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and is_grad_enabled()
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # basic properties                                                    #
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError("item() only works for single-element tensors")
        return float(self.data.reshape(()))

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4)}{grad_flag})"

    # ------------------------------------------------------------------ #
    # graph construction helpers                                          #
    # ------------------------------------------------------------------ #
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _make(self, data: np.ndarray, parents: Iterable["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        parents = tuple(parents)
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=float), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # arithmetic                                                          #
    # ------------------------------------------------------------------ #
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data + other.data

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream)
            other._accumulate(upstream)

        return self._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(-upstream)

        return self._make(data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data - other.data

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream)
            other._accumulate(-upstream)

        return self._make(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other).__sub__(self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data * other.data

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream * other.data)
            other._accumulate(upstream * self.data)

        return self._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data / other.data

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream / other.data)
            other._accumulate(-upstream * self.data / (other.data ** 2))

        return self._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        exponent = float(exponent)
        data = self.data ** exponent

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream * exponent * self.data ** (exponent - 1.0))

        return self._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        data = self.data @ other.data

        def backward(upstream: np.ndarray) -> None:
            upstream = np.asarray(upstream, dtype=float)
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                self._accumulate(upstream * b)
                other._accumulate(upstream * a)
            elif a.ndim == 1:
                # (d,) @ (d, m) -> (m,)
                self._accumulate(upstream @ b.T)
                other._accumulate(np.outer(a, upstream))
            elif b.ndim == 1:
                # (n, d) @ (d,) -> (n,)
                self._accumulate(np.outer(upstream, b))
                other._accumulate(a.T @ upstream)
            else:
                self._accumulate(upstream @ np.swapaxes(b, -1, -2))
                other._accumulate(np.swapaxes(a, -1, -2) @ upstream)

        return self._make(data, (self, other), backward)

    # ------------------------------------------------------------------ #
    # elementwise nonlinearities                                          #
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(np.clip(self.data, -700.0, 700.0))

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream * data)

        return self._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(np.maximum(self.data, 1e-300))

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream / np.maximum(self.data, 1e-300))

        return self._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(np.maximum(self.data, 0.0))

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream * 0.5 / np.maximum(data, 1e-150))

        return self._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -700, 700))),
            np.exp(np.clip(self.data, -700, 700))
            / (1.0 + np.exp(np.clip(self.data, -700, 700))),
        )

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream * data * (1.0 - data))

        return self._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream * (1.0 - data ** 2))

        return self._make(data, (self,), backward)

    def relu(self) -> "Tensor":
        data = np.maximum(self.data, 0.0)

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream * (self.data > 0.0))

        return self._make(data, (self,), backward)

    def softplus(self) -> "Tensor":
        data = np.logaddexp(0.0, self.data)

        def backward(upstream: np.ndarray) -> None:
            sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -700, 700)))
            self._accumulate(upstream * sig)

        return self._make(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream * np.sign(self.data))

        return self._make(data, (self,), backward)

    def clip_min(self, minimum: float) -> "Tensor":
        """Elementwise maximum with a constant (gradient passes where unclipped)."""
        data = np.maximum(self.data, minimum)

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(upstream * (self.data >= minimum))

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # shape manipulation and reductions                                   #
    # ------------------------------------------------------------------ #
    def transpose(self) -> "Tensor":
        data = self.data.T

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(np.asarray(upstream).T)

        return self._make(data, (self,), backward)

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        data = self.data.reshape(shape)

        def backward(upstream: np.ndarray) -> None:
            self._accumulate(np.asarray(upstream).reshape(original))

        return self._make(data, (self,), backward)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(upstream: np.ndarray) -> None:
            upstream = np.asarray(upstream, dtype=float)
            if axis is None:
                grad = np.broadcast_to(upstream, self.data.shape)
            else:
                if not keepdims:
                    upstream = np.expand_dims(upstream, axis=axis)
                grad = np.broadcast_to(upstream, self.data.shape)
            self._accumulate(grad)

        return self._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(upstream: np.ndarray) -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, upstream)
            self._accumulate(grad)

        return self._make(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # backward pass                                                       #
    # ------------------------------------------------------------------ #
    def backward(self, gradient=None) -> None:
        """Backpropagate from this tensor.

        ``gradient`` defaults to 1 for scalar outputs; for non-scalar outputs
        an explicit upstream gradient of matching shape must be supplied
        (this is what the GP marginal-likelihood trainer uses to seed the
        gradient with respect to the kernel matrix).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if gradient is None:
            if self.data.size != 1:
                raise RuntimeError("gradient must be provided for non-scalar outputs")
            gradient = np.ones_like(self.data)
        gradient = np.asarray(gradient, dtype=float)

        ordered: list[Tensor] = []
        visited: set[int] = set()

        def visit(node: "Tensor") -> None:
            stack = [(node, False)]
            while stack:
                current, processed = stack.pop()
                if processed:
                    ordered.append(current)
                    continue
                if id(current) in visited:
                    continue
                visited.add(id(current))
                stack.append((current, True))
                for parent in current._parents:
                    if parent.requires_grad and id(parent) not in visited:
                        stack.append((parent, False))

        visit(self)

        grads: dict[int, np.ndarray] = {id(self): gradient}
        for node in reversed(ordered):
            upstream = grads.pop(id(node), None)
            if upstream is None:
                continue
            if node._backward is None:
                # Leaf tensor: accumulate into .grad
                node._accumulate(upstream)
                continue
            # Intermediate node: route gradient to parents through its rule.
            # The op closures call parent._accumulate directly; to keep leaf
            # semantics we temporarily intercept accumulation via .grad for
            # parents that are *not* leaves.
            node._route(upstream, grads)

    def _route(self, upstream: np.ndarray, grads: dict[int, np.ndarray]) -> None:
        """Invoke the op backward rule, redirecting non-leaf parent grads."""
        saved: list[tuple[Tensor, np.ndarray | None]] = []
        for parent in self._parents:
            if parent._backward is not None and parent.requires_grad:
                saved.append((parent, parent.grad))
                parent.grad = None
        self._backward(upstream)
        for parent, previous in saved:
            contribution = parent.grad
            parent.grad = previous
            if contribution is None:
                continue
            if id(parent) in grads:
                grads[id(parent)] = grads[id(parent)] + contribution
            else:
                grads[id(parent)] = contribution
