"""Functional helpers built on :class:`repro.autodiff.Tensor`.

These are the handful of array-level operations that the kernel and GP code
need beyond plain tensor methods: pairwise squared distances, stacking and a
numerically-safe exponential.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff.tensor import Tensor


def as_tensor(value, requires_grad: bool = False) -> Tensor:
    """Lift ``value`` to a :class:`Tensor` (no copy when already a tensor)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def pairwise_sqdist(x1: Tensor, x2: Tensor) -> Tensor:
    """Pairwise squared Euclidean distances between rows of ``x1`` and ``x2``.

    Returns an ``(n, m)`` tensor where entry ``(i, j)`` is
    ``||x1[i] - x2[j]||^2``.  The result is clipped at zero to guard against
    tiny negative values from cancellation.
    """
    x1 = as_tensor(x1)
    x2 = as_tensor(x2)
    sq1 = (x1 * x1).sum(axis=1, keepdims=True)            # (n, 1)
    sq2 = (x2 * x2).sum(axis=1, keepdims=True).transpose() # (1, m)
    cross = x1 @ x2.transpose()                             # (n, m)
    dist = sq1 + sq2 - cross * 2.0
    return dist.clip_min(0.0)


def pairwise_l1dist(x1: Tensor, x2: Tensor) -> Tensor:
    """Pairwise sum of absolute coordinate differences (Manhattan distance)."""
    x1 = as_tensor(x1)
    x2 = as_tensor(x2)
    n, d = x1.shape
    m = x2.shape[0]
    a = x1.reshape(n, 1, d)
    b = x2.reshape(1, m, d)
    return (a - b).abs().sum(axis=2)


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, preserving gradients."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(upstream: np.ndarray) -> None:
        pieces = np.split(np.asarray(upstream), len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    probe = tensors[0]
    return probe._make(data, tensors, backward)


def concatenate(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis, preserving gradients."""
    tensors = [as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum(sizes)[:-1]

    def backward(upstream: np.ndarray) -> None:
        pieces = np.split(np.asarray(upstream), offsets, axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(piece)

    probe = tensors[0]
    return probe._make(data, tensors, backward)


def dot(a: Tensor, b: Tensor) -> Tensor:
    """Inner product of two 1-D tensors as a scalar tensor."""
    a = as_tensor(a)
    b = as_tensor(b)
    return (a * b).sum()


def quadratic_form(vector: Tensor, matrix: Tensor) -> Tensor:
    """Compute ``v^T M v`` for a 1-D ``vector`` and square ``matrix``."""
    vector = as_tensor(vector)
    matrix = as_tensor(matrix)
    return dot(vector, matrix @ vector)
