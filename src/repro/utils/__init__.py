"""Shared utilities: validation, random-state handling, scaling and statistics."""

from repro.utils.random import as_rng, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_matrix,
    check_positive,
    check_same_length,
    check_vector,
)
from repro.utils.scaling import MinMaxScaler, StandardScaler
from repro.utils.stats import (
    norm_cdf,
    norm_logpdf,
    norm_pdf,
    running_best,
    summarize_runs,
)

__all__ = [
    "as_rng",
    "spawn_rngs",
    "check_array",
    "check_matrix",
    "check_positive",
    "check_same_length",
    "check_vector",
    "MinMaxScaler",
    "StandardScaler",
    "norm_cdf",
    "norm_logpdf",
    "norm_pdf",
    "running_best",
    "summarize_runs",
]
