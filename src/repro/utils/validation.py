"""Input-validation helpers used across the package.

These functions normalise user input to float arrays of the expected rank and
raise :class:`repro.errors.ShapeError` with actionable messages otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


def check_array(x, name: str = "x") -> np.ndarray:
    """Convert ``x`` to a float64 array and reject non-finite entries."""
    arr = np.asarray(x, dtype=float)
    if arr.size and not np.all(np.isfinite(arr)):
        raise ShapeError(f"{name} contains NaN or infinite values")
    return arr


def check_vector(x, name: str = "x") -> np.ndarray:
    """Return ``x`` as a 1-D float array."""
    arr = check_array(x, name)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {arr.shape}")
    return arr


def check_matrix(x, name: str = "x", n_cols: int | None = None) -> np.ndarray:
    """Return ``x`` as a 2-D float array, optionally checking column count."""
    arr = check_array(x, name)
    if arr.ndim == 1:
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {arr.shape}")
    if n_cols is not None and arr.shape[1] != n_cols:
        raise ShapeError(
            f"{name} must have {n_cols} columns, got {arr.shape[1]}"
        )
    return arr


def check_same_length(a, b, name_a: str = "a", name_b: str = "b") -> None:
    """Raise if the leading dimensions of ``a`` and ``b`` differ."""
    la = np.asarray(a).shape[0]
    lb = np.asarray(b).shape[0]
    if la != lb:
        raise ShapeError(
            f"{name_a} and {name_b} must have the same length, got {la} and {lb}"
        )


def check_positive(value: float, name: str = "value") -> float:
    """Raise if ``value`` is not strictly positive; return it as float."""
    value = float(value)
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def suggestion_hint(key: str, vocabulary, n: int = 3, cutoff: float = 0.5) -> str:
    """A ``" (did you mean ...?)"`` fragment for unknown-name errors.

    One shared implementation for every registry and spec lookup, so
    error-message behaviour stays consistent across layers.  Returns an
    empty string when nothing in ``vocabulary`` is close.
    """
    import difflib

    close = difflib.get_close_matches(str(key), [str(v) for v in vocabulary],
                                      n=n, cutoff=cutoff)
    if not close:
        return ""
    return f" (did you mean {' or '.join(repr(c) for c in close)}?)"
