"""Feature scalers used by surrogates and design spaces.

GP surrogates in this package always work on standardized outputs and
unit-cube inputs; these small scalers keep that bookkeeping in one place.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NotFittedError
from repro.utils.validation import check_matrix


class StandardScaler:
    """Standardise columns to zero mean and unit variance.

    Columns with (numerically) zero variance are left with scale 1 so that
    transforming constant data is a no-op rather than a division by zero.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x) -> "StandardScaler":
        x = check_matrix(x, "x")
        self.mean_ = x.mean(axis=0)
        scale = x.std(axis=0)
        scale = np.where(scale < 1e-12, 1.0, scale)
        self.scale_ = scale
        return self

    def _require_fitted(self) -> None:
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler used before fit()")

    def transform(self, x) -> np.ndarray:
        self._require_fitted()
        x = check_matrix(x, "x", n_cols=self.mean_.shape[0])
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x) -> np.ndarray:
        self._require_fitted()
        x = check_matrix(x, "x", n_cols=self.mean_.shape[0])
        return x * self.scale_ + self.mean_

    def inverse_transform_variance(self, var) -> np.ndarray:
        """Map variances from standardized space back to the original space."""
        self._require_fitted()
        var = np.asarray(var, dtype=float)
        return var * self.scale_.reshape(1, -1) ** 2


class MinMaxScaler:
    """Scale columns to the unit interval given explicit or fitted bounds."""

    def __init__(self, lower=None, upper=None) -> None:
        self.lower_ = None if lower is None else np.asarray(lower, dtype=float)
        self.upper_ = None if upper is None else np.asarray(upper, dtype=float)

    def fit(self, x) -> "MinMaxScaler":
        x = check_matrix(x, "x")
        self.lower_ = x.min(axis=0)
        self.upper_ = x.max(axis=0)
        return self

    def _require_fitted(self) -> None:
        if self.lower_ is None or self.upper_ is None:
            raise NotFittedError("MinMaxScaler used before fit() or without bounds")

    def _span(self) -> np.ndarray:
        span = self.upper_ - self.lower_
        return np.where(np.abs(span) < 1e-15, 1.0, span)

    def transform(self, x) -> np.ndarray:
        self._require_fitted()
        x = check_matrix(x, "x", n_cols=self.lower_.shape[0])
        return (x - self.lower_) / self._span()

    def fit_transform(self, x) -> np.ndarray:
        return self.fit(x).transform(x)

    def inverse_transform(self, x) -> np.ndarray:
        self._require_fitted()
        x = check_matrix(x, "x", n_cols=self.lower_.shape[0])
        return x * self._span() + self.lower_
