"""Random-state helpers.

All stochastic components in the package accept either ``None``, an integer
seed or a :class:`numpy.random.Generator` and normalise it through
:func:`as_rng` so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RandomState = int | np.random.Generator | None


def as_rng(seed: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` gives a freshly seeded generator, an ``int`` gives a
    deterministic generator and an existing generator is passed through
    unchanged (so that state can be shared between components).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RandomState, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    Useful for running repeated experiments (the paper reports statistics
    over five random runs) with reproducible yet independent streams.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = np.random.SeedSequence(seed if isinstance(seed, int) else None)
    if isinstance(seed, np.random.Generator):
        # Derive child seeds from the generator itself to stay reproducible.
        children = seed.integers(0, 2**31 - 1, size=count)
        return [np.random.default_rng(int(c)) for c in children]
    return [np.random.default_rng(s) for s in root.spawn(count)]


def spawn_seed_ints(seed: int, count: int) -> list[int]:
    """``count`` independent *integer* seeds derived from ``seed``.

    Unlike :func:`spawn_rngs` this returns plain ints, so each child run
    stays individually serializable (the Study API records them in specs and
    checkpoints).
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    children = np.random.SeedSequence(seed).spawn(count)
    return [int(child.generate_state(1, dtype=np.uint64)[0]) for child in children]
