"""Small statistical helpers: normal distribution functions and run summaries."""

from __future__ import annotations

import math

import numpy as np

_SQRT2 = math.sqrt(2.0)
_SQRT2PI = math.sqrt(2.0 * math.pi)


def norm_pdf(z) -> np.ndarray:
    """Standard normal probability density function."""
    z = np.asarray(z, dtype=float)
    return np.exp(-0.5 * z * z) / _SQRT2PI


def norm_cdf(z) -> np.ndarray:
    """Standard normal cumulative distribution function (via erf)."""
    z = np.asarray(z, dtype=float)
    try:
        from scipy.special import erf
        return 0.5 * (1.0 + erf(z / _SQRT2))
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        return 0.5 * (1.0 + np.vectorize(math.erf)(z / _SQRT2))


def norm_logpdf(x, mean, var) -> np.ndarray:
    """Log density of ``N(mean, var)`` evaluated at ``x`` (elementwise)."""
    x = np.asarray(x, dtype=float)
    mean = np.asarray(mean, dtype=float)
    var = np.maximum(np.asarray(var, dtype=float), 1e-12)
    return -0.5 * (np.log(2.0 * np.pi * var) + (x - mean) ** 2 / var)


def running_best(values, minimize: bool = False) -> np.ndarray:
    """Cumulative best-so-far curve of ``values``.

    This is the standard "performance versus simulation budget" curve used
    throughout the paper's figures.
    """
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return values.copy()
    return np.minimum.accumulate(values) if minimize else np.maximum.accumulate(values)


def summarize_runs(curves) -> dict[str, np.ndarray]:
    """Aggregate repeated-run curves into mean/std/median statistics.

    Parameters
    ----------
    curves:
        A sequence of equal-length 1-D arrays, one per random seed.
    """
    arr = np.asarray([np.asarray(c, dtype=float) for c in curves])
    if arr.ndim != 2:
        raise ValueError("curves must be a sequence of equal-length 1-D arrays")
    return {
        "mean": arr.mean(axis=0),
        "std": arr.std(axis=0),
        "median": np.median(arr, axis=0),
        "min": arr.min(axis=0),
        "max": arr.max(axis=0),
    }
