"""Gaussian-process covariance functions.

Includes the classic stationary kernels (ARD RBF, Rational Quadratic,
Periodic, Matern), composition operators, a deep kernel (DKL baseline) and
the paper's **Neural Kernel (Neuk)** -- the automatic kernel constructor of
KATO (paper section 3.1, Eq. 8-10).
"""

from repro.kernels.base import (
    ConstantKernel,
    Kernel,
    ProductKernel,
    ScaleKernel,
    SumKernel,
    WhiteKernel,
)
from repro.kernels.stationary import (
    LinearKernel,
    Matern12Kernel,
    Matern32Kernel,
    Matern52Kernel,
    PeriodicKernel,
    RBFKernel,
    RationalQuadraticKernel,
)
from repro.kernels.neural import DeepKernel, DeepNeuralKernel, NeuralKernel, WideNeuralKernel

KERNEL_REGISTRY = {
    "rbf": RBFKernel,
    "rq": RationalQuadraticKernel,
    "periodic": PeriodicKernel,
    "matern12": Matern12Kernel,
    "matern32": Matern32Kernel,
    "matern52": Matern52Kernel,
    "linear": LinearKernel,
    "neural": NeuralKernel,
    "deep": DeepKernel,
}


def make_kernel(name: str, input_dim: int, **kwargs) -> Kernel:
    """Instantiate a kernel by registry name (``'rbf'``, ``'neural'``, ...)."""
    key = name.lower()
    if key not in KERNEL_REGISTRY:
        raise ValueError(
            f"unknown kernel {name!r}; available: {sorted(KERNEL_REGISTRY)}"
        )
    return KERNEL_REGISTRY[key](input_dim, **kwargs)


__all__ = [
    "Kernel",
    "ScaleKernel",
    "SumKernel",
    "ProductKernel",
    "ConstantKernel",
    "WhiteKernel",
    "RBFKernel",
    "RationalQuadraticKernel",
    "PeriodicKernel",
    "Matern12Kernel",
    "Matern32Kernel",
    "Matern52Kernel",
    "LinearKernel",
    "NeuralKernel",
    "DeepNeuralKernel",
    "WideNeuralKernel",
    "DeepKernel",
    "KERNEL_REGISTRY",
    "make_kernel",
]
