"""Neural Kernel (Neuk) and deep-kernel baselines.

The Neural Kernel (paper section 3.1, Eq. 8-10) composes primitive kernels
the way a linear layer composes features:

1. every primitive kernel ``h_i`` gets its own linear input map
   ``h_i(x, x') = h_i(W_i x + b_i, W_i x' + b_i)`` (Eq. 8);
2. the kernel values are mixed by a linear layer
   ``z = W_z h(x, x') + b_z`` (Eq. 9);
3. a final exponential guarantees positive semi-definiteness,
   ``k_neuk(x, x') = exp(sum_j z_j + b_k)`` (Eq. 10).

A single Neuk unit is used in the paper; :class:`DeepNeuralKernel` (units
stacked "horizontally") and :class:`WideNeuralKernel` (stacked "vertically")
implement the extensions sketched in the same section.  :class:`DeepKernel`
is the DKL baseline: an MLP feature extractor feeding an RBF kernel.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor
from repro.autodiff.functional import as_tensor, stack
from repro.kernels.base import Kernel, _log
from repro.kernels.stationary import (
    PeriodicKernel,
    RBFKernel,
    RationalQuadraticKernel,
)
from repro.nn.layers import Linear, MLP
from repro.nn.module import Parameter
from repro.utils.random import RandomState, as_rng

_DEFAULT_PRIMITIVES = ("rbf", "rq", "periodic")


def _make_primitive(name: str, dim: int) -> Kernel:
    name = name.lower()
    if name == "rbf":
        return RBFKernel(dim)
    if name == "rq":
        return RationalQuadraticKernel(dim)
    if name in ("per", "periodic"):
        return PeriodicKernel(dim)
    raise ValueError(f"unknown primitive kernel {name!r}")


class NeuralKernel(Kernel):
    """A single Neuk unit (Eq. 8-10 of the paper).

    Parameters
    ----------
    input_dim:
        Dimension of the design space the kernel operates on.
    latent_dim:
        Dimension of the linear input maps ``W_i`` (the space the primitive
        kernels see).  Defaults to ``input_dim``.
    primitives:
        Names of the primitive kernels; the paper uses PER, RBF and RQ
        (Fig. 1a).
    n_mix:
        Output dimension of the mixing layer (number of latent variables
        ``z_j`` summed inside the exponential).
    """

    def __init__(self, input_dim: int, latent_dim: int | None = None,
                 primitives: tuple[str, ...] = _DEFAULT_PRIMITIVES,
                 n_mix: int = 4, rng: RandomState = None):
        super().__init__(input_dim)
        rng = as_rng(rng)
        self.latent_dim = int(latent_dim) if latent_dim is not None else int(input_dim)
        self.primitive_names = tuple(primitives)
        if not self.primitive_names:
            raise ValueError("at least one primitive kernel is required")
        self.n_mix = int(n_mix)
        # One linear input map per primitive kernel (Eq. 8).
        self.input_maps = [
            Linear(self.input_dim, self.latent_dim, rng=rng, init_scheme="near_identity")
            for _ in self.primitive_names
        ]
        self.primitives = [
            _make_primitive(name, self.latent_dim) for name in self.primitive_names
        ]
        # Mixing layer over kernel values (Eq. 9).  Initialised so the unit
        # starts as an (almost) plain average of the primitive kernels, which
        # keeps early GP fits well conditioned.
        n_prim = len(self.primitive_names)
        mix = np.full((self.n_mix, n_prim), 1.0 / (n_prim * self.n_mix))
        mix = mix + as_rng(rng).normal(0.0, 0.01, size=mix.shape)
        self.mix_weight = Parameter(mix, name="mix_weight")
        self.mix_bias = Parameter(np.zeros(self.n_mix), name="mix_bias")
        # Output bias b_k inside the exponential (Eq. 10).
        self.output_bias = Parameter([0.0], name="output_bias")

    def forward(self, x1, x2) -> Tensor:
        x1 = as_tensor(x1)
        x2 = as_tensor(x2)
        # Eq. 8: primitive kernels on linearly mapped inputs.
        values = []
        for mapper, primitive in zip(self.input_maps, self.primitives):
            z1 = mapper(x1)
            z2 = mapper(x2)
            values.append(primitive(z1, z2))
        h = stack(values, axis=0)                      # (n_prim, n, m)
        n_prim = len(values)
        n, m = values[0].shape
        # Eq. 9: z_j = sum_i W_z[j, i] * h_i + b_z[j], kept as (n_mix, n, m).
        h_flat = h.reshape(n_prim, n * m)
        z_flat = self.mix_weight @ h_flat              # (n_mix, n*m)
        z = z_flat.reshape(self.n_mix, n, m) + self.mix_bias.reshape(self.n_mix, 1, 1)
        # Eq. 10: exponential of the summed latent variables plus bias.
        exponent = z.sum(axis=0) + self.output_bias
        # Clamp the exponent for numerical stability of downstream Cholesky.
        return _clip(exponent, -30.0, 30.0).exp()

    def describe(self) -> dict[str, object]:
        """Human-readable summary used by the experiment reports."""
        return {
            "type": "NeuralKernel",
            "primitives": list(self.primitive_names),
            "latent_dim": self.latent_dim,
            "n_mix": self.n_mix,
            "n_parameters": self.num_parameters(),
        }


def _clip(t: Tensor, low: float, high: float) -> Tensor:
    """Clip with straight-through gradient inside the interval."""
    data = np.clip(t.data, low, high)

    def backward(upstream: np.ndarray) -> None:
        inside = (t.data > low) & (t.data < high)
        t._accumulate(upstream * inside)

    return t._make(data, (t,), backward)


class DeepNeuralKernel(Kernel):
    """Neuk units stacked in sequence (DNeuk).

    The output of unit ``l`` is used as a similarity feature that modulates
    the next unit: ``k_{l+1}(x, x') = unit_{l+1}(x, x') * exp(z_l(x, x'))``
    implemented here as a product of units, which preserves positive
    semi-definiteness while increasing expressiveness.
    """

    def __init__(self, input_dim: int, n_units: int = 2, rng: RandomState = None, **kwargs):
        super().__init__(input_dim)
        if n_units < 1:
            raise ValueError("n_units must be at least 1")
        rng = as_rng(rng)
        self.units = [NeuralKernel(input_dim, rng=rng, **kwargs) for _ in range(n_units)]

    def forward(self, x1, x2) -> Tensor:
        out = self.units[0](x1, x2)
        for unit in self.units[1:]:
            out = out * unit(x1, x2)
        return out


class WideNeuralKernel(Kernel):
    """Neuk units stacked in parallel (WNeuk): a sum of units."""

    def __init__(self, input_dim: int, n_units: int = 2, rng: RandomState = None, **kwargs):
        super().__init__(input_dim)
        if n_units < 1:
            raise ValueError("n_units must be at least 1")
        rng = as_rng(rng)
        self.units = [NeuralKernel(input_dim, rng=rng, **kwargs) for _ in range(n_units)]

    def forward(self, x1, x2) -> Tensor:
        out = self.units[0](x1, x2)
        for unit in self.units[1:]:
            out = out + unit(x1, x2)
        return out


class DeepKernel(Kernel):
    """Deep Kernel Learning baseline: RBF on MLP-extracted features.

    This is the kernel KATO positions Neuk against (paper section 1 and 3.1):
    powerful but data-hungry and sensitive to the network design.
    """

    def __init__(self, input_dim: int, feature_dim: int = 8,
                 hidden: tuple[int, ...] = (32, 32), rng: RandomState = None):
        super().__init__(input_dim)
        rng = as_rng(rng)
        self.extractor = MLP(input_dim, feature_dim, hidden=hidden,
                             activation="tanh", rng=rng)
        self.rbf = RBFKernel(feature_dim)
        self.feature_dim = int(feature_dim)

    def forward(self, x1, x2) -> Tensor:
        f1 = self.extractor(as_tensor(x1))
        f2 = self.extractor(as_tensor(x2))
        return self.rbf(f1, f2)
