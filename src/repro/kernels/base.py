"""Kernel base class and composition operators.

All kernels are :class:`repro.nn.Module` instances whose ``forward`` takes two
row-matrices (``(n, d)`` and ``(m, d)``, numpy arrays or tensors) and returns
the ``(n, m)`` cross-covariance as a :class:`repro.autodiff.Tensor`, so that
hyper-parameters -- and, importantly for KAT-GP, the *inputs* -- stay
differentiable.
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor
from repro.autodiff.functional import as_tensor
from repro.nn.module import Module, Parameter


def _log(value: float) -> float:
    return float(np.log(max(float(value), 1e-12)))


class Kernel(Module):
    """Base class for covariance functions on ``R^input_dim``."""

    def __init__(self, input_dim: int):
        if input_dim <= 0:
            raise ValueError(f"input_dim must be positive, got {input_dim}")
        self.input_dim = int(input_dim)

    # Subclasses implement forward(x1, x2) -> Tensor of shape (n, m).

    def __call__(self, x1, x2=None) -> Tensor:
        x1 = as_tensor(x1)
        x2 = x1 if x2 is None else as_tensor(x2)
        return self.forward(x1, x2)

    def matrix(self, x1, x2=None) -> np.ndarray:
        """Evaluate the kernel as a plain numpy matrix (no gradient graph)."""
        return self(x1, x2).data

    def diag(self, x) -> np.ndarray:
        """Diagonal of ``k(x, x)`` as a numpy vector."""
        x = as_tensor(x)
        return np.diag(self(x, x).data).copy()

    # ------------------------------------------------------------------ #
    # composition                                                         #
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Kernel") -> "SumKernel":
        return SumKernel(self, other)

    def __mul__(self, other: "Kernel") -> "ProductKernel":
        return ProductKernel(self, other)


class ScaleKernel(Kernel):
    """Output-scale wrapper ``sigma^2 * k(x, x')`` with a trainable scale."""

    def __init__(self, base: Kernel, outputscale: float = 1.0):
        super().__init__(base.input_dim)
        self.base = base
        self.raw_outputscale = Parameter([_log(outputscale)], name="raw_outputscale")

    @property
    def outputscale(self) -> float:
        return float(np.exp(self.raw_outputscale.data[0]))

    def forward(self, x1, x2) -> Tensor:
        return self.base(x1, x2) * self.raw_outputscale.exp()


class SumKernel(Kernel):
    """Pointwise sum of two kernels (valid covariance)."""

    def __init__(self, left: Kernel, right: Kernel):
        if left.input_dim != right.input_dim:
            raise ValueError("summed kernels must share input_dim")
        super().__init__(left.input_dim)
        self.left = left
        self.right = right

    def forward(self, x1, x2) -> Tensor:
        return self.left(x1, x2) + self.right(x1, x2)


class ProductKernel(Kernel):
    """Pointwise product of two kernels (valid covariance)."""

    def __init__(self, left: Kernel, right: Kernel):
        if left.input_dim != right.input_dim:
            raise ValueError("multiplied kernels must share input_dim")
        super().__init__(left.input_dim)
        self.left = left
        self.right = right

    def forward(self, x1, x2) -> Tensor:
        return self.left(x1, x2) * self.right(x1, x2)


class ConstantKernel(Kernel):
    """Constant covariance ``c`` (captures a global offset)."""

    def __init__(self, input_dim: int, constant: float = 1.0):
        super().__init__(input_dim)
        self.raw_constant = Parameter([_log(constant)], name="raw_constant")

    def forward(self, x1, x2) -> Tensor:
        x1 = as_tensor(x1)
        x2 = as_tensor(x2)
        ones = Tensor(np.ones((x1.shape[0], x2.shape[0])))
        return ones * self.raw_constant.exp()


class WhiteKernel(Kernel):
    """White-noise kernel: ``sigma^2`` on exact input matches, zero elsewhere.

    Gradient support is only needed for the noise amplitude, not the inputs,
    because this kernel is used to model observation noise.
    """

    def __init__(self, input_dim: int, noise: float = 1e-2):
        super().__init__(input_dim)
        self.raw_noise = Parameter([_log(noise)], name="raw_noise")

    def forward(self, x1, x2) -> Tensor:
        x1 = as_tensor(x1)
        x2 = as_tensor(x2)
        a, b = x1.data, x2.data
        same = (a[:, None, :] == b[None, :, :]).all(axis=2).astype(float)
        return Tensor(same) * self.raw_noise.exp()
