"""Classic stationary (and one dot-product) kernels with ARD lengthscales."""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor
from repro.autodiff.functional import as_tensor, pairwise_sqdist
from repro.kernels.base import Kernel, _log
from repro.nn.module import Parameter


class _ARDKernel(Kernel):
    """Shared machinery for kernels with per-dimension lengthscales."""

    def __init__(self, input_dim: int, lengthscale: float = 1.0,
                 outputscale: float = 1.0):
        super().__init__(input_dim)
        self.raw_lengthscale = Parameter(
            np.full(input_dim, _log(lengthscale)), name="raw_lengthscale")
        self.raw_outputscale = Parameter([_log(outputscale)], name="raw_outputscale")

    @property
    def lengthscale(self) -> np.ndarray:
        return np.exp(self.raw_lengthscale.data)

    @property
    def outputscale(self) -> float:
        return float(np.exp(self.raw_outputscale.data[0]))

    def _scaled(self, x: Tensor) -> Tensor:
        """Divide every input dimension by its lengthscale (ARD scaling)."""
        inv = (self.raw_lengthscale * -1.0).exp()
        return as_tensor(x) * inv

    def _sqdist(self, x1, x2) -> Tensor:
        return pairwise_sqdist(self._scaled(x1), self._scaled(x2))


class RBFKernel(_ARDKernel):
    """Squared-exponential / ARD kernel, the paper's Eq. for ``k(x, x'|theta)``."""

    def forward(self, x1, x2) -> Tensor:
        return (self._sqdist(x1, x2) * -0.5).exp() * self.raw_outputscale.exp()


class RationalQuadraticKernel(_ARDKernel):
    """Rational quadratic kernel, a scale mixture of RBF kernels."""

    def __init__(self, input_dim: int, lengthscale: float = 1.0,
                 outputscale: float = 1.0, alpha: float = 1.0):
        super().__init__(input_dim, lengthscale, outputscale)
        self.raw_alpha = Parameter([_log(alpha)], name="raw_alpha")

    @property
    def alpha(self) -> float:
        return float(np.exp(self.raw_alpha.data[0]))

    def forward(self, x1, x2) -> Tensor:
        alpha = self.raw_alpha.exp()
        sqdist = self._sqdist(x1, x2)
        inner = sqdist * 0.5 / alpha + 1.0
        # inner^(-alpha) computed via exp(-alpha * log(inner)) so alpha stays trainable.
        log_inner = inner.log()
        return (log_inner * (alpha * -1.0)).exp() * self.raw_outputscale.exp()


class PeriodicKernel(_ARDKernel):
    """Exponential-sine-squared (periodic) kernel with a trainable period."""

    def __init__(self, input_dim: int, lengthscale: float = 1.0,
                 outputscale: float = 1.0, period: float = 1.0):
        super().__init__(input_dim, lengthscale, outputscale)
        self.raw_period = Parameter([_log(period)], name="raw_period")

    @property
    def period(self) -> float:
        return float(np.exp(self.raw_period.data[0]))

    def forward(self, x1, x2) -> Tensor:
        # Standard ARD periodic (exp-sine-squared) kernel,
        #   k = s^2 exp(-2 sum_d sin^2(pi (x_d - x'_d) / p) / l_d^2),
        # which is positive semi-definite for any input dimension.  ``sin`` is
        # not a tensor primitive, so sin^2 uses a custom backward rule.
        x1 = as_tensor(x1)
        x2 = as_tensor(x2)
        n, d = x1.shape
        m = x2.shape[0]
        diff = x1.reshape(n, 1, d) - x2.reshape(1, m, d)
        period = self.raw_period.exp()
        sin_sq = _sin_squared(diff * (np.pi) / period)            # (n, m, d)
        inv_sq_ls = (self.raw_lengthscale * -2.0).exp()            # (d,)
        weighted = (sin_sq * inv_sq_ls).sum(axis=2)                # (n, m)
        return (weighted * -2.0).exp() * self.raw_outputscale.exp()


def _sin_squared(t: Tensor) -> Tensor:
    """``sin(t)^2`` with a custom backward (d/dt sin^2 t = sin 2t)."""
    data = np.sin(t.data) ** 2

    def backward(upstream: np.ndarray) -> None:
        t._accumulate(upstream * np.sin(2.0 * t.data))

    return t._make(data, (t,), backward)


class _MaternKernel(_ARDKernel):
    """Shared Matern implementation parameterised by ``nu``."""

    nu: float = 1.5

    def forward(self, x1, x2) -> Tensor:
        distance = self._sqdist(x1, x2).clip_min(1e-24).sqrt()
        scale = self.raw_outputscale.exp()
        if self.nu == 0.5:
            return (distance * -1.0).exp() * scale
        if self.nu == 1.5:
            root3 = float(np.sqrt(3.0))
            poly = distance * root3 + 1.0
            return poly * (distance * -root3).exp() * scale
        if self.nu == 2.5:
            root5 = float(np.sqrt(5.0))
            poly = distance * root5 + (distance * distance) * (5.0 / 3.0) + 1.0
            return poly * (distance * -root5).exp() * scale
        raise ValueError(f"unsupported Matern nu={self.nu}")


class Matern12Kernel(_MaternKernel):
    """Matern kernel with ``nu = 1/2`` (exponential kernel)."""
    nu = 0.5


class Matern32Kernel(_MaternKernel):
    """Matern kernel with ``nu = 3/2``."""
    nu = 1.5


class Matern52Kernel(_MaternKernel):
    """Matern kernel with ``nu = 5/2``."""
    nu = 2.5


class LinearKernel(Kernel):
    """Dot-product kernel ``sigma_b^2 + sigma_v^2 x . x'``."""

    def __init__(self, input_dim: int, variance: float = 1.0, bias: float = 1e-2):
        super().__init__(input_dim)
        self.raw_variance = Parameter([_log(variance)], name="raw_variance")
        self.raw_bias = Parameter([_log(bias)], name="raw_bias")

    @property
    def variance(self) -> float:
        return float(np.exp(self.raw_variance.data[0]))

    def forward(self, x1, x2) -> Tensor:
        x1 = as_tensor(x1)
        x2 = as_tensor(x2)
        return (x1 @ x2.transpose()) * self.raw_variance.exp() + self.raw_bias.exp()
