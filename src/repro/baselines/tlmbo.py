"""TLMBO baseline: Gaussian-copula transfer BO (Zhang et al., DAC 2022).

The reference method correlates the *same circuit on a different technology
node* through a Gaussian copula of the objective values and runs
multi-objective BO on top.  For the paper's comparison (Fig. 6a-b, FOM
optimization with technology transfer) the essential machinery is:

1. map source objective values through their empirical CDF and the standard
   normal quantile function (the Gaussian copula transform);
2. do the same for the target observations, so both datasets live on a
   common standard-normal scale;
3. fit a single GP on the pooled data (the source points act as a prior that
   is progressively outweighed by target data), with an inflated noise on
   the source points to reflect the domain gap;
4. propose points by expected improvement on the copula scale.

Because the copula only aligns *output distributions*, TLMBO requires the
source and target design spaces to match -- which is exactly the limitation
KATO's KAT-GP removes (it is the reason TLMBO only appears in the
technology-transfer figures).
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri

from repro.acquisition import ExpectedImprovement
from repro.bo.base import BaseOptimizer
from repro.bo.problem import OptimizationProblem
from repro.errors import OptimizationError
from repro.gp import GPRegression
from repro.kernels import RBFKernel
from repro.optim.lbfgs import minimize_lbfgs
from repro.study.registry import register_optimizer
from repro.utils.random import RandomState
from repro.utils.validation import check_matrix, check_vector


def gaussian_copula_transform(values: np.ndarray) -> np.ndarray:
    """Map values to standard-normal scores via their empirical CDF."""
    values = check_vector(values, "values")
    n = values.shape[0]
    ranks = np.argsort(np.argsort(values))
    quantiles = (ranks + 0.5) / n
    return ndtri(quantiles)


def _build_tlmbo(cls, problem, rng, context):
    source_x, source_y = context.source_data
    return cls(problem, source_x=source_x, source_y=source_y, rng=rng,
               **context.constructor_kwargs(batch_size=4))


@register_optimizer("tlmbo", builder=_build_tlmbo, requires_source_data=True,
                    supports_constrained=False,
                    description="Gaussian-copula technology-transfer BO "
                                "(FOM problems, matching design spaces)")
class TLMBO(BaseOptimizer):
    """Gaussian-copula technology-transfer BO for FOM problems."""

    name = "tlmbo"

    def __init__(self, problem: OptimizationProblem, source_x: np.ndarray,
                 source_y: np.ndarray, batch_size: int = 1,
                 rng: RandomState = None, surrogate_train_iters: int = 50,
                 source_noise_inflation: float = 0.15, acq_restarts: int = 5):
        super().__init__(problem, batch_size=batch_size, rng=rng,
                         surrogate_train_iters=surrogate_train_iters)
        source_x = check_matrix(source_x, "source_x")
        source_y = check_vector(source_y, "source_y")
        if source_x.shape[1] != problem.design_space.dim:
            raise OptimizationError(
                "TLMBO requires matching source and target design spaces "
                f"(source has {source_x.shape[1]} dims, target {problem.design_space.dim}); "
                "this is the limitation KATO removes")
        self.source_x = source_x
        self.source_z = gaussian_copula_transform(source_y)
        self.source_noise_inflation = float(source_noise_inflation)
        self.acq_restarts = int(acq_restarts)

    def _fit_surrogate(self) -> tuple[GPRegression, float]:
        x_unit, y = self._training_data()
        target_z = gaussian_copula_transform(y)
        pooled_x = np.vstack([self.source_x, x_unit])
        pooled_z = np.concatenate([
            self.source_z + self.rng.normal(0.0, self.source_noise_inflation,
                                            size=self.source_z.shape[0]),
            target_z,
        ])
        model = GPRegression(kernel=RBFKernel(pooled_x.shape[1]))
        model.fit(pooled_x, pooled_z, n_iters=self.surrogate_train_iters)
        sign = -1.0 if self.problem.minimize else 1.0
        best_z = float((sign * target_z).max()) * sign
        return model, best_z

    def propose(self) -> np.ndarray:
        model, best_z = self._fit_surrogate()
        bounds = self.problem.design_space.unit_bounds
        proposals = []
        for _ in range(self.batch_size):
            acquisition = ExpectedImprovement(model, best_z, minimize=self.problem.minimize)

            def negative_acq(point: np.ndarray) -> float:
                return -float(acquisition(point.reshape(1, -1))[0])

            candidate, _ = minimize_lbfgs(negative_acq, bounds,
                                          n_restarts=self.acq_restarts, rng=self.rng)
            proposals.append(candidate)
        return np.asarray(proposals)
