"""MESMOC baseline: max-value entropy search with constraints.

Belakaria et al. (2020) select the point that maximises the information
gained about the constrained optimum.  This implementation follows the
standard single-objective MES recipe adapted to the constrained sizing
setting used in the paper's Fig. 5:

* optimum values ``y*`` are sampled by optimistic Thompson-style draws over a
  random candidate pool (a cheap stand-in for Gumbel sampling);
* the per-point information gain uses the closed-form truncated-Gaussian
  entropy expression;
* the gain is multiplied by the probability of feasibility of the constraint
  surrogates.

The paper observes MESMOC under-explores on these problems; that qualitative
behaviour (greedy, feasibility-dominated selection) is preserved here.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.functions import probability_of_feasibility
from repro.bo.base import BaseOptimizer
from repro.bo.problem import OptimizationProblem
from repro.errors import OptimizationError
from repro.gp import GPRegression, MultiOutputGP
from repro.kernels import RBFKernel
from repro.study.registry import register_optimizer
from repro.utils.random import RandomState
from repro.utils.stats import norm_cdf, norm_pdf


def _build_mesmoc(cls, problem, rng, context):
    return cls(problem, rng=rng, **context.constructor_kwargs(
        batch_size=4, surrogate_train_iters=20 if context.quick else 50))


@register_optimizer("mesmoc", builder=_build_mesmoc, supports_unconstrained=False,
                    description="Constrained max-value entropy search baseline")
class MESMOC(BaseOptimizer):
    """Constrained max-value entropy search over a random candidate pool."""

    name = "mesmoc"

    def __init__(self, problem: OptimizationProblem, batch_size: int = 4,
                 rng: RandomState = None, n_candidates: int = 1024,
                 n_max_samples: int = 8, surrogate_train_iters: int = 50):
        super().__init__(problem, batch_size=batch_size, rng=rng,
                         surrogate_train_iters=surrogate_train_iters)
        if problem.n_constraints == 0:
            raise OptimizationError("MESMOC requires a constrained problem")
        self.n_candidates = int(n_candidates)
        self.n_max_samples = int(n_max_samples)

    def _fit_surrogates(self) -> tuple[GPRegression, MultiOutputGP]:
        x_unit, y = self._training_data()
        objective_model = GPRegression(kernel=RBFKernel(x_unit.shape[1]))
        objective_model.fit(x_unit, y, n_iters=self.surrogate_train_iters)
        constraint_model = MultiOutputGP(kernel_factory=lambda d: RBFKernel(d))
        constraint_model.fit(x_unit, self._constraint_data(),
                             n_iters=self.surrogate_train_iters)
        return objective_model, constraint_model

    def _sample_optima(self, model: GPRegression, candidates: np.ndarray) -> np.ndarray:
        """Optimistic samples of the (sign-adjusted) optimal value."""
        mean, var = model.predict(candidates)
        std = np.sqrt(var)
        sign = -1.0 if self.problem.minimize else 1.0
        draws = []
        for _ in range(self.n_max_samples):
            sample = sign * mean + std * np.abs(self.rng.normal(size=mean.shape[0]))
            draws.append(sample.max())
        return np.asarray(draws)

    def propose(self) -> np.ndarray:
        objective_model, constraint_model = self._fit_surrogates()
        candidates = self.problem.design_space.sample_unit(self.n_candidates, rng=self.rng)
        mean, var = objective_model.predict(candidates)
        std = np.sqrt(np.maximum(var, 1e-12))
        sign = -1.0 if self.problem.minimize else 1.0
        mean_adj = sign * mean
        optima = self._sample_optima(objective_model, candidates)
        # Closed-form MES information gain averaged over the sampled optima.
        gain = np.zeros(candidates.shape[0])
        for y_star in optima:
            gamma = (y_star - mean_adj) / std
            cdf = np.maximum(norm_cdf(gamma), 1e-12)
            gain += gamma * norm_pdf(gamma) / (2.0 * cdf) - np.log(cdf)
        gain /= optima.shape[0]
        c_mean, c_var = constraint_model.predict(candidates)
        feasibility = probability_of_feasibility(
            c_mean, c_var, self.problem.constraint_thresholds,
            self.problem.constraint_senses)
        scores = gain * feasibility
        order = np.argsort(-scores)
        return candidates[order[: self.batch_size]]
