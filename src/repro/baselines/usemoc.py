"""USeMOC baseline: uncertainty-aware search with constraints.

Belakaria et al. (AAAI 2020) first compute a cheap Pareto set of the
surrogate optimistic objectives, then pick the candidates with the largest
posterior uncertainty from it.  Adapted to the single-objective constrained
sizing problems of the paper, the cheap multi-objective front trades off the
optimistic (LCB/UCB) objective value against the probability of feasibility,
and the batch is filled with the highest-uncertainty members of that front.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.functions import probability_of_feasibility, upper_confidence_bound
from repro.bo.base import BaseOptimizer
from repro.bo.mace import select_batch_from_pareto
from repro.bo.problem import OptimizationProblem
from repro.errors import OptimizationError
from repro.gp import GPRegression, MultiOutputGP
from repro.kernels import RBFKernel
from repro.moo import NSGA2
from repro.study.registry import register_optimizer
from repro.utils.random import RandomState


def _build_usemoc(cls, problem, rng, context):
    quick = context.quick
    return cls(problem, rng=rng, **context.constructor_kwargs(
        batch_size=4,
        surrogate_train_iters=20 if quick else 50,
        pop_size=32 if quick else 64,
        n_generations=10 if quick else 30,
    ))


@register_optimizer("usemoc", builder=_build_usemoc, supports_unconstrained=False,
                    description="Uncertainty-aware constrained BO baseline")
class USeMOC(BaseOptimizer):
    """Uncertainty-aware constrained BO baseline."""

    name = "usemoc"

    def __init__(self, problem: OptimizationProblem, batch_size: int = 4,
                 rng: RandomState = None, surrogate_train_iters: int = 50,
                 pop_size: int = 64, n_generations: int = 25, beta: float = 2.0):
        super().__init__(problem, batch_size=batch_size, rng=rng,
                         surrogate_train_iters=surrogate_train_iters)
        if problem.n_constraints == 0:
            raise OptimizationError("USeMOC requires a constrained problem")
        self.pop_size = int(pop_size)
        self.n_generations = int(n_generations)
        self.beta = float(beta)

    def _fit_surrogates(self) -> tuple[GPRegression, MultiOutputGP]:
        x_unit, y = self._training_data()
        objective_model = GPRegression(kernel=RBFKernel(x_unit.shape[1]))
        objective_model.fit(x_unit, y, n_iters=self.surrogate_train_iters)
        constraint_model = MultiOutputGP(kernel_factory=lambda d: RBFKernel(d))
        constraint_model.fit(x_unit, self._constraint_data(),
                             n_iters=self.surrogate_train_iters)
        return objective_model, constraint_model

    def propose(self) -> np.ndarray:
        objective_model, constraint_model = self._fit_surrogates()

        def cheap_objectives(candidates: np.ndarray) -> np.ndarray:
            mean, var = objective_model.predict(candidates)
            optimistic = upper_confidence_bound(mean, var, self.beta,
                                                minimize=self.problem.minimize)
            c_mean, c_var = constraint_model.predict(candidates)
            feasibility = probability_of_feasibility(
                c_mean, c_var, self.problem.constraint_thresholds,
                self.problem.constraint_senses)
            return np.column_stack([-optimistic, -feasibility])

        searcher = NSGA2(pop_size=self.pop_size, n_generations=self.n_generations,
                         rng=self.rng)
        x_unit, _ = self._training_data()
        result = searcher.minimize(cheap_objectives,
                                   self.problem.design_space.unit_bounds,
                                   initial_population=x_unit[-self.pop_size:])
        pareto = result.pareto_x
        # Uncertainty-aware pick: the front members with the largest total
        # posterior variance (objective plus constraints).
        _, objective_var = objective_model.predict(pareto)
        _, constraint_var = constraint_model.predict(pareto)
        uncertainty = objective_var + constraint_var.sum(axis=1)
        order = np.argsort(-uncertainty)
        if pareto.shape[0] >= self.batch_size:
            return pareto[order[: self.batch_size]]
        return select_batch_from_pareto(pareto, self.batch_size, self.rng)
