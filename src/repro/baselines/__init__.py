"""Baseline optimizers and reference designs the paper compares against."""

from repro.baselines.mesmoc import MESMOC
from repro.baselines.usemoc import USeMOC
from repro.baselines.tlmbo import TLMBO
from repro.baselines.human_expert import evaluate_expert, expert_design, expert_designs

__all__ = ["MESMOC", "USeMOC", "TLMBO", "evaluate_expert", "expert_design",
           "expert_designs"]
