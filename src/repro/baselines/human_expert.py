"""Hand-tuned "Human Expert" reference designs.

Tables 1 and 2 of the paper include a Human Expert row.  The designs below
were tuned by hand against this repository's testbenches starting from
textbook sizing procedures (gm/Id-style reasoning for the op-amps, the
standard R2/R1 ratio rule for the bandgap); they are frozen here so the
tables are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.bo.problem import EvaluatedDesign
from repro.circuits.base import CircuitSizingProblem

_EXPERT_DESIGNS: dict[tuple[str, str], dict[str, float]] = {
    ("two_stage_opamp", "180nm"): {
        "w_diff": 24e-6, "l_diff": 0.6e-6,
        "w_load": 12e-6, "l_load": 0.6e-6,
        "w_out": 80e-6, "l_out": 0.35e-6,
        "c_comp": 2.2e-12, "r_zero": 1.8e3,
        "i_bias1": 30e-6, "i_bias2": 220e-6,
    },
    ("two_stage_opamp", "40nm"): {
        "w_diff": 10e-6, "l_diff": 0.15e-6,
        "w_load": 6e-6, "l_load": 0.15e-6,
        "w_out": 30e-6, "l_out": 0.08e-6,
        "c_comp": 1.0e-12, "r_zero": 1.2e3,
        "i_bias1": 60e-6, "i_bias2": 240e-6,
    },
    ("three_stage_opamp", "180nm"): {
        "w_diff": 20e-6, "l_diff": 0.6e-6,
        "w_load": 10e-6, "l_load": 0.6e-6,
        "w_mid": 25e-6, "l_mid": 0.4e-6,
        "w_out": 90e-6, "l_out": 0.3e-6,
        "c_m1": 3.0e-12, "c_m2": 0.8e-12,
        "i_bias1": 20e-6, "i_bias23": 200e-6,
    },
    ("three_stage_opamp", "40nm"): {
        "w_diff": 8e-6, "l_diff": 0.15e-6,
        "w_load": 5e-6, "l_load": 0.15e-6,
        "w_mid": 12e-6, "l_mid": 0.1e-6,
        "w_out": 40e-6, "l_out": 0.08e-6,
        "c_m1": 1.5e-12, "c_m2": 0.4e-12,
        "i_bias1": 25e-6, "i_bias23": 100e-6,
    },
    ("bandgap", "180nm"): {
        "r_ptat": 120e3, "r_out": 750e3,
        "w_mirror": 12e-6, "l_mirror": 1.2e-6,
        "w_amp_in": 6e-6, "l_amp_in": 0.8e-6,
        "i_amp": 0.8e-6, "area_ratio": 8.0,
    },
    ("bandgap", "40nm"): {
        "r_ptat": 90e3, "r_out": 520e3,
        "w_mirror": 6e-6, "l_mirror": 0.3e-6,
        "w_amp_in": 3e-6, "l_amp_in": 0.25e-6,
        "i_amp": 0.8e-6, "area_ratio": 8.0,
    },
}


def expert_designs() -> dict[tuple[str, str], dict[str, float]]:
    """All stored expert designs keyed by ``(circuit, technology)``."""
    return {key: dict(value) for key, value in _EXPERT_DESIGNS.items()}


def expert_design(circuit: str, technology: str) -> dict[str, float]:
    """The stored expert design for one circuit / technology pair."""
    key = (circuit.lower(), technology.lower())
    if key not in _EXPERT_DESIGNS:
        raise KeyError(
            f"no expert design for {key}; available: {sorted(_EXPERT_DESIGNS)}")
    return dict(_EXPERT_DESIGNS[key])


def evaluate_expert(problem: CircuitSizingProblem) -> EvaluatedDesign:
    """Evaluate the stored expert design on the given problem instance."""
    base_name = problem.name.rsplit("_", 1)[0]
    design = expert_design(base_name, problem.technology.name)
    vector = problem.design_space.from_dict(design)
    return problem.evaluate(np.asarray(vector))
