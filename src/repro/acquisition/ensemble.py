"""Acquisition ensembles searched by MACE and by KATO's modified variant.

MACE (Lyu et al., ICML 2018; Zhang et al., TCAD 2021 for the constrained
version) proposes batch candidates from the Pareto front of several
acquisition functions.  The original constrained formulation uses six
objectives; KATO's modification (paper Eq. 13) keeps only
``{UCB, PI, EI} x PF``, cutting the Pareto search from six to three
objectives.

Each ensemble exposes ``__call__(x) -> (n, k)`` matrices of objectives in
*minimisation* convention so they can be passed straight to
:class:`repro.moo.NSGA2`.
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.functions import (
    expected_improvement,
    probability_of_feasibility,
    probability_of_improvement,
    upper_confidence_bound,
)

_EPS = 1e-12
_LOG_FLOOR = 1e-40


class MACEObjectives:
    """Unconstrained MACE ensemble: maximise {UCB, EI, PI} of one surrogate.

    Used for the FOM (single-objective) experiments.  EI and PI are mapped
    through ``-log`` (as in the reference MACE implementation) to spread the
    scale, and every objective is negated for minimisation.
    """

    n_objectives = 3

    def __init__(self, model, best: float, minimize: bool = False, beta: float = 2.0):
        self.model = model
        self.best = float(best)
        self.minimize = bool(minimize)
        self.beta = float(beta)

    def __call__(self, x) -> np.ndarray:
        mean, variance = self.model.predict(x)
        mean = np.asarray(mean, dtype=float).ravel()
        variance = np.asarray(variance, dtype=float).ravel()
        ucb = upper_confidence_bound(mean, variance, self.beta, self.minimize)
        ei = expected_improvement(mean, variance, self.best, self.minimize)
        pi = probability_of_improvement(mean, variance, self.best, self.minimize)
        return np.column_stack([
            -ucb,
            -np.log(np.maximum(ei, _LOG_FLOOR)),
            -np.log(np.maximum(pi, _LOG_FLOOR)),
        ])


class ConstrainedMACEObjectives:
    """Original six-objective constrained MACE ensemble (baseline).

    Objectives (all to be maximised, returned negated):
    ``UCB, EI, PI`` of the objective surrogate, the probability of
    feasibility ``PF``, and two constraint-violation terms built from the
    constraint surrogate means/variances (the two sums in the paper's
    section 3.3 quotation of MACE).
    """

    n_objectives = 6

    def __init__(self, objective_model, constraint_model, best: float,
                 thresholds, senses, minimize: bool = True, beta: float = 2.0):
        self.objective_model = objective_model
        self.constraint_model = constraint_model
        self.best = float(best)
        self.thresholds = np.asarray(thresholds, dtype=float)
        self.senses = list(senses)
        self.minimize = bool(minimize)
        self.beta = float(beta)

    def _violation_terms(self, x) -> tuple[np.ndarray, np.ndarray]:
        means, variances = self.constraint_model.predict(x)
        means = np.atleast_2d(means)
        variances = np.atleast_2d(variances)
        # Signed "satisfaction margin" u_i: positive when the constraint is
        # predicted satisfied.  For >= constraints u = mu - C, for <= u = C - mu.
        margins = np.empty_like(means)
        for j, sense in enumerate(self.senses):
            if sense == "ge":
                margins[:, j] = means[:, j] - self.thresholds[j]
            else:
                margins[:, j] = self.thresholds[j] - means[:, j]
        satisfied = np.sum(np.maximum(0.0, margins), axis=1)
        scaled = np.sum(np.maximum(0.0, margins) / np.sqrt(np.maximum(variances, _EPS)),
                        axis=1)
        return satisfied, scaled

    def __call__(self, x) -> np.ndarray:
        mean, variance = self.objective_model.predict(x)
        mean = np.asarray(mean, dtype=float).ravel()
        variance = np.asarray(variance, dtype=float).ravel()
        ucb = upper_confidence_bound(mean, variance, self.beta, self.minimize)
        ei = expected_improvement(mean, variance, self.best, self.minimize)
        pi = probability_of_improvement(mean, variance, self.best, self.minimize)
        c_means, c_vars = self.constraint_model.predict(x)
        pf = probability_of_feasibility(c_means, c_vars, self.thresholds, self.senses)
        satisfied, scaled = self._violation_terms(x)
        return np.column_stack([
            -ucb,
            -np.log(np.maximum(ei, _LOG_FLOOR)),
            -np.log(np.maximum(pi, _LOG_FLOOR)),
            -pf,
            -satisfied,
            -scaled,
        ])


class ModifiedConstrainedMACEObjectives:
    """KATO's modified constrained ensemble (paper Eq. 13).

    The constraint handling is folded into the acquisition by multiplying
    each of ``{UCB, PI, EI}`` with the probability of feasibility, leaving a
    three-objective Pareto search.
    """

    n_objectives = 3

    def __init__(self, objective_model, constraint_model, best: float,
                 thresholds, senses, minimize: bool = True, beta: float = 2.0):
        self.objective_model = objective_model
        self.constraint_model = constraint_model
        self.best = float(best)
        self.thresholds = np.asarray(thresholds, dtype=float)
        self.senses = list(senses)
        self.minimize = bool(minimize)
        self.beta = float(beta)

    def __call__(self, x) -> np.ndarray:
        mean, variance = self.objective_model.predict(x)
        mean = np.asarray(mean, dtype=float).ravel()
        variance = np.asarray(variance, dtype=float).ravel()
        c_means, c_vars = self.constraint_model.predict(x)
        pf = probability_of_feasibility(c_means, c_vars, self.thresholds, self.senses)
        ucb = upper_confidence_bound(mean, variance, self.beta, self.minimize)
        # UCB can be negative; shift it to a non-negative scale before the
        # feasibility product so the product stays order-preserving.
        ucb_shifted = ucb - ucb.min() + _EPS
        ei = expected_improvement(mean, variance, self.best, self.minimize)
        pi = probability_of_improvement(mean, variance, self.best, self.minimize)
        return np.column_stack([
            -(ucb_shifted * pf),
            -np.log(np.maximum(ei * pf, _LOG_FLOOR)),
            -np.log(np.maximum(pi * pf, _LOG_FLOOR)),
        ])
