"""Acquisition functions for Bayesian optimization.

Implements the paper's Eq. 5-7 (PI, EI, UCB), the probability of feasibility
used by constrained MACE, the weighted-EI formulation of Lyu et al. (2018)
and the acquisition ensembles searched by (modified) MACE.
"""

from repro.acquisition.functions import (
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfFeasibility,
    ProbabilityOfImprovement,
    UpperConfidenceBound,
    WeightedExpectedImprovement,
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.acquisition.ensemble import (
    ConstrainedMACEObjectives,
    MACEObjectives,
    ModifiedConstrainedMACEObjectives,
)

__all__ = [
    "expected_improvement",
    "probability_of_improvement",
    "upper_confidence_bound",
    "ExpectedImprovement",
    "ProbabilityOfImprovement",
    "UpperConfidenceBound",
    "LowerConfidenceBound",
    "ProbabilityOfFeasibility",
    "WeightedExpectedImprovement",
    "MACEObjectives",
    "ConstrainedMACEObjectives",
    "ModifiedConstrainedMACEObjectives",
]
