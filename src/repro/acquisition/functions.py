"""Scalar acquisition functions (maximisation convention).

All functions take posterior mean/variance arrays and return the acquisition
value per point; the class wrappers bind a surrogate model so instances can be
called directly on candidate design matrices.
"""

from __future__ import annotations

import numpy as np

from repro.utils.stats import norm_cdf, norm_pdf

_EPS = 1e-12


def expected_improvement(mean, variance, best, minimize: bool = False,
                         xi: float = 0.0) -> np.ndarray:
    """Expected improvement (paper Eq. 6).

    Parameters
    ----------
    mean, variance:
        Posterior mean and variance of the objective surrogate.
    best:
        Incumbent value ``y^\\dagger``.
    minimize:
        When True, improvement means going *below* ``best``.
    xi:
        Optional exploration margin.
    """
    mean = np.asarray(mean, dtype=float)
    std = np.sqrt(np.maximum(np.asarray(variance, dtype=float), _EPS))
    if minimize:
        delta = best - mean - xi
    else:
        delta = mean - best - xi
    z = delta / std
    return delta * norm_cdf(z) + std * norm_pdf(z)


def probability_of_improvement(mean, variance, best, minimize: bool = False,
                               xi: float = 0.0) -> np.ndarray:
    """Probability of improvement (paper Eq. 5)."""
    mean = np.asarray(mean, dtype=float)
    std = np.sqrt(np.maximum(np.asarray(variance, dtype=float), _EPS))
    if minimize:
        z = (best - mean - xi) / std
    else:
        z = (mean - best - xi) / std
    return norm_cdf(z)


def upper_confidence_bound(mean, variance, beta: float = 2.0,
                           minimize: bool = False) -> np.ndarray:
    """Upper confidence bound (paper Eq. 7); lower confidence bound when minimising."""
    mean = np.asarray(mean, dtype=float)
    std = np.sqrt(np.maximum(np.asarray(variance, dtype=float), _EPS))
    if minimize:
        return -(mean - beta * std)
    return mean + beta * std


def probability_of_feasibility(means, variances, thresholds, senses) -> np.ndarray:
    """Probability that every constraint is satisfied (independent GPs).

    Parameters
    ----------
    means, variances:
        ``(n, n_constraints)`` posterior statistics of the constraint metrics.
    thresholds:
        Constraint limits ``C_i``.
    senses:
        Sequence of ``"ge"`` / ``"le"`` per constraint (metric >= C or <= C).
    """
    means = np.atleast_2d(np.asarray(means, dtype=float))
    variances = np.atleast_2d(np.asarray(variances, dtype=float))
    thresholds = np.asarray(thresholds, dtype=float)
    stds = np.sqrt(np.maximum(variances, _EPS))
    probability = np.ones(means.shape[0])
    for j, sense in enumerate(senses):
        z = (means[:, j] - thresholds[j]) / stds[:, j]
        if sense == "ge":
            probability = probability * norm_cdf(z)
        elif sense == "le":
            probability = probability * norm_cdf(-z)
        else:
            raise ValueError(f"unknown constraint sense {sense!r}")
    return probability


class _SurrogateAcquisition:
    """Base for acquisition callables bound to a surrogate with ``predict``."""

    def __init__(self, model, minimize: bool = False):
        self.model = model
        self.minimize = bool(minimize)

    def _posterior(self, x) -> tuple[np.ndarray, np.ndarray]:
        mean, variance = self.model.predict(x)
        return np.asarray(mean, dtype=float).ravel(), np.asarray(variance, dtype=float).ravel()


class ExpectedImprovement(_SurrogateAcquisition):
    """EI bound to a surrogate and an incumbent."""

    def __init__(self, model, best: float, minimize: bool = False, xi: float = 0.0):
        super().__init__(model, minimize)
        self.best = float(best)
        self.xi = float(xi)

    def __call__(self, x) -> np.ndarray:
        mean, variance = self._posterior(x)
        return expected_improvement(mean, variance, self.best, self.minimize, self.xi)


class ProbabilityOfImprovement(_SurrogateAcquisition):
    """PI bound to a surrogate and an incumbent."""

    def __init__(self, model, best: float, minimize: bool = False, xi: float = 0.0):
        super().__init__(model, minimize)
        self.best = float(best)
        self.xi = float(xi)

    def __call__(self, x) -> np.ndarray:
        mean, variance = self._posterior(x)
        return probability_of_improvement(mean, variance, self.best, self.minimize, self.xi)


class UpperConfidenceBound(_SurrogateAcquisition):
    """UCB (or LCB for minimisation) bound to a surrogate."""

    def __init__(self, model, beta: float = 2.0, minimize: bool = False):
        super().__init__(model, minimize)
        self.beta = float(beta)

    def __call__(self, x) -> np.ndarray:
        mean, variance = self._posterior(x)
        return upper_confidence_bound(mean, variance, self.beta, self.minimize)


class LowerConfidenceBound(UpperConfidenceBound):
    """Alias emphasising the minimisation use of the confidence bound."""

    def __init__(self, model, beta: float = 2.0):
        super().__init__(model, beta=beta, minimize=True)


class ProbabilityOfFeasibility:
    """Product of per-constraint satisfaction probabilities (paper section 3.3)."""

    def __init__(self, constraint_model, thresholds, senses):
        self.constraint_model = constraint_model
        self.thresholds = np.asarray(thresholds, dtype=float)
        self.senses = list(senses)
        if len(self.senses) != self.thresholds.shape[0]:
            raise ValueError("thresholds and senses must have the same length")

    def __call__(self, x) -> np.ndarray:
        means, variances = self.constraint_model.predict(x)
        return probability_of_feasibility(means, variances, self.thresholds, self.senses)


class WeightedExpectedImprovement(_SurrogateAcquisition):
    """Weighted EI of Lyu et al. (2018): EI of the objective times feasibility.

    Turns the constrained problem into a single-objective acquisition, used
    as an additional baseline and inside SMAC-RF for constrained tasks.
    """

    def __init__(self, model, best: float, feasibility: ProbabilityOfFeasibility,
                 minimize: bool = False):
        super().__init__(model, minimize)
        self.best = float(best)
        self.feasibility = feasibility

    def __call__(self, x) -> np.ndarray:
        mean, variance = self._posterior(x)
        ei = expected_improvement(mean, variance, self.best, self.minimize)
        return ei * self.feasibility(x)
