"""Adaptive-timestep transient analysis with companion models.

The solver integrates the circuit's differential-algebraic system with the
classic SPICE recipe:

* every reactive device is discretised into a *companion model* (conductance
  plus history current source) via the ``stamp_transient`` contract in
  :mod:`repro.spice.devices.base`;
* each timestep is solved with damped Newton iteration, reusing the MNA
  stamper and warm-starting from the previous solution;
* the first steps after t = 0 and after every waveform breakpoint use
  backward Euler (L-stable, safe across discontinuities), then integration
  switches to the trapezoidal rule (second order, A-stable);
* the timestep adapts to a local-truncation-error estimate built from
  divided differences of the accepted solution history, and steps are forced
  to land exactly on source-waveform breakpoints.

:class:`TransientResult` carries the accepted waveforms and implements the
time-domain measurements the sizing problems use as figures of merit: slew
rate, settling time and overshoot of a step response.

:func:`transient_analysis_batch` runs the same integration on ``B``
topology-identical circuits at once.  Every design keeps its *own* adaptive
controller (time, timestep, integration method, LTE history, breakpoint
cursor) stepping exactly as the serial controller would, while the per-step
Newton solves of all in-flight designs are batched: one
``stamp_transient_batch`` pass per device column (see
:mod:`repro.spice.devices.base`) assembles a ``(B, size, size)`` tensor --
or a shared-pattern sparse batch whose symbolic analysis is computed once --
and a single stacked solve advances every design.  Because each design's
controller decisions depend only on its own iterate sequence, batched
results are bit-identical to serial runs of each design alone.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.errors import ConvergenceError
from repro.spice.dc import (
    OperatingPoint,
    _check_batch_topology,
    _resolve_solver,
    dc_operating_point,
    dc_operating_point_batch,
)
from repro.spice.mna import BatchStamper, SparseBatchStamper
from repro.spice.netlist import Circuit
from repro.telemetry import SolveStats

#: Tiny conductance to ground keeping otherwise-floating nodes solvable.
_TRANSIENT_GMIN = 1e-12


@dataclass
class TransientResult:
    """Time-domain waveforms of the observed nodes.

    Attributes
    ----------
    times:
        Accepted timepoints in seconds (first entry is 0 -- the DC initial
        condition -- and the last entry is exactly ``t_stop``).
    node_voltages:
        Mapping node name -> voltage array (same length as ``times``).
    n_accepted / n_rejected:
        Timestep-controller statistics (rejections count both LTE failures
        and Newton failures).
    n_newton_iterations:
        Total Newton iterations across all attempted steps.
    stats:
        Optional :class:`~repro.telemetry.SolveStats` telemetry metadata;
        excluded from equality and from every bit-identity comparison.
    """

    times: np.ndarray
    node_voltages: dict[str, np.ndarray]
    n_accepted: int = 0
    n_rejected: int = 0
    n_newton_iterations: int = 0
    stats: SolveStats | None = field(default=None, compare=False, repr=False)

    # ------------------------------------------------------------------ #
    # accessors                                                           #
    # ------------------------------------------------------------------ #
    def voltage(self, node: str) -> np.ndarray:
        return self.node_voltages[node]

    def value_at(self, node: str, t: float) -> float:
        """Linearly interpolated voltage at an arbitrary time."""
        return float(np.interp(t, self.times, self.voltage(node)))

    def final_value(self, node: str) -> float:
        """Voltage at the last accepted timepoint."""
        return float(self.voltage(node)[-1])

    # ------------------------------------------------------------------ #
    # step-response measurements                                          #
    # ------------------------------------------------------------------ #
    def _step_window(self, node: str, t_start: float,
                     final: float | None) -> tuple[np.ndarray, np.ndarray, float, float]:
        """Times/voltages from ``t_start`` on, plus (initial, final) levels."""
        times, values = self.times, self.voltage(node)
        mask = times >= t_start
        v0 = self.value_at(node, t_start)
        vf = self.final_value(node) if final is None else float(final)
        return times[mask], values[mask], v0, vf

    @staticmethod
    def _first_crossing(times: np.ndarray, values: np.ndarray,
                        threshold: float, rising: bool) -> float | None:
        """Interpolated time of the first crossing of ``threshold``."""
        beyond = values >= threshold if rising else values <= threshold
        indices = np.nonzero(beyond)[0]
        if indices.size == 0:
            return None
        index = int(indices[0])
        if index == 0:
            return float(times[0])
        t0, t1 = times[index - 1], times[index]
        v0, v1 = values[index - 1], values[index]
        if v1 == v0:
            return float(t1)
        return float(t0 + (threshold - v0) / (v1 - v0) * (t1 - t0))

    def slew_rate(self, node: str, t_start: float = 0.0,
                  low_fraction: float = 0.1, high_fraction: float = 0.9,
                  final: float | None = None) -> float:
        """10%-90% (by default) slew rate of a step transition, in V/s.

        Measured between the first crossings of the ``low_fraction`` and
        ``high_fraction`` levels of the transition from the value at
        ``t_start`` to the final value.  Returns 0 for a dead output (no
        swing or thresholds never crossed).
        """
        times, values, v0, vf = self._step_window(node, t_start, final)
        swing = vf - v0
        if times.size < 2 or abs(swing) < 1e-15:
            return 0.0
        rising = swing > 0
        t_low = self._first_crossing(times, values, v0 + low_fraction * swing, rising)
        t_high = self._first_crossing(times, values, v0 + high_fraction * swing, rising)
        if t_low is None or t_high is None or t_high <= t_low:
            return 0.0
        return (high_fraction - low_fraction) * abs(swing) / (t_high - t_low)

    def settling_time(self, node: str, tolerance: float = 0.01,
                      t_start: float = 0.0, final: float | None = None) -> float:
        """Time from ``t_start`` until the node stays within ``tolerance``.

        The band is ``tolerance * |swing|`` around the final value.  Returns
        ``inf`` when the node is still outside the band at the end of the
        analysis window, and 0 when it never leaves the band.
        """
        times, values, v0, vf = self._step_window(node, t_start, final)
        swing = vf - v0
        band = tolerance * abs(swing)
        if times.size < 2 or band <= 0.0:
            return 0.0
        outside = np.abs(values - vf) > band
        if not outside.any():
            return 0.0
        last_outside = int(np.nonzero(outside)[0][-1])
        if last_outside == times.size - 1:
            return float("inf")
        # Interpolate the band entry between the last outside sample and the
        # first inside one.
        t0, t1 = times[last_outside], times[last_outside + 1]
        d0 = abs(values[last_outside] - vf)
        d1 = abs(values[last_outside + 1] - vf)
        if d0 == d1:
            return float(t1 - t_start)
        fraction = (d0 - band) / (d0 - d1)
        return float(t0 + fraction * (t1 - t0) - t_start)

    def overshoot_percent(self, node: str, t_start: float = 0.0,
                          final: float | None = None) -> float:
        """Peak excursion beyond the final value, as a percentage of the swing."""
        times, values, v0, vf = self._step_window(node, t_start, final)
        swing = vf - v0
        if times.size < 2 or abs(swing) < 1e-15:
            return 0.0
        if swing > 0:
            excursion = float(values.max()) - vf
        else:
            excursion = vf - float(values.min())
        return max(excursion, 0.0) / abs(swing) * 100.0


def _newton_transient(circuit: Circuit, states: dict[str, dict],
                      start: np.ndarray, time: float, dt: float, method: str,
                      temperature: float, gmin: float, max_iterations: int,
                      tolerance: float, damping: float,
                      stamper=None) -> tuple[np.ndarray, bool, int, float]:
    """Damped Newton iteration for one timestep (warm-started).

    The returned residual is the last finite iteration's ``max|delta|``
    (NaN if the solve bailed before any update) -- it feeds the enriched
    failure messages and must stay bit-identical to the batched path's
    per-design residual tracking.
    """
    voltages = start.copy()
    residual = float("nan")
    for iteration in range(1, max_iterations + 1):
        stamper = circuit.stamp_transient(voltages, states, time, dt, method,
                                          temperature, gmin=gmin,
                                          stamper=stamper)
        try:
            new_voltages = stamper.solve()
        except np.linalg.LinAlgError:
            new_voltages = stamper.solve_lstsq()
        if not np.all(np.isfinite(new_voltages)):
            return voltages, False, iteration, residual
        delta = new_voltages - voltages
        voltages = voltages + np.clip(delta, -damping, damping)
        residual = float(np.max(np.abs(delta)))
        if residual < tolerance:
            return voltages, True, iteration, residual
    return voltages, False, max_iterations, residual


def _divided_difference(times: list[float], values: list[np.ndarray]) -> np.ndarray:
    """Highest-order Newton divided difference of the given samples."""
    table = list(values)
    for order in range(1, len(times)):
        table = [(table[i + 1] - table[i]) / (times[i + order] - times[i])
                 for i in range(len(table) - 1)]
    return table[0]


def _collect_breakpoints(circuit: Circuit, t_stop: float) -> list[float]:
    """Sorted unique waveform breakpoints in ``(0, t_stop)``, plus ``t_stop``."""
    points: set[float] = set()
    for device in circuit.devices:
        waveform = getattr(device, "waveform", None)
        if waveform is not None:
            points.update(waveform.breakpoints(t_stop))
    merged: list[float] = []
    for point in sorted(points):
        if 0.0 < point < t_stop and (not merged or point - merged[-1] > 1e-15 * t_stop):
            merged.append(point)
    # The last entry is always exactly t_stop.  A kept waveform breakpoint
    # within the controller's time tolerance (eps = 1e-12 * t_stop) of
    # t_stop merges into it: landing on such a breakpoint would otherwise
    # leave a final sliver step that either ends the sweep short of t_stop
    # or underflows dt_min after a single rejection.
    if merged and t_stop - merged[-1] <= 1e-12 * t_stop:
        merged[-1] = t_stop
    else:
        merged.append(t_stop)
    return merged


def transient_operating_point(circuit: Circuit, temperature: float = 27.0,
                              ) -> OperatingPoint:
    """DC solution with every waveform source held at its t = 0 value.

    This is the transient initial condition: a source whose waveform starts
    away from its ``dc`` attribute (e.g. a step from a low level) must be
    biased at the waveform's starting value, not at the AC-testbench bias.
    """
    overridden = []
    for device in circuit.devices:
        waveform = getattr(device, "waveform", None)
        if waveform is not None:
            overridden.append((device, device.dc))
            device.dc = waveform.value_at(0.0)
    try:
        return dc_operating_point(circuit, temperature=temperature)
    finally:
        for device, dc in overridden:
            device.dc = dc


def _initial_condition_message(title: str, operating_point: OperatingPoint,
                               ) -> str:
    """The (enriched) failed-initial-condition message, serial == batched.

    Both paths receive operating points whose :class:`SolveStats` hold
    bit-identical residual/gmin/iteration values (the DC batch contract),
    so the formatted detail is string-identical; an externally built
    operating point without stats keeps the bare legacy message.
    """
    message = f"transient initial condition of {title!r} did not converge"
    stats = getattr(operating_point, "stats", None)
    if stats is not None:
        message = f"{message} {stats.failure_detail()}"
    return message


def transient_analysis(circuit: Circuit, t_stop: float,
                       observe: list[str] | None = None,
                       temperature: float | None = None,
                       dt_initial: float | None = None,
                       dt_min: float | None = None,
                       dt_max: float | None = None,
                       reltol: float = 1e-4, abstol: float = 1e-6,
                       newton_tolerance: float = 1e-9,
                       max_newton_iterations: int = 50,
                       damping: float = 0.5,
                       max_steps: int = 200_000,
                       operating_point: OperatingPoint | None = None,
                       solver: str = "auto",
                       ) -> TransientResult:
    """Integrate ``circuit`` from its DC initial condition to ``t_stop``.

    Parameters
    ----------
    t_stop:
        Analysis window in seconds.
    observe:
        Node names to record; defaults to every non-ground node.
    temperature:
        Analysis temperature in Celsius.  Defaults to the supplied
        ``operating_point``'s temperature (27 when solving the initial
        condition here).  Passing a value that *disagrees* with a supplied
        operating point is deprecated -- the companion models would then be
        evaluated at a different temperature from the bias they linearise
        around -- and the operating point's temperature wins.
    dt_initial / dt_min / dt_max:
        Startup, floor and ceiling timesteps; default to ``1e-4``, ``1e-12``
        and ``1/50`` of ``t_stop``.
    reltol / abstol:
        Per-step local-truncation-error tolerance: a step is accepted when
        the estimated LTE of every node voltage is below
        ``reltol * |v| + abstol``.
    operating_point:
        Pre-computed initial condition; by default
        :func:`transient_operating_point` is solved (waveform sources held at
        their t = 0 values).
    solver:
        ``"auto"`` (dense below ``SPARSE_SIZE_THRESHOLD`` unknowns, CSR +
        SuperLU at and above it -- matching the DC and batched-transient
        policies), ``"dense"`` or ``"sparse"``.

    Raises
    ------
    ConvergenceError:
        When the controller underflows ``dt_min`` (Newton repeatedly failing
        or the error estimate never satisfied) or exceeds ``max_steps``.
    """
    if t_stop <= 0.0:
        raise ValueError(f"t_stop must be positive, got {t_stop}")
    if temperature is None:
        temperature = (operating_point.temperature
                       if operating_point is not None else 27.0)
    elif (operating_point is not None
          and float(temperature) != float(operating_point.temperature)):
        warnings.warn(
            "passing temperature= alongside operating_point= is deprecated "
            "when the two disagree; the operating point's temperature "
            f"({operating_point.temperature:g}C) is used so the companion "
            "models stay consistent with the bias",
            DeprecationWarning, stacklevel=2)
        temperature = float(operating_point.temperature)
    circuit.ensure_indices()
    observed = list(observe) if observe is not None else circuit.nodes
    solver = _resolve_solver(circuit.n_nodes + circuit.n_branches, solver)
    dt_initial = t_stop * 1e-4 if dt_initial is None else float(dt_initial)
    dt_min = t_stop * 1e-12 if dt_min is None else float(dt_min)
    dt_max = t_stop / 50.0 if dt_max is None else float(dt_max)

    if operating_point is None:
        operating_point = transient_operating_point(circuit, temperature)
    if not operating_point.converged:
        raise ConvergenceError(_initial_condition_message(circuit.title,
                                                          operating_point))

    states = circuit.init_transient_states(operating_point, temperature)
    n_nodes = circuit.n_nodes
    eps = t_stop * 1e-12
    # One stamper for the whole sweep: every Newton iteration of every step
    # resets and restamps it in place instead of reallocating.
    stamper = circuit.make_dc_stamper(solver)

    t = 0.0
    solution = operating_point.voltages.copy()
    times = [0.0]
    solutions = [solution.copy()]
    # Accepted (t, solution) history for the divided-difference LTE estimate;
    # reset at every breakpoint so the estimate never spans a discontinuity.
    history: list[tuple[float, np.ndarray]] = [(0.0, solution.copy())]

    breakpoints = _collect_breakpoints(circuit, t_stop)
    next_break = 0
    dt = min(dt_initial, dt_max, breakpoints[0])
    n_accepted = n_rejected = n_newton = 0
    residual = float("nan")
    dt_smallest = float("inf")
    dt_largest = 0.0

    def _fail(message: str) -> ConvergenceError:
        """Record the failed solve in the registry, then build the error."""
        if telemetry.enabled():
            telemetry.record_solve(SolveStats(
                analysis="transient", converged=False, iterations=n_newton,
                n_accepted=n_accepted, n_rejected=n_rejected,
                final_residual=residual, final_gmin=_TRANSIENT_GMIN))
        return ConvergenceError(message)

    span = telemetry.span("spice.transient", circuit=circuit.title)
    with span:
        while t < t_stop - eps:
            if n_accepted + n_rejected >= max_steps:
                raise _fail(
                    f"transient analysis of {circuit.title!r} exceeded "
                    f"{max_steps} steps at t={t:.3e}s "
                    f"({n_accepted} accepted, {n_rejected} rejected)")
            while breakpoints[next_break] <= t + eps:
                next_break += 1
            dt = min(dt, dt_max, t_stop - t)
            hit_break = t + dt >= breakpoints[next_break] - eps
            if hit_break:
                dt = breakpoints[next_break] - t
            # Backward Euler until three accepted points exist past the last
            # breakpoint, trapezoidal afterwards.
            method = "be" if len(history) < 3 else "trap"
            t_new = t + dt

            new_solution, converged, iterations, residual = _newton_transient(
                circuit, states, solution, t_new, dt, method, temperature,
                _TRANSIENT_GMIN, max_newton_iterations, newton_tolerance,
                damping, stamper=stamper)
            n_newton += iterations
            if not converged:
                n_rejected += 1
                dt *= 0.25
                if dt < dt_min:
                    raise _fail(
                        f"transient Newton iteration of {circuit.title!r} "
                        f"failed at t={t_new:.3e}s with dt={dt:.3e}s after "
                        f"{iterations} iterations (residual={residual:.3e})")
                continue

            # Local-truncation-error estimate from divided differences of the
            # accepted history plus the candidate point.  BE error ~
            # (dt^2/2) v'' with v'' ~ 2*DD2; trapezoidal error ~ (dt^3/12)
            # v''' with v''' ~ 6*DD3.
            error_ratio = None
            if len(history) >= 2:
                order = 3 if method == "trap" else 2
                sample = history[-order:] + [(t_new, new_solution)]
                dd = _divided_difference([s[0] for s in sample],
                                         [s[1][:n_nodes] for s in sample])
                lte = (0.5 * dt**3 * np.abs(dd) if method == "trap"
                       else dt**2 * np.abs(dd))
                tolerance = (reltol * np.maximum(
                    np.abs(new_solution[:n_nodes]),
                    np.abs(solution[:n_nodes])) + abstol)
                error_ratio = float(np.max(lte / tolerance))
                if error_ratio > 1.0:
                    n_rejected += 1
                    dt *= max(0.1, 0.9 * error_ratio ** (-1.0 / order))
                    if dt < dt_min:
                        raise _fail(
                            f"transient timestep of {circuit.title!r} "
                            f"underflowed at t={t_new:.3e}s (LTE never "
                            f"satisfied) ({n_accepted} accepted, "
                            f"{n_rejected} rejected)")
                    continue

            circuit.commit_transient(new_solution, states, dt, temperature)
            if dt < dt_smallest:
                dt_smallest = dt
            if dt > dt_largest:
                dt_largest = dt
            t = t_new
            solution = new_solution
            n_accepted += 1
            times.append(t)
            solutions.append(solution.copy())
            history.append((t, solution.copy()))
            if len(history) > 3:
                history.pop(0)

            if hit_break:
                # Restart integration behind the corner: BE, small steps, and
                # an LTE history that does not bridge the discontinuity.
                history = [(t, solution.copy())]
                dt = min(dt_initial, dt_max)
            elif error_ratio is None:
                dt = min(dt * 2.0, dt_max)
            else:
                order = 3 if method == "trap" else 2
                factor = 0.9 * max(error_ratio, 1e-10) ** (-1.0 / order)
                dt = min(dt * min(2.0, max(0.3, factor)), dt_max)

    stats = SolveStats(
        analysis="transient", converged=True, iterations=n_newton,
        n_accepted=n_accepted, n_rejected=n_rejected,
        final_residual=residual, final_gmin=_TRANSIENT_GMIN,
        dt_min=dt_smallest if n_accepted else float("nan"),
        dt_max=dt_largest if n_accepted else float("nan"))
    telemetry.record_solve(stats)
    times_array = np.array(times)
    stacked = np.stack(solutions, axis=0)
    responses: dict[str, np.ndarray] = {}
    for node in observed:
        index = circuit.node_index(node)
        responses[node] = (np.zeros(times_array.shape[0]) if index < 0
                           else stacked[:, index].copy())
    return TransientResult(times=times_array, node_voltages=responses,
                           n_accepted=n_accepted, n_rejected=n_rejected,
                           n_newton_iterations=n_newton, stats=stats)


# --------------------------------------------------------------------- #
# batched transient                                                      #
# --------------------------------------------------------------------- #
def transient_operating_point_batch(circuits, temperature=27.0,
                                    ) -> list[OperatingPoint]:
    """Batched :func:`transient_operating_point`.

    Every waveform source in every circuit is held at its t = 0 value while
    :func:`repro.spice.dc.dc_operating_point_batch` solves the whole batch;
    the ``dc`` attributes are restored afterwards.  ``temperature`` may be a
    scalar or a length-``B`` array.
    """
    circuits = list(circuits)
    overridden = []
    try:
        for circuit in circuits:
            for device in circuit.devices:
                waveform = getattr(device, "waveform", None)
                if waveform is not None:
                    overridden.append((device, device.dc))
                    device.dc = waveform.value_at(0.0)
        return dc_operating_point_batch(circuits, temperature=temperature)
    finally:
        for device, dc in overridden:
            device.dc = dc


class _TranBatchAssembler:
    """Assembles the batched companion-model system for active designs.

    Transient analogue of :class:`repro.spice.dc._BatchAssembler`: the batch
    is transposed into per-device sibling columns, each device's vectorized
    ``transient_batch_context`` is precomputed over the *full* batch, and
    arbitrary in-flight subsets stamp by slicing those contexts row-wise.
    The dense :class:`BatchStamper` / sparse :class:`SparseBatchStamper` are
    cached across Newton iterations, so the sparse triplet pattern locks
    after the first assembly and its symbolic analysis (column ordering and
    the CSR-to-CSC mapping) is shared by every subsequent factorization.
    """

    #: Gather memo bound: distinct active sets over a transient run scale
    #: with the number of designs finishing, not with iteration count, so
    #: the cache normally never fills; the cap only guards pathological
    #: churn.
    _GATHER_CACHE_MAX = 128

    def __init__(self, circuits: list[Circuit], temperatures: np.ndarray,
                 states_by_design: list, solver: str, shared_symbolic: bool):
        first = circuits[0]
        self.n_nodes = first.n_nodes
        self.n_branches = first.n_branches
        self.size = self.n_nodes + self.n_branches
        self.temperatures = temperatures
        self.solver = solver
        self.shared_symbolic = shared_symbolic
        # Telemetry counters, mirroring the DC assembler's.
        self.total_designs = len(circuits)
        self.assemblies = 0
        self.active_rows = 0
        self.columns = [tuple(circuit.devices[position] for circuit in circuits)
                        for position in range(len(first.devices))]
        self.contexts = [column[0].transient_batch_context(list(column),
                                                          temperatures)
                        for column in self.columns]
        # Per-column list of per-design state dicts (references -- commits
        # mutate them in place).  Designs whose initial condition failed
        # carry None; they never enter the active set, so the placeholder is
        # never dereferenced.
        self.column_states = [
            [None if states_by_design[b] is None
             else states_by_design[b][column[0].name]
             for b in range(len(circuits))]
            for column in self.columns]
        self._gather_cache: dict[bytes, tuple] = {}
        self._dense_stamper: BatchStamper | None = None
        self._sparse_stamper: SparseBatchStamper | None = None

    def _gather(self, indices: np.ndarray) -> tuple:
        key = indices.tobytes()
        cached = self._gather_cache.get(key)
        if cached is None:
            if len(self._gather_cache) >= self._GATHER_CACHE_MAX:
                self._gather_cache.clear()
            index_list = indices.tolist()
            siblings = [[column[i] for i in index_list]
                        for column in self.columns]
            contexts = [None if context is None
                        else {name: values[indices]
                              for name, values in context.items()}
                        for context in self.contexts]
            states = [[column[i] for i in index_list]
                      for column in self.column_states]
            temperatures = self.temperatures[indices]
            cached = (siblings, contexts, states, temperatures)
            self._gather_cache[key] = cached
        return cached

    @property
    def occupancy(self) -> float:
        """Mean fraction of the batch in flight per assembled iteration."""
        if not self.assemblies:
            return float("nan")
        return self.active_rows / (self.assemblies * self.total_designs)

    @property
    def pattern_reuse_hits(self) -> int:
        stamper = self._sparse_stamper
        return stamper.pattern_reuse_hits if stamper is not None else 0

    def assemble(self, indices: np.ndarray, voltages: np.ndarray,
                 times: np.ndarray, dts: np.ndarray, trap: np.ndarray):
        """Stamp the in-flight designs ``indices`` at their Newton iterates."""
        batch_size = len(indices)
        self.assemblies += 1
        self.active_rows += batch_size
        if self.solver == "sparse":
            stamper = self._sparse_stamper
            if stamper is None or stamper.batch_size != batch_size:
                stamper = SparseBatchStamper(
                    batch_size, self.n_nodes, self.n_branches,
                    shared_symbolic=self.shared_symbolic)
                self._sparse_stamper = stamper
            else:
                stamper.reset()
        else:
            stamper = self._dense_stamper
            if stamper is None or stamper.batch_size != batch_size:
                stamper = BatchStamper(batch_size, self.n_nodes,
                                       self.n_branches)
                self._dense_stamper = stamper
            else:
                stamper.reset()
        siblings, contexts, states, temperatures = self._gather(indices)
        # One errstate frame for the whole stamp loop, like the DC assembler.
        with np.errstate(over="ignore", invalid="ignore"):
            for position, column in enumerate(self.columns):
                column[0].stamp_transient_batch(
                    stamper, siblings[position], voltages, states[position],
                    times, dts, trap, temperatures, contexts[position])
        # The serial sweep always applies _TRANSIENT_GMIN, so this stamp is
        # unconditional -- which also keeps the locked sparse pattern stable.
        stamper.add_gmin(_TRANSIENT_GMIN)
        return stamper


def _solve_rows_transient(stamper, size: int, errors: list) -> np.ndarray:
    """Per-design transient solve fallback after a singular stacked solve.

    Replicates the serial chain per design: direct solve, then
    least-squares.  Serially a least-squares failure would propagate out of
    the analysis; here it is recorded in ``errors`` (aligned with the active
    designs) and the row is left NaN for the finite check to catch.
    """
    out = np.empty((stamper.batch_size, size))
    for b in range(stamper.batch_size):
        try:
            out[b] = stamper.solve_design(b)
        except np.linalg.LinAlgError:
            try:
                out[b] = stamper.solve_lstsq_design(b)
            except np.linalg.LinAlgError as exc:
                errors[b] = exc
                out[b] = np.nan
    return out


class _TranDesign:
    """Controller state of one design inside a batched transient sweep."""

    __slots__ = ("index", "circuit", "temperature", "states", "t", "dt",
                 "solution", "times", "solutions", "history", "breakpoints",
                 "next_break", "n_accepted", "n_rejected", "n_newton",
                 "t_new", "method", "hit_break", "iterate",
                 "attempt_iterations", "attempt_residual", "dt_smallest",
                 "dt_largest", "finished", "error")

    def __init__(self, index: int, circuit: Circuit, temperature: float):
        self.index = index
        self.circuit = circuit
        self.temperature = temperature
        self.states: dict[str, dict] | None = None
        self.t = 0.0
        self.dt = 0.0
        self.solution: np.ndarray | None = None
        self.times: list[float] = [0.0]
        self.solutions: list[np.ndarray] = []
        self.history: list[tuple[float, np.ndarray]] = []
        self.breakpoints: list[float] = []
        self.next_break = 0
        self.n_accepted = 0
        self.n_rejected = 0
        self.n_newton = 0
        self.t_new = 0.0
        self.method = "be"
        self.hit_break = False
        self.iterate: np.ndarray | None = None
        self.attempt_iterations = 0
        self.attempt_residual = float("nan")
        self.dt_smallest = float("inf")
        self.dt_largest = 0.0
        self.finished = False
        self.error: Exception | None = None


def transient_analysis_batch(circuits, t_stop: float,
                             observe: list[str] | None = None,
                             temperature=None,
                             dt_initial: float | None = None,
                             dt_min: float | None = None,
                             dt_max: float | None = None,
                             reltol: float = 1e-4, abstol: float = 1e-6,
                             newton_tolerance: float = 1e-9,
                             max_newton_iterations: int = 50,
                             damping: float = 0.5,
                             max_steps: int = 200_000,
                             operating_points: list[OperatingPoint] | None = None,
                             solver: str = "auto",
                             shared_symbolic: bool = False,
                             return_errors: bool = False) -> list:
    """Transient analysis of ``B`` topology-identical circuits at once.

    Each design runs the exact serial timestep controller -- its own time,
    timestep, BE/trap switching, LTE accept/reject decisions and breakpoint
    schedule -- but the Newton solves of all in-flight designs are batched:
    one stacked assembly and solve per iteration.  Designs step
    *asynchronously* (one may be on its 40th accepted step while another is
    still rejecting its 2nd); a design leaves the batch only when it reaches
    ``t_stop`` or fails.  Results are bit-identical to
    :func:`transient_analysis` per circuit with the same ``solver``:
    identical accepted times, waveforms and accept/reject/Newton counters.

    Parameters mirror :func:`transient_analysis`, plus:

    temperature:
        Scalar or length-``B`` array of per-design temperatures.  Defaults
        to each supplied operating point's temperature (27 when the initial
        conditions are solved here).  Per design, a value disagreeing with a
        supplied operating point is deprecated and the operating point wins,
        exactly like the serial driver.
    operating_points:
        Pre-computed initial conditions, one per circuit; by default
        :func:`transient_operating_point_batch` solves them.
    shared_symbolic:
        Sparse batches only: reuse design 0's column permutation for every
        factorization instead of re-running the ordering heuristic per
        design.  Results then agree with serial to solver round-off
        (~1e-15 relative) rather than bit-exactly; leave off (the default)
        when bitwise reproducibility matters more than the symbolic-phase
        saving.
    return_errors:
        When set, per-design failures (:class:`ConvergenceError`, singular
        systems) are returned as exception objects in the result list
        instead of raising; the default raises the first failure.

    Returns
    -------
    list
        One entry per circuit: a :class:`TransientResult`, or (with
        ``return_errors``) the exception that design raised.
    """
    circuits = list(circuits)
    if not circuits:
        return []
    if t_stop <= 0.0:
        raise ValueError(f"t_stop must be positive, got {t_stop}")
    _check_batch_topology(circuits)
    first = circuits[0]
    size = first.n_nodes + first.n_branches
    batch_size = len(circuits)
    solver = _resolve_solver(size, solver)

    if operating_points is not None:
        operating_points = list(operating_points)
        if len(operating_points) != batch_size:
            raise ValueError(
                f"operating_points must have one entry per circuit "
                f"({batch_size}), got {len(operating_points)}")
    if temperature is None:
        if operating_points is not None:
            temperatures = np.array([float(op.temperature)
                                     for op in operating_points])
        else:
            temperatures = np.full(batch_size, 27.0)
    else:
        temperatures = np.asarray(temperature, dtype=float)
        if temperatures.ndim == 0:
            temperatures = np.full(batch_size, float(temperatures))
        elif temperatures.shape != (batch_size,):
            raise ValueError(f"temperature must be a scalar or have shape "
                             f"({batch_size},), got {temperatures.shape}")
        else:
            temperatures = temperatures.copy()
        if operating_points is not None:
            for b, op in enumerate(operating_points):
                if float(temperatures[b]) != float(op.temperature):
                    warnings.warn(
                        "passing temperature= alongside operating_point= is "
                        "deprecated when the two disagree; the operating "
                        f"point's temperature ({op.temperature:g}C) is used "
                        "so the companion models stay consistent with the "
                        "bias", DeprecationWarning, stacklevel=2)
                    temperatures[b] = float(op.temperature)
    if operating_points is None:
        operating_points = transient_operating_point_batch(circuits,
                                                           temperatures)

    observed = list(observe) if observe is not None else first.nodes
    dt_initial = t_stop * 1e-4 if dt_initial is None else float(dt_initial)
    dt_min = t_stop * 1e-12 if dt_min is None else float(dt_min)
    dt_max = t_stop / 50.0 if dt_max is None else float(dt_max)
    n_nodes = first.n_nodes
    eps = t_stop * 1e-12

    designs = [_TranDesign(b, circuit, float(temperatures[b]))
               for b, circuit in enumerate(circuits)]
    states_by_design: list = [None] * batch_size
    for d, op in zip(designs, operating_points):
        if not op.converged:
            d.error = ConvergenceError(
                _initial_condition_message(d.circuit.title, op))
            continue
        d.states = d.circuit.init_transient_states(op, d.temperature)
        states_by_design[d.index] = d.states
        d.solution = op.voltages.copy()
        d.solutions = [d.solution.copy()]
        d.history = [(0.0, d.solution.copy())]
        d.breakpoints = _collect_breakpoints(d.circuit, t_stop)
        d.dt = min(dt_initial, dt_max, d.breakpoints[0])

    assembler = _TranBatchAssembler(circuits, temperatures, states_by_design,
                                    solver, shared_symbolic)

    def _begin_attempt(d: _TranDesign) -> None:
        """Serial loop-top bookkeeping for one design's next step attempt."""
        if d.n_accepted + d.n_rejected >= max_steps:
            d.error = ConvergenceError(
                f"transient analysis of {d.circuit.title!r} exceeded "
                f"{max_steps} steps at t={d.t:.3e}s "
                f"({d.n_accepted} accepted, {d.n_rejected} rejected)")
            return
        while d.breakpoints[d.next_break] <= d.t + eps:
            d.next_break += 1
        d.dt = min(d.dt, dt_max, t_stop - d.t)
        d.hit_break = d.t + d.dt >= d.breakpoints[d.next_break] - eps
        if d.hit_break:
            d.dt = d.breakpoints[d.next_break] - d.t
        d.method = "be" if len(d.history) < 3 else "trap"
        d.t_new = d.t + d.dt
        # The serial stamp loop injects time/method into every device state
        # on each Newton iteration with these exact values; once per attempt
        # is observationally identical.
        for state in d.states.values():
            state["time"] = d.t_new
            state["method"] = d.method
        d.iterate = d.solution.copy()
        d.attempt_iterations = 0
        d.attempt_residual = float("nan")

    def _finish_attempt(d: _TranDesign, converged: bool) -> None:
        """The serial post-Newton controller for one design's attempt."""
        new_solution = d.iterate
        if not converged:
            d.n_rejected += 1
            d.dt *= 0.25
            if d.dt < dt_min:
                d.error = ConvergenceError(
                    f"transient Newton iteration of {d.circuit.title!r} "
                    f"failed at t={d.t_new:.3e}s with dt={d.dt:.3e}s after "
                    f"{d.attempt_iterations} iterations "
                    f"(residual={d.attempt_residual:.3e})")
                return
            _begin_attempt(d)
            return
        error_ratio = None
        if len(d.history) >= 2:
            order = 3 if d.method == "trap" else 2
            sample = d.history[-order:] + [(d.t_new, new_solution)]
            dd = _divided_difference([s[0] for s in sample],
                                     [s[1][:n_nodes] for s in sample])
            lte = (0.5 * d.dt**3 * np.abs(dd) if d.method == "trap"
                   else d.dt**2 * np.abs(dd))
            tolerance = (reltol * np.maximum(np.abs(new_solution[:n_nodes]),
                                             np.abs(d.solution[:n_nodes]))
                         + abstol)
            error_ratio = float(np.max(lte / tolerance))
            if error_ratio > 1.0:
                d.n_rejected += 1
                d.dt *= max(0.1, 0.9 * error_ratio ** (-1.0 / order))
                if d.dt < dt_min:
                    d.error = ConvergenceError(
                        f"transient timestep of {d.circuit.title!r} "
                        f"underflowed at t={d.t_new:.3e}s (LTE never "
                        f"satisfied) ({d.n_accepted} accepted, "
                        f"{d.n_rejected} rejected)")
                    return
                _begin_attempt(d)
                return

        d.circuit.commit_transient(new_solution, d.states, d.dt,
                                   d.temperature)
        if d.dt < d.dt_smallest:
            d.dt_smallest = d.dt
        if d.dt > d.dt_largest:
            d.dt_largest = d.dt
        d.t = d.t_new
        d.solution = new_solution
        d.n_accepted += 1
        d.times.append(d.t)
        d.solutions.append(d.solution.copy())
        d.history.append((d.t, d.solution.copy()))
        if len(d.history) > 3:
            d.history.pop(0)

        if d.hit_break:
            d.history = [(d.t, d.solution.copy())]
            d.dt = min(dt_initial, dt_max)
        elif error_ratio is None:
            d.dt = min(d.dt * 2.0, dt_max)
        else:
            order = 3 if d.method == "trap" else 2
            factor = 0.9 * max(error_ratio, 1e-10) ** (-1.0 / order)
            d.dt = min(d.dt * min(2.0, max(0.3, factor)), dt_max)

        if d.t < t_stop - eps:
            _begin_attempt(d)
        else:
            d.finished = True

    for d in designs:
        if d.error is None:
            _begin_attempt(d)
    active = [d for d in designs if d.error is None and not d.finished]

    with telemetry.span("spice.transient_batch", batch=batch_size,
                        circuit=first.title):
        while active:
            indices = np.array([d.index for d in active])
            voltages = np.stack([d.iterate for d in active])
            times = np.array([d.t_new for d in active])
            dts = np.array([d.dt for d in active])
            trap = np.array([d.method == "trap" for d in active])
            stamper = assembler.assemble(indices, voltages, times, dts, trap)
            solve_errors: list = [None] * len(active)
            try:
                new_voltages = stamper.solve()
            except np.linalg.LinAlgError:
                new_voltages = _solve_rows_transient(stamper, assembler.size,
                                                     solve_errors)
            finite = np.isfinite(new_voltages).all(axis=1)
            delta = new_voltages - voltages
            step = np.clip(delta, -damping, damping)
            still_active = []
            for i, d in enumerate(active):
                d.attempt_iterations += 1
                d.n_newton += 1
                if solve_errors[i] is not None:
                    d.error = solve_errors[i]
                elif not finite[i]:
                    # Serial bails without applying the update (and without
                    # refreshing the attempt residual).
                    _finish_attempt(d, False)
                else:
                    d.iterate = voltages[i] + step[i]
                    d.attempt_residual = float(np.max(np.abs(delta[i])))
                    if d.attempt_residual < newton_tolerance:
                        _finish_attempt(d, True)
                    elif d.attempt_iterations >= max_newton_iterations:
                        _finish_attempt(d, False)
                if d.error is None and not d.finished:
                    still_active.append(d)
            active = still_active

    occupancy = assembler.occupancy
    reuse_hits = assembler.pattern_reuse_hits
    record = telemetry.enabled()
    if record:
        if occupancy == occupancy:  # skip the no-assembly NaN
            telemetry.observe("repro_batch_occupancy", occupancy,
                              telemetry.FRACTION_BUCKETS)
        telemetry.inc("repro_pattern_reuse_total", reuse_hits)
    outcomes: list = []
    for d in designs:
        if d.error is not None:
            if record:
                telemetry.record_solve(SolveStats(
                    analysis="transient", converged=False,
                    iterations=d.n_newton, n_accepted=d.n_accepted,
                    n_rejected=d.n_rejected,
                    final_residual=d.attempt_residual,
                    final_gmin=_TRANSIENT_GMIN, batch_size=batch_size,
                    batch_occupancy=occupancy))
            if not return_errors:
                raise d.error
            outcomes.append(d.error)
            continue
        stats = SolveStats(
            analysis="transient", converged=True, iterations=d.n_newton,
            n_accepted=d.n_accepted, n_rejected=d.n_rejected,
            final_residual=d.attempt_residual, final_gmin=_TRANSIENT_GMIN,
            dt_min=d.dt_smallest if d.n_accepted else float("nan"),
            dt_max=d.dt_largest if d.n_accepted else float("nan"),
            batch_size=batch_size, batch_occupancy=occupancy,
            pattern_reuse_hits=reuse_hits)
        if record:
            telemetry.record_solve(stats)
        times_array = np.array(d.times)
        stacked = np.stack(d.solutions, axis=0)
        responses: dict[str, np.ndarray] = {}
        for node in observed:
            index = d.circuit.node_index(node)
            responses[node] = (np.zeros(times_array.shape[0]) if index < 0
                               else stacked[:, index].copy())
        outcomes.append(TransientResult(
            times=times_array, node_voltages=responses,
            n_accepted=d.n_accepted, n_rejected=d.n_rejected,
            n_newton_iterations=d.n_newton, stats=stats))
    return outcomes
