"""Adaptive-timestep transient analysis with companion models.

The solver integrates the circuit's differential-algebraic system with the
classic SPICE recipe:

* every reactive device is discretised into a *companion model* (conductance
  plus history current source) via the ``stamp_transient`` contract in
  :mod:`repro.spice.devices.base`;
* each timestep is solved with damped Newton iteration, reusing the MNA
  stamper and warm-starting from the previous solution;
* the first steps after t = 0 and after every waveform breakpoint use
  backward Euler (L-stable, safe across discontinuities), then integration
  switches to the trapezoidal rule (second order, A-stable);
* the timestep adapts to a local-truncation-error estimate built from
  divided differences of the accepted solution history, and steps are forced
  to land exactly on source-waveform breakpoints.

:class:`TransientResult` carries the accepted waveforms and implements the
time-domain measurements the sizing problems use as figures of merit: slew
rate, settling time and overshoot of a step response.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError
from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.netlist import Circuit

#: Tiny conductance to ground keeping otherwise-floating nodes solvable.
_TRANSIENT_GMIN = 1e-12


@dataclass
class TransientResult:
    """Time-domain waveforms of the observed nodes.

    Attributes
    ----------
    times:
        Accepted timepoints in seconds (first entry is 0 -- the DC initial
        condition -- and the last entry is exactly ``t_stop``).
    node_voltages:
        Mapping node name -> voltage array (same length as ``times``).
    n_accepted / n_rejected:
        Timestep-controller statistics (rejections count both LTE failures
        and Newton failures).
    n_newton_iterations:
        Total Newton iterations across all attempted steps.
    """

    times: np.ndarray
    node_voltages: dict[str, np.ndarray]
    n_accepted: int = 0
    n_rejected: int = 0
    n_newton_iterations: int = 0

    # ------------------------------------------------------------------ #
    # accessors                                                           #
    # ------------------------------------------------------------------ #
    def voltage(self, node: str) -> np.ndarray:
        return self.node_voltages[node]

    def value_at(self, node: str, t: float) -> float:
        """Linearly interpolated voltage at an arbitrary time."""
        return float(np.interp(t, self.times, self.voltage(node)))

    def final_value(self, node: str) -> float:
        """Voltage at the last accepted timepoint."""
        return float(self.voltage(node)[-1])

    # ------------------------------------------------------------------ #
    # step-response measurements                                          #
    # ------------------------------------------------------------------ #
    def _step_window(self, node: str, t_start: float,
                     final: float | None) -> tuple[np.ndarray, np.ndarray, float, float]:
        """Times/voltages from ``t_start`` on, plus (initial, final) levels."""
        times, values = self.times, self.voltage(node)
        mask = times >= t_start
        v0 = self.value_at(node, t_start)
        vf = self.final_value(node) if final is None else float(final)
        return times[mask], values[mask], v0, vf

    @staticmethod
    def _first_crossing(times: np.ndarray, values: np.ndarray,
                        threshold: float, rising: bool) -> float | None:
        """Interpolated time of the first crossing of ``threshold``."""
        beyond = values >= threshold if rising else values <= threshold
        indices = np.nonzero(beyond)[0]
        if indices.size == 0:
            return None
        index = int(indices[0])
        if index == 0:
            return float(times[0])
        t0, t1 = times[index - 1], times[index]
        v0, v1 = values[index - 1], values[index]
        if v1 == v0:
            return float(t1)
        return float(t0 + (threshold - v0) / (v1 - v0) * (t1 - t0))

    def slew_rate(self, node: str, t_start: float = 0.0,
                  low_fraction: float = 0.1, high_fraction: float = 0.9,
                  final: float | None = None) -> float:
        """10%-90% (by default) slew rate of a step transition, in V/s.

        Measured between the first crossings of the ``low_fraction`` and
        ``high_fraction`` levels of the transition from the value at
        ``t_start`` to the final value.  Returns 0 for a dead output (no
        swing or thresholds never crossed).
        """
        times, values, v0, vf = self._step_window(node, t_start, final)
        swing = vf - v0
        if times.size < 2 or abs(swing) < 1e-15:
            return 0.0
        rising = swing > 0
        t_low = self._first_crossing(times, values, v0 + low_fraction * swing, rising)
        t_high = self._first_crossing(times, values, v0 + high_fraction * swing, rising)
        if t_low is None or t_high is None or t_high <= t_low:
            return 0.0
        return (high_fraction - low_fraction) * abs(swing) / (t_high - t_low)

    def settling_time(self, node: str, tolerance: float = 0.01,
                      t_start: float = 0.0, final: float | None = None) -> float:
        """Time from ``t_start`` until the node stays within ``tolerance``.

        The band is ``tolerance * |swing|`` around the final value.  Returns
        ``inf`` when the node is still outside the band at the end of the
        analysis window, and 0 when it never leaves the band.
        """
        times, values, v0, vf = self._step_window(node, t_start, final)
        swing = vf - v0
        band = tolerance * abs(swing)
        if times.size < 2 or band <= 0.0:
            return 0.0
        outside = np.abs(values - vf) > band
        if not outside.any():
            return 0.0
        last_outside = int(np.nonzero(outside)[0][-1])
        if last_outside == times.size - 1:
            return float("inf")
        # Interpolate the band entry between the last outside sample and the
        # first inside one.
        t0, t1 = times[last_outside], times[last_outside + 1]
        d0 = abs(values[last_outside] - vf)
        d1 = abs(values[last_outside + 1] - vf)
        if d0 == d1:
            return float(t1 - t_start)
        fraction = (d0 - band) / (d0 - d1)
        return float(t0 + fraction * (t1 - t0) - t_start)

    def overshoot_percent(self, node: str, t_start: float = 0.0,
                          final: float | None = None) -> float:
        """Peak excursion beyond the final value, as a percentage of the swing."""
        times, values, v0, vf = self._step_window(node, t_start, final)
        swing = vf - v0
        if times.size < 2 or abs(swing) < 1e-15:
            return 0.0
        if swing > 0:
            excursion = float(values.max()) - vf
        else:
            excursion = vf - float(values.min())
        return max(excursion, 0.0) / abs(swing) * 100.0


def _newton_transient(circuit: Circuit, states: dict[str, dict],
                      start: np.ndarray, time: float, dt: float, method: str,
                      temperature: float, gmin: float, max_iterations: int,
                      tolerance: float, damping: float) -> tuple[np.ndarray, bool, int]:
    """Damped Newton iteration for one timestep (warm-started)."""
    voltages = start.copy()
    for iteration in range(1, max_iterations + 1):
        stamper = circuit.stamp_transient(voltages, states, time, dt, method,
                                          temperature, gmin=gmin)
        try:
            new_voltages = stamper.solve()
        except np.linalg.LinAlgError:
            new_voltages = stamper.solve_lstsq()
        if not np.all(np.isfinite(new_voltages)):
            return voltages, False, iteration
        delta = new_voltages - voltages
        voltages = voltages + np.clip(delta, -damping, damping)
        if np.max(np.abs(delta)) < tolerance:
            return voltages, True, iteration
    return voltages, False, max_iterations


def _divided_difference(times: list[float], values: list[np.ndarray]) -> np.ndarray:
    """Highest-order Newton divided difference of the given samples."""
    table = list(values)
    for order in range(1, len(times)):
        table = [(table[i + 1] - table[i]) / (times[i + order] - times[i])
                 for i in range(len(table) - 1)]
    return table[0]


def _collect_breakpoints(circuit: Circuit, t_stop: float) -> list[float]:
    """Sorted unique waveform breakpoints in ``(0, t_stop)``, plus ``t_stop``."""
    points: set[float] = set()
    for device in circuit.devices:
        waveform = getattr(device, "waveform", None)
        if waveform is not None:
            points.update(waveform.breakpoints(t_stop))
    merged: list[float] = []
    for point in sorted(points):
        if 0.0 < point < t_stop and (not merged or point - merged[-1] > 1e-15 * t_stop):
            merged.append(point)
    merged.append(t_stop)
    return merged


def transient_operating_point(circuit: Circuit, temperature: float = 27.0,
                              ) -> OperatingPoint:
    """DC solution with every waveform source held at its t = 0 value.

    This is the transient initial condition: a source whose waveform starts
    away from its ``dc`` attribute (e.g. a step from a low level) must be
    biased at the waveform's starting value, not at the AC-testbench bias.
    """
    overridden = []
    for device in circuit.devices:
        waveform = getattr(device, "waveform", None)
        if waveform is not None:
            overridden.append((device, device.dc))
            device.dc = waveform.value_at(0.0)
    try:
        return dc_operating_point(circuit, temperature=temperature)
    finally:
        for device, dc in overridden:
            device.dc = dc


def transient_analysis(circuit: Circuit, t_stop: float,
                       observe: list[str] | None = None,
                       temperature: float | None = None,
                       dt_initial: float | None = None,
                       dt_min: float | None = None,
                       dt_max: float | None = None,
                       reltol: float = 1e-4, abstol: float = 1e-6,
                       newton_tolerance: float = 1e-9,
                       max_newton_iterations: int = 50,
                       damping: float = 0.5,
                       max_steps: int = 200_000,
                       operating_point: OperatingPoint | None = None,
                       ) -> TransientResult:
    """Integrate ``circuit`` from its DC initial condition to ``t_stop``.

    Parameters
    ----------
    t_stop:
        Analysis window in seconds.
    observe:
        Node names to record; defaults to every non-ground node.
    temperature:
        Analysis temperature in Celsius.  Defaults to the supplied
        ``operating_point``'s temperature (27 when solving the initial
        condition here).  Passing a value that *disagrees* with a supplied
        operating point is deprecated -- the companion models would then be
        evaluated at a different temperature from the bias they linearise
        around -- and the operating point's temperature wins.
    dt_initial / dt_min / dt_max:
        Startup, floor and ceiling timesteps; default to ``1e-4``, ``1e-12``
        and ``1/50`` of ``t_stop``.
    reltol / abstol:
        Per-step local-truncation-error tolerance: a step is accepted when
        the estimated LTE of every node voltage is below
        ``reltol * |v| + abstol``.
    operating_point:
        Pre-computed initial condition; by default
        :func:`transient_operating_point` is solved (waveform sources held at
        their t = 0 values).

    Raises
    ------
    ConvergenceError:
        When the controller underflows ``dt_min`` (Newton repeatedly failing
        or the error estimate never satisfied) or exceeds ``max_steps``.
    """
    if t_stop <= 0.0:
        raise ValueError(f"t_stop must be positive, got {t_stop}")
    if temperature is None:
        temperature = (operating_point.temperature
                       if operating_point is not None else 27.0)
    elif (operating_point is not None
          and float(temperature) != float(operating_point.temperature)):
        warnings.warn(
            "passing temperature= alongside operating_point= is deprecated "
            "when the two disagree; the operating point's temperature "
            f"({operating_point.temperature:g}C) is used so the companion "
            "models stay consistent with the bias",
            DeprecationWarning, stacklevel=2)
        temperature = float(operating_point.temperature)
    circuit.ensure_indices()
    observed = list(observe) if observe is not None else circuit.nodes
    dt_initial = t_stop * 1e-4 if dt_initial is None else float(dt_initial)
    dt_min = t_stop * 1e-12 if dt_min is None else float(dt_min)
    dt_max = t_stop / 50.0 if dt_max is None else float(dt_max)

    if operating_point is None:
        operating_point = transient_operating_point(circuit, temperature)
    if not operating_point.converged:
        raise ConvergenceError(
            f"transient initial condition of {circuit.title!r} did not converge")

    states = circuit.init_transient_states(operating_point, temperature)
    n_nodes = circuit.n_nodes
    eps = t_stop * 1e-12

    t = 0.0
    solution = operating_point.voltages.copy()
    times = [0.0]
    solutions = [solution.copy()]
    # Accepted (t, solution) history for the divided-difference LTE estimate;
    # reset at every breakpoint so the estimate never spans a discontinuity.
    history: list[tuple[float, np.ndarray]] = [(0.0, solution.copy())]

    breakpoints = _collect_breakpoints(circuit, t_stop)
    next_break = 0
    dt = min(dt_initial, dt_max, breakpoints[0])
    n_accepted = n_rejected = n_newton = 0

    while t < t_stop - eps:
        if n_accepted + n_rejected >= max_steps:
            raise ConvergenceError(
                f"transient analysis of {circuit.title!r} exceeded "
                f"{max_steps} steps at t={t:.3e}s")
        while breakpoints[next_break] <= t + eps:
            next_break += 1
        dt = min(dt, dt_max, t_stop - t)
        hit_break = t + dt >= breakpoints[next_break] - eps
        if hit_break:
            dt = breakpoints[next_break] - t
        # Backward Euler until three accepted points exist past the last
        # breakpoint, trapezoidal afterwards.
        method = "be" if len(history) < 3 else "trap"
        t_new = t + dt

        new_solution, converged, iterations = _newton_transient(
            circuit, states, solution, t_new, dt, method, temperature,
            _TRANSIENT_GMIN, max_newton_iterations, newton_tolerance, damping)
        n_newton += iterations
        if not converged:
            n_rejected += 1
            dt *= 0.25
            if dt < dt_min:
                raise ConvergenceError(
                    f"transient Newton iteration of {circuit.title!r} failed "
                    f"at t={t_new:.3e}s with dt={dt:.3e}s")
            continue

        # Local-truncation-error estimate from divided differences of the
        # accepted history plus the candidate point.  BE error ~ (dt^2/2) v''
        # with v'' ~ 2*DD2; trapezoidal error ~ (dt^3/12) v''' with
        # v''' ~ 6*DD3.
        error_ratio = None
        if len(history) >= 2:
            order = 3 if method == "trap" else 2
            sample = history[-order:] + [(t_new, new_solution)]
            dd = _divided_difference([s[0] for s in sample],
                                     [s[1][:n_nodes] for s in sample])
            lte = (0.5 * dt**3 * np.abs(dd) if method == "trap"
                   else dt**2 * np.abs(dd))
            tolerance = (reltol * np.maximum(np.abs(new_solution[:n_nodes]),
                                             np.abs(solution[:n_nodes]))
                         + abstol)
            error_ratio = float(np.max(lte / tolerance))
            if error_ratio > 1.0:
                n_rejected += 1
                dt *= max(0.1, 0.9 * error_ratio ** (-1.0 / order))
                if dt < dt_min:
                    raise ConvergenceError(
                        f"transient timestep of {circuit.title!r} underflowed "
                        f"at t={t_new:.3e}s (LTE never satisfied)")
                continue

        circuit.commit_transient(new_solution, states, dt, temperature)
        t = t_new
        solution = new_solution
        n_accepted += 1
        times.append(t)
        solutions.append(solution.copy())
        history.append((t, solution.copy()))
        if len(history) > 3:
            history.pop(0)

        if hit_break:
            # Restart integration behind the corner: BE, small steps, and an
            # LTE history that does not bridge the discontinuity.
            history = [(t, solution.copy())]
            dt = min(dt_initial, dt_max)
        elif error_ratio is None:
            dt = min(dt * 2.0, dt_max)
        else:
            order = 3 if method == "trap" else 2
            factor = 0.9 * max(error_ratio, 1e-10) ** (-1.0 / order)
            dt = min(dt * min(2.0, max(0.3, factor)), dt_max)

    times_array = np.array(times)
    stacked = np.stack(solutions, axis=0)
    responses: dict[str, np.ndarray] = {}
    for node in observed:
        index = circuit.node_index(node)
        responses[node] = (np.zeros(times_array.shape[0]) if index < 0
                           else stacked[:, index].copy())
    return TransientResult(times=times_array, node_voltages=responses,
                           n_accepted=n_accepted, n_rejected=n_rejected,
                           n_newton_iterations=n_newton)
