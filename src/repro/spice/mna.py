"""Modified-nodal-analysis system assembly.

The MNA unknown vector is ``[node voltages (excluding ground), branch
currents]``.  Devices stamp conductances between node pairs, current
injections into nodes and branch equations through a :class:`Stamper`, which
transparently ignores the ground node (index ``-1``).

Four stamper implementations share one stamping vocabulary:

* :class:`Stamper` -- one dense ``(size, size)`` system (the classic path);
* :class:`BatchStamper` -- ``B`` topology-identical systems as one
  ``(B, size, size)`` tensor, filled by the vectorized ``stamp_dc_batch``
  device contract (scalar *or* ``(B,)``-valued stamps) and solved with one
  stacked LAPACK call;
* :class:`SparseStamper` -- triplet assembly reduced to CSR and factorised
  with SuperLU (:func:`scipy.sparse.linalg.splu`), for circuits past the
  dense ceiling;
* :class:`SparseBatchStamper` -- the batched sparse path: one shared
  symbolic pattern (the topology is identical across the batch) with
  ``(B,)``-wide triplet values, factorised per design.

Bit-identity contract: for a fixed solver (dense or sparse), the batched
stampers accumulate exactly the same additions in exactly the same order as
their serial counterpart does per design, and the solves are per-slice
bit-identical to the serial solves -- so batched Newton reproduces serial
Newton bit for bit (see ``tests/test_batched.py``).
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised through the sparse-path tests
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.linalg import splu as _splu
    HAVE_SCIPY_SPARSE = True
except ImportError:  # pragma: no cover - the image bakes scipy in
    _csr_matrix = None
    _splu = None
    HAVE_SCIPY_SPARSE = False

#: System size (nodes + branches) at and above which the ``"auto"`` solver
#: switches DC Newton assembly/solves from the dense ``(size, size)`` path to
#: the CSR + SuperLU path.  The crossover is generous: MNA systems are
#: extremely sparse (a handful of entries per row), but SuperLU's per-solve
#: constant only beats dense LAPACK once the dense factorisation's O(n^3)
#: actually bites.
SPARSE_SIZE_THRESHOLD = 200


class _StampOps:
    """Composite stamps shared by every stamper, built on add_entry/add_rhs.

    Values may be scalars (serial stampers) or ``(B,)`` arrays (batch
    stampers); the element stamps below are agnostic.
    """

    def add_conductance(self, node_a: int, node_b: int, conductance) -> None:
        """Stamp a conductance between two nodes (standard 2x2 pattern)."""
        self.add_entry(node_a, node_a, conductance)
        self.add_entry(node_b, node_b, conductance)
        self.add_entry(node_a, node_b, -conductance)
        self.add_entry(node_b, node_a, -conductance)

    def add_current(self, node_from: int, node_to: int, current) -> None:
        """Stamp a current flowing from ``node_from`` to ``node_to``.

        Conventionally a current source pushing current into ``node_to``
        appears as ``+I`` on ``node_to`` and ``-I`` on ``node_from`` in the
        right-hand side.
        """
        self.add_rhs(node_from, -current)
        self.add_rhs(node_to, current)

    def add_transconductance(self, out_pos: int, out_neg: int,
                             ctrl_pos: int, ctrl_neg: int, gm) -> None:
        """Stamp a VCCS: current ``gm * (v_ctrl_pos - v_ctrl_neg)`` from out_pos to out_neg."""
        self.add_entry(out_pos, ctrl_pos, gm)
        self.add_entry(out_pos, ctrl_neg, -gm)
        self.add_entry(out_neg, ctrl_pos, -gm)
        self.add_entry(out_neg, ctrl_neg, gm)


class Stamper(_StampOps):
    """Accumulates device stamps into one dense MNA matrix and right-hand side.

    ``matrix``/``rhs`` may be supplied to wrap preallocated buffers (e.g. one
    design's slice of a :class:`BatchStamper`); callers passing buffers are
    responsible for zeroing them (:meth:`reset`).
    """

    def __init__(self, n_nodes: int, n_branches: int, dtype=float,
                 matrix: np.ndarray | None = None,
                 rhs: np.ndarray | None = None):
        size = n_nodes + n_branches
        self.n_nodes = int(n_nodes)
        self.n_branches = int(n_branches)
        self.matrix = np.zeros((size, size), dtype=dtype) if matrix is None else matrix
        self.rhs = np.zeros(size, dtype=dtype) if rhs is None else rhs
        self._diagonal = np.arange(self.n_nodes)

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    def reset(self) -> None:
        """Zero the system in place so the buffers can be restamped."""
        self.matrix[...] = 0
        self.rhs[...] = 0

    # ------------------------------------------------------------------ #
    # element stamps                                                      #
    # ------------------------------------------------------------------ #
    def add_entry(self, row: int, col: int, value) -> None:
        """Add ``value`` at (row, col); either index may be ground (-1)."""
        if row < 0 or col < 0:
            return
        self.matrix[row, col] += value

    def add_rhs(self, row: int, value) -> None:
        if row < 0:
            return
        self.rhs[row] += value

    def add_gmin(self, gmin: float) -> None:
        """Add a small conductance from every node to ground (convergence aid)."""
        diagonal = self._diagonal
        self.matrix[diagonal, diagonal] += gmin

    # ------------------------------------------------------------------ #
    # solving                                                             #
    # ------------------------------------------------------------------ #
    def solve(self) -> np.ndarray:
        """Solve the assembled linear system."""
        return np.linalg.solve(self.matrix, self.rhs)

    def solve_lstsq(self) -> np.ndarray:
        """Least-squares fallback for singular systems (floating nodes)."""
        solution, *_ = np.linalg.lstsq(self.matrix, self.rhs, rcond=None)
        return solution


class BatchStamper(_StampOps):
    """``B`` topology-identical dense MNA systems as one ``(B, size, size)`` tensor.

    Stamp values may be scalars (identical across the batch) or ``(B,)``
    arrays (one value per design); every add lands on the same (row, col)
    slot of all ``B`` systems at once.  Devices that do not implement the
    vectorized contract are handled by :meth:`stamp_device_serial`, which
    stamps each design through a per-design :class:`Stamper` view into this
    tensor -- identical accumulation order, so the fallback stays
    bit-identical to serial assembly.
    """

    def __init__(self, batch_size: int, n_nodes: int, n_branches: int, dtype=float):
        size = n_nodes + n_branches
        self.batch_size = int(batch_size)
        self.n_nodes = int(n_nodes)
        self.n_branches = int(n_branches)
        self.matrix = np.zeros((self.batch_size, size, size), dtype=dtype)
        self.rhs = np.zeros((self.batch_size, size), dtype=dtype)
        self._diagonal = np.arange(self.n_nodes)
        self._views: list[Stamper] | None = None

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    def reset(self) -> None:
        self.matrix[...] = 0
        self.rhs[...] = 0

    # ------------------------------------------------------------------ #
    # element stamps                                                      #
    # ------------------------------------------------------------------ #
    def add_entry(self, row: int, col: int, values) -> None:
        """Add scalar or ``(B,)`` ``values`` at (row, col) across the batch."""
        if row < 0 or col < 0:
            return
        self.matrix[:, row, col] += values

    def add_rhs(self, row: int, values) -> None:
        if row < 0:
            return
        self.rhs[:, row] += values

    def add_gmin(self, gmin: float) -> None:
        diagonal = self._diagonal
        self.matrix[:, diagonal, diagonal] += gmin

    # ------------------------------------------------------------------ #
    # per-design fallback                                                 #
    # ------------------------------------------------------------------ #
    def design_view(self, index: int) -> Stamper:
        """A :class:`Stamper` whose matrix/rhs are views of design ``index``."""
        if self._views is None:
            self._views = [Stamper(self.n_nodes, self.n_branches,
                                   matrix=self.matrix[b], rhs=self.rhs[b])
                           for b in range(self.batch_size)]
        return self._views[index]

    def stamp_device_serial(self, siblings, voltages: np.ndarray,
                            temperatures: np.ndarray) -> None:
        """Per-design fallback for devices without a vectorized DC stamp."""
        for b, device in enumerate(siblings):
            device.stamp_dc(self.design_view(b), voltages[b],
                            float(temperatures[b]))

    # ------------------------------------------------------------------ #
    # solving                                                             #
    # ------------------------------------------------------------------ #
    def solve(self) -> np.ndarray:
        """One stacked LAPACK solve of all ``B`` systems; ``(B, size)``.

        Per-slice bit-identical to :meth:`solve_design` on each design;
        raises :class:`numpy.linalg.LinAlgError` when *any* design's system
        is singular (the caller then falls back to per-design solves).
        """
        return np.linalg.solve(self.matrix, self.rhs[..., None])[..., 0]

    def solve_design(self, index: int) -> np.ndarray:
        return np.linalg.solve(self.matrix[index], self.rhs[index])

    def solve_lstsq_design(self, index: int) -> np.ndarray:
        solution, *_ = np.linalg.lstsq(self.matrix[index], self.rhs[index],
                                       rcond=None)
        return solution


# --------------------------------------------------------------------- #
# sparse assembly                                                        #
# --------------------------------------------------------------------- #
def _require_scipy() -> None:
    if not HAVE_SCIPY_SPARSE:  # pragma: no cover - scipy ships in the image
        raise RuntimeError("the sparse MNA path needs scipy.sparse; "
                           "install scipy or use solver='dense'")


def _csr_pattern(rows: np.ndarray, cols: np.ndarray, size: int):
    """Shared symbolic CSR pattern of a triplet list.

    Returns ``(order, starts, indices, indptr)``: ``order`` is the stable
    lexsort permutation by (row, col), ``starts`` marks the first triplet of
    each duplicate run (so ``np.add.reduceat(values[order], starts)`` sums
    duplicates in append order), and ``indices``/``indptr`` are the CSR
    column/row-pointer arrays of the deduplicated pattern.
    """
    order = np.lexsort((cols, rows))
    sorted_rows = rows[order]
    sorted_cols = cols[order]
    if sorted_rows.size == 0:
        starts = np.empty(0, dtype=np.intp)
        indices = np.empty(0, dtype=np.intp)
        indptr = np.zeros(size + 1, dtype=np.intp)
        return order, starts, indices, indptr
    new_slot = np.empty(sorted_rows.size, dtype=bool)
    new_slot[0] = True
    new_slot[1:] = ((sorted_rows[1:] != sorted_rows[:-1])
                    | (sorted_cols[1:] != sorted_cols[:-1]))
    starts = np.nonzero(new_slot)[0]
    indices = sorted_cols[starts]
    counts = np.bincount(sorted_rows[starts], minlength=size)
    indptr = np.zeros(size + 1, dtype=np.intp)
    np.cumsum(counts, out=indptr[1:])
    return order, starts, indices, indptr


def _sparse_solve(values: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
                  size: int, rhs: np.ndarray) -> np.ndarray:
    """SuperLU solve of one CSR system; LinAlgError on a singular factor."""
    _require_scipy()
    matrix = _csr_matrix((values, indices, indptr), shape=(size, size))
    try:
        factor = _splu(matrix.tocsc())
        return factor.solve(rhs)
    except RuntimeError as exc:  # "Factor is exactly singular"
        raise np.linalg.LinAlgError(str(exc)) from exc


def _sparse_lstsq(values: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
                  size: int, rhs: np.ndarray) -> np.ndarray:
    """Densified least-squares fallback (mirrors :meth:`Stamper.solve_lstsq`)."""
    _require_scipy()
    dense = _csr_matrix((values, indices, indptr), shape=(size, size)).toarray()
    solution, *_ = np.linalg.lstsq(dense, rhs, rcond=None)
    return solution


class SparseStamper(_StampOps):
    """Triplet-list MNA assembly solved via CSR + SuperLU.

    Same stamping interface as :class:`Stamper`; entries accumulate as
    (row, col, value) triplets and duplicates are summed in append order
    during CSR conversion, so the assembled numbers are reproducible (and
    shared bit-for-bit with :class:`SparseBatchStamper`, which uses the same
    pattern/reduce machinery).
    """

    def __init__(self, n_nodes: int, n_branches: int, dtype=float):
        _require_scipy()
        self.n_nodes = int(n_nodes)
        self.n_branches = int(n_branches)
        self.dtype = dtype
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.vals: list[float] = []
        self.rhs = np.zeros(self.size, dtype=dtype)

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    def reset(self) -> None:
        self.rows.clear()
        self.cols.clear()
        self.vals.clear()
        self.rhs[...] = 0

    # ------------------------------------------------------------------ #
    # element stamps                                                      #
    # ------------------------------------------------------------------ #
    def add_entry(self, row: int, col: int, value) -> None:
        if row < 0 or col < 0:
            return
        self.rows.append(row)
        self.cols.append(col)
        self.vals.append(value)

    def add_rhs(self, row: int, value) -> None:
        if row < 0:
            return
        self.rhs[row] += value

    def add_gmin(self, gmin: float) -> None:
        nodes = range(self.n_nodes)
        self.rows.extend(nodes)
        self.cols.extend(nodes)
        self.vals.extend([gmin] * self.n_nodes)

    # ------------------------------------------------------------------ #
    # solving                                                             #
    # ------------------------------------------------------------------ #
    def _csr(self):
        rows = np.asarray(self.rows, dtype=np.intp)
        cols = np.asarray(self.cols, dtype=np.intp)
        vals = np.asarray(self.vals, dtype=self.dtype)
        order, starts, indices, indptr = _csr_pattern(rows, cols, self.size)
        if starts.size:
            values = np.add.reduceat(vals[order], starts)
        else:
            values = np.empty(0, dtype=self.dtype)
        return values, indices, indptr

    def solve(self) -> np.ndarray:
        values, indices, indptr = self._csr()
        return _sparse_solve(values, indices, indptr, self.size, self.rhs)

    def solve_lstsq(self) -> np.ndarray:
        values, indices, indptr = self._csr()
        return _sparse_lstsq(values, indices, indptr, self.size, self.rhs)


class _SparseDesignView(_StampOps):
    """One design's serial-stamping view into a :class:`SparseBatchStamper`.

    The first design of a fallback pass *defines* the triplet positions; the
    remaining designs must visit the same (row, col) sequence -- guaranteed
    for topology-identical circuits, whose device stamping call sequences are
    value-independent -- and fill their column of each ``(B,)`` value array.
    """

    def __init__(self, parent: "SparseBatchStamper", index: int, base: int):
        self._parent = parent
        self._index = index
        self._cursor = base

    def add_entry(self, row: int, col: int, value) -> None:
        if row < 0 or col < 0:
            return
        parent = self._parent
        position = self._cursor
        self._cursor += 1
        if self._index == 0:
            parent.rows.append(row)
            parent.cols.append(col)
            parent.data.append(np.zeros(parent.batch_size))
        elif parent.rows[position] != row or parent.cols[position] != col:
            raise ValueError(
                "per-design fallback stamps diverged across the batch: "
                f"design {self._index} wrote ({row}, {col}) where design 0 "
                f"wrote ({parent.rows[position]}, {parent.cols[position]}); "
                "batched assembly requires topology-identical circuits")
        parent.data[position][self._index] += value

    def add_rhs(self, row: int, value) -> None:
        if row < 0:
            return
        self._parent.rhs[self._index, row] += value


class SparseBatchStamper(_StampOps):
    """``B`` topology-identical sparse systems sharing one symbolic pattern.

    Vectorized stamps append one triplet carrying a ``(B,)`` value vector;
    the CSR pattern (lexsort + duplicate-run reduction) is computed once and
    shared across the batch, and each design's numeric factorisation runs on
    its own value column -- bit-identical to :class:`SparseStamper` on the
    same design, which uses the same machinery on 1-D values.
    """

    def __init__(self, batch_size: int, n_nodes: int, n_branches: int):
        _require_scipy()
        self.batch_size = int(batch_size)
        self.n_nodes = int(n_nodes)
        self.n_branches = int(n_branches)
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.data: list[np.ndarray] = []
        self.rhs = np.zeros((self.batch_size, self.size))
        self._csr_cache = None

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    def reset(self) -> None:
        self.rows.clear()
        self.cols.clear()
        self.data.clear()
        self.rhs[...] = 0
        self._csr_cache = None

    # ------------------------------------------------------------------ #
    # element stamps                                                      #
    # ------------------------------------------------------------------ #
    def add_entry(self, row: int, col: int, values) -> None:
        if row < 0 or col < 0:
            return
        self.rows.append(row)
        self.cols.append(col)
        column = np.empty(self.batch_size)
        column[:] = values
        self.data.append(column)

    def add_rhs(self, row: int, values) -> None:
        if row < 0:
            return
        self.rhs[:, row] += values

    def add_gmin(self, gmin: float) -> None:
        nodes = range(self.n_nodes)
        self.rows.extend(nodes)
        self.cols.extend(nodes)
        self.data.extend(np.full(self.batch_size, gmin)
                         for _ in range(self.n_nodes))

    # ------------------------------------------------------------------ #
    # per-design fallback                                                 #
    # ------------------------------------------------------------------ #
    def stamp_device_serial(self, siblings, voltages: np.ndarray,
                            temperatures: np.ndarray) -> None:
        """Per-design fallback for devices without a vectorized DC stamp."""
        base = len(self.rows)
        count = None
        for b, device in enumerate(siblings):
            view = _SparseDesignView(self, b, base)
            device.stamp_dc(view, voltages[b], float(temperatures[b]))
            written = view._cursor - base
            if count is None:
                count = written
            elif written != count:
                raise ValueError(
                    f"device {device.name!r} stamped {written} entries for "
                    f"design {b} but {count} for design 0; batched assembly "
                    "requires topology-identical circuits")

    # ------------------------------------------------------------------ #
    # solving                                                             #
    # ------------------------------------------------------------------ #
    def _csr(self):
        if self._csr_cache is None:
            rows = np.asarray(self.rows, dtype=np.intp)
            cols = np.asarray(self.cols, dtype=np.intp)
            order, starts, indices, indptr = _csr_pattern(rows, cols, self.size)
            if starts.size:
                stacked = np.asarray(self.data)  # (n_triplets, B)
                values = np.add.reduceat(stacked[order], starts, axis=0)
            else:
                values = np.empty((0, self.batch_size))
            self._csr_cache = (values, indices, indptr)
        return self._csr_cache

    def solve(self) -> np.ndarray:
        """Factorise and solve every design; ``(B, size)``.

        Raises :class:`numpy.linalg.LinAlgError` as soon as one design's
        factor is singular -- the caller then retries per design with its
        least-squares fallback, like the dense path.
        """
        values, indices, indptr = self._csr()
        out = np.empty((self.batch_size, self.size))
        for b in range(self.batch_size):
            out[b] = _sparse_solve(values[:, b], indices, indptr, self.size,
                                   self.rhs[b])
        return out

    def solve_design(self, index: int) -> np.ndarray:
        values, indices, indptr = self._csr()
        return _sparse_solve(values[:, index], indices, indptr, self.size,
                             self.rhs[index])

    def solve_lstsq_design(self, index: int) -> np.ndarray:
        values, indices, indptr = self._csr()
        return _sparse_lstsq(values[:, index], indices, indptr, self.size,
                             self.rhs[index])
