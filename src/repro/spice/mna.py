"""Modified-nodal-analysis system assembly.

The MNA unknown vector is ``[node voltages (excluding ground), branch
currents]``.  Devices stamp conductances between node pairs, current
injections into nodes and branch equations through a :class:`Stamper`, which
transparently ignores the ground node (index ``-1``).

Four stamper implementations share one stamping vocabulary:

* :class:`Stamper` -- one dense ``(size, size)`` system (the classic path);
* :class:`BatchStamper` -- ``B`` topology-identical systems as one
  ``(B, size, size)`` tensor, filled by the vectorized ``stamp_dc_batch``
  device contract (scalar *or* ``(B,)``-valued stamps) and solved with one
  stacked LAPACK call;
* :class:`SparseStamper` -- triplet assembly reduced to CSR and factorised
  with SuperLU (:func:`scipy.sparse.linalg.splu`), for circuits past the
  dense ceiling;
* :class:`SparseBatchStamper` -- the batched sparse path: one shared
  symbolic pattern (the topology is identical across the batch) with
  ``(B,)``-wide triplet values, factorised per design.  After the first
  assembly the stamper *locks* its triplet pattern: subsequent
  ``reset()``/restamp cycles (Newton iterations, transient steps) reuse the
  frozen position arrays, the lexsort/deduplication analysis and the
  CSR->CSC conversion mapping instead of rebuilding them, so only the
  numeric factorisation is repeated per design.  The opt-in
  ``shared_symbolic`` mode goes further and reuses design 0's SuperLU
  column permutation for the whole batch (see the class docstring).

Bit-identity contract: for a fixed solver (dense or sparse), the batched
stampers accumulate exactly the same additions in exactly the same order as
their serial counterpart does per design, and the solves are per-slice
bit-identical to the serial solves -- so batched Newton reproduces serial
Newton bit for bit (see ``tests/test_batched.py``).  ``shared_symbolic``
is the one documented exception: it trades last-ulp identity for a shared
symbolic factorisation and is off by default.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised through the sparse-path tests
    from scipy.sparse import csc_matrix as _csc_matrix
    from scipy.sparse import csr_matrix as _csr_matrix
    from scipy.sparse.linalg import splu as _splu
    HAVE_SCIPY_SPARSE = True
except ImportError:  # pragma: no cover - the image bakes scipy in
    _csc_matrix = None
    _csr_matrix = None
    _splu = None
    HAVE_SCIPY_SPARSE = False

#: System size (nodes + branches) at and above which the ``"auto"`` solver
#: switches DC Newton assembly/solves from the dense ``(size, size)`` path to
#: the CSR + SuperLU path.  The crossover is generous: MNA systems are
#: extremely sparse (a handful of entries per row), but SuperLU's per-solve
#: constant only beats dense LAPACK once the dense factorisation's O(n^3)
#: actually bites.
SPARSE_SIZE_THRESHOLD = 200


class _StampOps:
    """Composite stamps shared by every stamper, built on add_entry/add_rhs.

    Values may be scalars (serial stampers) or ``(B,)`` arrays (batch
    stampers); the element stamps below are agnostic.
    """

    def add_conductance(self, node_a: int, node_b: int, conductance) -> None:
        """Stamp a conductance between two nodes (standard 2x2 pattern)."""
        self.add_entry(node_a, node_a, conductance)
        self.add_entry(node_b, node_b, conductance)
        self.add_entry(node_a, node_b, -conductance)
        self.add_entry(node_b, node_a, -conductance)

    def add_current(self, node_from: int, node_to: int, current) -> None:
        """Stamp a current flowing from ``node_from`` to ``node_to``.

        Conventionally a current source pushing current into ``node_to``
        appears as ``+I`` on ``node_to`` and ``-I`` on ``node_from`` in the
        right-hand side.
        """
        self.add_rhs(node_from, -current)
        self.add_rhs(node_to, current)

    def add_transconductance(self, out_pos: int, out_neg: int,
                             ctrl_pos: int, ctrl_neg: int, gm) -> None:
        """Stamp a VCCS: current ``gm * (v_ctrl_pos - v_ctrl_neg)`` from out_pos to out_neg."""
        self.add_entry(out_pos, ctrl_pos, gm)
        self.add_entry(out_pos, ctrl_neg, -gm)
        self.add_entry(out_neg, ctrl_pos, -gm)
        self.add_entry(out_neg, ctrl_neg, gm)


class Stamper(_StampOps):
    """Accumulates device stamps into one dense MNA matrix and right-hand side.

    ``matrix``/``rhs`` may be supplied to wrap preallocated buffers (e.g. one
    design's slice of a :class:`BatchStamper`); callers passing buffers are
    responsible for zeroing them (:meth:`reset`).
    """

    def __init__(self, n_nodes: int, n_branches: int, dtype=float,
                 matrix: np.ndarray | None = None,
                 rhs: np.ndarray | None = None):
        size = n_nodes + n_branches
        self.n_nodes = int(n_nodes)
        self.n_branches = int(n_branches)
        self.matrix = np.zeros((size, size), dtype=dtype) if matrix is None else matrix
        self.rhs = np.zeros(size, dtype=dtype) if rhs is None else rhs
        self._diagonal = np.arange(self.n_nodes)

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    def reset(self) -> None:
        """Zero the system in place so the buffers can be restamped."""
        self.matrix[...] = 0
        self.rhs[...] = 0

    # ------------------------------------------------------------------ #
    # element stamps                                                      #
    # ------------------------------------------------------------------ #
    def add_entry(self, row: int, col: int, value) -> None:
        """Add ``value`` at (row, col); either index may be ground (-1)."""
        if row < 0 or col < 0:
            return
        self.matrix[row, col] += value

    def add_rhs(self, row: int, value) -> None:
        if row < 0:
            return
        self.rhs[row] += value

    def add_gmin(self, gmin: float) -> None:
        """Add a small conductance from every node to ground (convergence aid)."""
        diagonal = self._diagonal
        self.matrix[diagonal, diagonal] += gmin

    # ------------------------------------------------------------------ #
    # solving                                                             #
    # ------------------------------------------------------------------ #
    def solve(self) -> np.ndarray:
        """Solve the assembled linear system."""
        return np.linalg.solve(self.matrix, self.rhs)

    def solve_lstsq(self) -> np.ndarray:
        """Least-squares fallback for singular systems (floating nodes)."""
        solution, *_ = np.linalg.lstsq(self.matrix, self.rhs, rcond=None)
        return solution


class BatchStamper(_StampOps):
    """``B`` topology-identical dense MNA systems as one ``(B, size, size)`` tensor.

    Stamp values may be scalars (identical across the batch) or ``(B,)``
    arrays (one value per design); every add lands on the same (row, col)
    slot of all ``B`` systems at once.  Devices that do not implement the
    vectorized contract are handled by :meth:`stamp_device_serial`, which
    stamps each design through a per-design :class:`Stamper` view into this
    tensor -- identical accumulation order, so the fallback stays
    bit-identical to serial assembly.
    """

    def __init__(self, batch_size: int, n_nodes: int, n_branches: int, dtype=float):
        size = n_nodes + n_branches
        self.batch_size = int(batch_size)
        self.n_nodes = int(n_nodes)
        self.n_branches = int(n_branches)
        self.matrix = np.zeros((self.batch_size, size, size), dtype=dtype)
        self.rhs = np.zeros((self.batch_size, size), dtype=dtype)
        self._diagonal = np.arange(self.n_nodes)
        self._views: list[Stamper] | None = None

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    def reset(self) -> None:
        self.matrix[...] = 0
        self.rhs[...] = 0

    # ------------------------------------------------------------------ #
    # element stamps                                                      #
    # ------------------------------------------------------------------ #
    def add_entry(self, row: int, col: int, values) -> None:
        """Add scalar or ``(B,)`` ``values`` at (row, col) across the batch."""
        if row < 0 or col < 0:
            return
        self.matrix[:, row, col] += values

    def add_rhs(self, row: int, values) -> None:
        if row < 0:
            return
        self.rhs[:, row] += values

    def add_gmin(self, gmin: float) -> None:
        diagonal = self._diagonal
        self.matrix[:, diagonal, diagonal] += gmin

    # ------------------------------------------------------------------ #
    # per-design fallback                                                 #
    # ------------------------------------------------------------------ #
    def design_view(self, index: int) -> Stamper:
        """A :class:`Stamper` whose matrix/rhs are views of design ``index``."""
        if self._views is None:
            self._views = [Stamper(self.n_nodes, self.n_branches,
                                   matrix=self.matrix[b], rhs=self.rhs[b])
                           for b in range(self.batch_size)]
        return self._views[index]

    def stamp_device_serial(self, siblings, voltages: np.ndarray,
                            temperatures: np.ndarray) -> None:
        """Per-design fallback for devices without a vectorized DC stamp."""
        for b, device in enumerate(siblings):
            device.stamp_dc(self.design_view(b), voltages[b],
                            float(temperatures[b]))

    def stamp_device_transient_serial(self, siblings, voltages: np.ndarray,
                                      states, dts: np.ndarray,
                                      temperatures: np.ndarray) -> None:
        """Per-design fallback for devices without a vectorized transient stamp.

        ``states[b]`` is design ``b``'s mutable state dict for this device;
        the transient driver has already injected the reserved ``"time"`` and
        ``"method"`` keys for the step being attempted.
        """
        for b, device in enumerate(siblings):
            device.stamp_transient(self.design_view(b), voltages[b],
                                   states[b], float(dts[b]),
                                   float(temperatures[b]))

    # ------------------------------------------------------------------ #
    # solving                                                             #
    # ------------------------------------------------------------------ #
    def solve(self) -> np.ndarray:
        """One stacked LAPACK solve of all ``B`` systems; ``(B, size)``.

        Per-slice bit-identical to :meth:`solve_design` on each design;
        raises :class:`numpy.linalg.LinAlgError` when *any* design's system
        is singular (the caller then falls back to per-design solves).
        """
        return np.linalg.solve(self.matrix, self.rhs[..., None])[..., 0]

    def solve_design(self, index: int) -> np.ndarray:
        return np.linalg.solve(self.matrix[index], self.rhs[index])

    def solve_lstsq_design(self, index: int) -> np.ndarray:
        solution, *_ = np.linalg.lstsq(self.matrix[index], self.rhs[index],
                                       rcond=None)
        return solution


# --------------------------------------------------------------------- #
# sparse assembly                                                        #
# --------------------------------------------------------------------- #
def _require_scipy() -> None:
    if not HAVE_SCIPY_SPARSE:  # pragma: no cover - scipy ships in the image
        raise RuntimeError("the sparse MNA path needs scipy.sparse; "
                           "install scipy or use solver='dense'")


def _csr_pattern(rows: np.ndarray, cols: np.ndarray, size: int):
    """Shared symbolic CSR pattern of a triplet list.

    Returns ``(order, starts, indices, indptr)``: ``order`` is the stable
    lexsort permutation by (row, col), ``starts`` marks the first triplet of
    each duplicate run (so ``np.add.reduceat(values[order], starts)`` sums
    duplicates in append order), and ``indices``/``indptr`` are the CSR
    column/row-pointer arrays of the deduplicated pattern.
    """
    order = np.lexsort((cols, rows))
    sorted_rows = rows[order]
    sorted_cols = cols[order]
    if sorted_rows.size == 0:
        starts = np.empty(0, dtype=np.intp)
        indices = np.empty(0, dtype=np.intp)
        indptr = np.zeros(size + 1, dtype=np.intp)
        return order, starts, indices, indptr
    new_slot = np.empty(sorted_rows.size, dtype=bool)
    new_slot[0] = True
    new_slot[1:] = ((sorted_rows[1:] != sorted_rows[:-1])
                    | (sorted_cols[1:] != sorted_cols[:-1]))
    starts = np.nonzero(new_slot)[0]
    indices = sorted_cols[starts]
    counts = np.bincount(sorted_rows[starts], minlength=size)
    indptr = np.zeros(size + 1, dtype=np.intp)
    np.cumsum(counts, out=indptr[1:])
    return order, starts, indices, indptr


def _sparse_solve(values: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
                  size: int, rhs: np.ndarray) -> np.ndarray:
    """SuperLU solve of one CSR system; LinAlgError on a singular factor."""
    _require_scipy()
    matrix = _csr_matrix((values, indices, indptr), shape=(size, size))
    try:
        factor = _splu(matrix.tocsc())
        return factor.solve(rhs)
    except RuntimeError as exc:  # "Factor is exactly singular"
        raise np.linalg.LinAlgError(str(exc)) from exc


def _sparse_lstsq(values: np.ndarray, indices: np.ndarray, indptr: np.ndarray,
                  size: int, rhs: np.ndarray) -> np.ndarray:
    """Densified least-squares fallback (mirrors :meth:`Stamper.solve_lstsq`)."""
    _require_scipy()
    dense = _csr_matrix((values, indices, indptr), shape=(size, size)).toarray()
    solution, *_ = np.linalg.lstsq(dense, rhs, rcond=None)
    return solution


class SparseStamper(_StampOps):
    """Triplet-list MNA assembly solved via CSR + SuperLU.

    Same stamping interface as :class:`Stamper`; entries accumulate as
    (row, col, value) triplets and duplicates are summed in append order
    during CSR conversion, so the assembled numbers are reproducible (and
    shared bit-for-bit with :class:`SparseBatchStamper`, which uses the same
    pattern/reduce machinery).
    """

    def __init__(self, n_nodes: int, n_branches: int, dtype=float):
        _require_scipy()
        self.n_nodes = int(n_nodes)
        self.n_branches = int(n_branches)
        self.dtype = dtype
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.vals: list[float] = []
        self.rhs = np.zeros(self.size, dtype=dtype)

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    def reset(self) -> None:
        self.rows.clear()
        self.cols.clear()
        self.vals.clear()
        self.rhs[...] = 0

    # ------------------------------------------------------------------ #
    # element stamps                                                      #
    # ------------------------------------------------------------------ #
    def add_entry(self, row: int, col: int, value) -> None:
        if row < 0 or col < 0:
            return
        self.rows.append(row)
        self.cols.append(col)
        self.vals.append(value)

    def add_rhs(self, row: int, value) -> None:
        if row < 0:
            return
        self.rhs[row] += value

    def add_gmin(self, gmin: float) -> None:
        nodes = range(self.n_nodes)
        self.rows.extend(nodes)
        self.cols.extend(nodes)
        self.vals.extend([gmin] * self.n_nodes)

    # ------------------------------------------------------------------ #
    # solving                                                             #
    # ------------------------------------------------------------------ #
    def _csr(self):
        rows = np.asarray(self.rows, dtype=np.intp)
        cols = np.asarray(self.cols, dtype=np.intp)
        vals = np.asarray(self.vals, dtype=self.dtype)
        order, starts, indices, indptr = _csr_pattern(rows, cols, self.size)
        if starts.size:
            values = np.add.reduceat(vals[order], starts)
        else:
            values = np.empty(0, dtype=self.dtype)
        return values, indices, indptr

    def solve(self) -> np.ndarray:
        values, indices, indptr = self._csr()
        return _sparse_solve(values, indices, indptr, self.size, self.rhs)

    def solve_lstsq(self) -> np.ndarray:
        values, indices, indptr = self._csr()
        return _sparse_lstsq(values, indices, indptr, self.size, self.rhs)


class _SparseDesignView(_StampOps):
    """One design's serial-stamping view into a :class:`SparseBatchStamper`.

    The first design of a fallback pass *defines* the triplet positions; the
    remaining designs must visit the same (row, col) sequence -- guaranteed
    for topology-identical circuits, whose device stamping call sequences are
    value-independent -- and fill their column of each ``(B,)`` value array.
    """

    def __init__(self, parent: "SparseBatchStamper", index: int, base: int):
        self._parent = parent
        self._index = index
        self._cursor = base

    def add_entry(self, row: int, col: int, value) -> None:
        if row < 0 or col < 0:
            return
        position = self._cursor
        self._cursor += 1
        self._parent._design_entry(position, self._index, row, col, value)

    def add_rhs(self, row: int, value) -> None:
        if row < 0:
            return
        self._parent.rhs[self._index, row] += value


class SparseBatchStamper(_StampOps):
    """``B`` topology-identical sparse systems sharing one symbolic pattern.

    Vectorized stamps append one triplet carrying a ``(B,)`` value vector;
    the CSR pattern (lexsort + duplicate-run reduction) is computed once and
    shared across the batch, and each design's numeric factorisation runs on
    its own value column -- bit-identical to :class:`SparseStamper` on the
    same design, which uses the same machinery on 1-D values.

    Because Newton iterations (and transient steps) restamp the *same*
    device sequence with new values, the stamper locks its triplet pattern
    on the first :meth:`reset` after a completed assembly: the (row, col)
    position arrays freeze, the value store becomes one ``(n_triplets, B)``
    array that is zeroed instead of rebuilt, and the symbolic analysis
    (lexsort order, duplicate runs, CSR arrays, CSR->CSC conversion
    mapping) is computed once and reused by every later solve.  A stamp
    sequence that diverges from the locked pattern raises ``ValueError`` --
    topology-identical circuits never do.

    ``shared_symbolic=True`` additionally reuses design 0's SuperLU column
    permutation (COLAMD) for designs ``1..B-1`` by pre-permuting their
    columns and factorising with ``permc_spec="NATURAL"``.  SuperLU
    post-processes COLAMD with an elimination-tree postorder, so the reused
    permutation is the same ordering *family* but not the same
    factorisation path: results agree to ~1 ulp with the per-design default
    rather than bit-for-bit.  It is therefore opt-in and excluded from the
    bit-identity contract.
    """

    def __init__(self, batch_size: int, n_nodes: int, n_branches: int,
                 shared_symbolic: bool = False):
        _require_scipy()
        self.batch_size = int(batch_size)
        self.n_nodes = int(n_nodes)
        self.n_branches = int(n_branches)
        self.shared_symbolic = bool(shared_symbolic)
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.data: list[np.ndarray] = []
        self.rhs = np.zeros((self.batch_size, self.size))
        self._diagonal = np.arange(self.n_nodes)
        self._locked = False
        self._cursor = 0
        self._rows_arr: np.ndarray | None = None
        self._cols_arr: np.ndarray | None = None
        self._values: np.ndarray | None = None
        self._pattern_cache = None
        self._reduced_cache = None
        self._shared_cache = None
        #: Restamps served by the locked pattern (telemetry; the symbolic
        #: analysis and triplet buffers were reused instead of rebuilt).
        self.pattern_reuse_hits = 0

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    @property
    def pattern_locked(self) -> bool:
        """Whether the triplet pattern is frozen for buffer-reusing restamps."""
        return self._locked

    def reset(self) -> None:
        """Prepare for a restamp; locks the pattern after the first assembly."""
        if not self._locked and self._cursor > 0:
            self._rows_arr = np.asarray(self.rows, dtype=np.intp)
            self._cols_arr = np.asarray(self.cols, dtype=np.intp)
            self._values = np.array(self.data)  # (n_triplets, B)
            self.rows.clear()
            self.cols.clear()
            self.data.clear()
            self._locked = True
        if self._locked:
            self._values[...] = 0.0
            self.pattern_reuse_hits += 1
        self.rhs[...] = 0
        self._cursor = 0
        self._reduced_cache = None

    def _divergence(self, position: int, row: int, col: int) -> ValueError:
        if position >= self._rows_arr.size:
            return ValueError(
                "sparse batch stamps diverged from the locked pattern: "
                f"entry ({row}, {col}) lands past the {self._rows_arr.size} "
                "triplets of the first assembly; batched restamps require a "
                "value-independent stamping sequence")
        return ValueError(
            "sparse batch stamps diverged from the locked pattern: "
            f"entry ({row}, {col}) at position {position} where the first "
            f"assembly wrote ({int(self._rows_arr[position])}, "
            f"{int(self._cols_arr[position])}); batched restamps require a "
            "value-independent stamping sequence")

    # ------------------------------------------------------------------ #
    # element stamps                                                      #
    # ------------------------------------------------------------------ #
    def add_entry(self, row: int, col: int, values) -> None:
        if row < 0 or col < 0:
            return
        if self._locked:
            position = self._cursor
            if (position >= self._rows_arr.size
                    or self._rows_arr[position] != row
                    or self._cols_arr[position] != col):
                raise self._divergence(position, row, col)
            self._values[position] = values
            self._cursor = position + 1
            return
        self.rows.append(row)
        self.cols.append(col)
        column = np.empty(self.batch_size)
        column[:] = values
        self.data.append(column)
        self._cursor += 1

    def add_rhs(self, row: int, values) -> None:
        if row < 0:
            return
        self.rhs[:, row] += values

    def add_gmin(self, gmin: float) -> None:
        if self._locked:
            position = self._cursor
            end = position + self.n_nodes
            if (end > self._rows_arr.size
                    or not np.array_equal(self._rows_arr[position:end],
                                          self._diagonal)
                    or not np.array_equal(self._cols_arr[position:end],
                                          self._diagonal)):
                raise self._divergence(position, 0, 0)
            self._values[position:end] = gmin
            self._cursor = end
            return
        nodes = range(self.n_nodes)
        self.rows.extend(nodes)
        self.cols.extend(nodes)
        self.data.extend(np.full(self.batch_size, gmin)
                         for _ in range(self.n_nodes))
        self._cursor += self.n_nodes

    def _design_entry(self, position: int, index: int, row: int, col: int,
                      value) -> None:
        """One design's entry at a triplet ``position`` (fallback views)."""
        if self._locked:
            if (position >= self._rows_arr.size
                    or self._rows_arr[position] != row
                    or self._cols_arr[position] != col):
                raise self._divergence(position, row, col)
            self._values[position, index] += value
            return
        if index == 0:
            self.rows.append(row)
            self.cols.append(col)
            self.data.append(np.zeros(self.batch_size))
        elif self.rows[position] != row or self.cols[position] != col:
            raise ValueError(
                "per-design fallback stamps diverged across the batch: "
                f"design {index} wrote ({row}, {col}) where design 0 "
                f"wrote ({self.rows[position]}, {self.cols[position]}); "
                "batched assembly requires topology-identical circuits")
        self.data[position][index] += value

    # ------------------------------------------------------------------ #
    # per-design fallback                                                 #
    # ------------------------------------------------------------------ #
    def stamp_device_serial(self, siblings, voltages: np.ndarray,
                            temperatures: np.ndarray) -> None:
        """Per-design fallback for devices without a vectorized DC stamp."""
        base = self._cursor
        count = None
        for b, device in enumerate(siblings):
            view = _SparseDesignView(self, b, base)
            device.stamp_dc(view, voltages[b], float(temperatures[b]))
            written = view._cursor - base
            if count is None:
                count = written
            elif written != count:
                raise ValueError(
                    f"device {device.name!r} stamped {written} entries for "
                    f"design {b} but {count} for design 0; batched assembly "
                    "requires topology-identical circuits")
        self._cursor = base + (count or 0)

    def stamp_device_transient_serial(self, siblings, voltages: np.ndarray,
                                      states, dts: np.ndarray,
                                      temperatures: np.ndarray) -> None:
        """Per-design fallback for devices without a vectorized transient stamp."""
        base = self._cursor
        count = None
        for b, device in enumerate(siblings):
            view = _SparseDesignView(self, b, base)
            device.stamp_transient(view, voltages[b], states[b],
                                   float(dts[b]), float(temperatures[b]))
            written = view._cursor - base
            if count is None:
                count = written
            elif written != count:
                raise ValueError(
                    f"device {device.name!r} stamped {written} entries for "
                    f"design {b} but {count} for design 0; batched assembly "
                    "requires topology-identical circuits")
        self._cursor = base + (count or 0)

    # ------------------------------------------------------------------ #
    # solving                                                             #
    # ------------------------------------------------------------------ #
    def _pattern(self):
        """Shared symbolic analysis: CSR pattern + CSR->CSC value mapping.

        Computed once per locked pattern (or per assembly while unlocked)
        and reused by every design and every Newton iteration.  The CSC
        arrays come from an actual ``tocsc()`` call on an index-carrying
        matrix, so feeding ``values[csc_perm]`` into ``csc_matrix`` is
        bit-identical to converting each design's CSR matrix on the fly.
        """
        if self._pattern_cache is None:
            if self._locked:
                rows, cols = self._rows_arr, self._cols_arr
            else:
                rows = np.asarray(self.rows, dtype=np.intp)
                cols = np.asarray(self.cols, dtype=np.intp)
            order, starts, indices, indptr = _csr_pattern(rows, cols,
                                                          self.size)
            nnz = indices.size
            if nnz:
                mapping = _csr_matrix(
                    (np.arange(1, nnz + 1, dtype=np.int64), indices, indptr),
                    shape=(self.size, self.size)).tocsc()
                csc_perm = (mapping.data - 1).astype(np.intp)
                csc_indices = mapping.indices
                csc_indptr = mapping.indptr
            else:
                csc_perm = np.empty(0, dtype=np.intp)
                csc_indices = np.empty(0, dtype=np.int32)
                csc_indptr = np.zeros(self.size + 1, dtype=np.int32)
            self._pattern_cache = (order, starts, indices, indptr,
                                   csc_perm, csc_indices, csc_indptr)
        return self._pattern_cache

    def _csr(self):
        if self._reduced_cache is None:
            order, starts, indices, indptr, *_ = self._pattern()
            if self._locked:
                if self._cursor != self._rows_arr.size:
                    raise ValueError(
                        "sparse batch assembly is incomplete: "
                        f"{self._cursor} of {self._rows_arr.size} locked "
                        "triplets were restamped before solving")
                stacked = self._values
            else:
                stacked = np.asarray(self.data)  # (n_triplets, B)
            if starts.size:
                values = np.add.reduceat(stacked[order], starts, axis=0)
            else:
                values = np.empty((0, self.batch_size))
            self._reduced_cache = (values, indices, indptr)
        return self._reduced_cache

    def _solve_one(self, values_column: np.ndarray,
                   rhs_row: np.ndarray) -> np.ndarray:
        """Default SuperLU solve of one design through the cached CSC map."""
        *_, csc_perm, csc_indices, csc_indptr = self._pattern()
        matrix = _csc_matrix((values_column[csc_perm], csc_indices,
                              csc_indptr), shape=(self.size, self.size))
        try:
            return _splu(matrix).solve(rhs_row)
        except RuntimeError as exc:  # "Factor is exactly singular"
            raise np.linalg.LinAlgError(str(exc)) from exc

    def _shared_pattern(self, perm_c: np.ndarray):
        """Column-permuted CSC pattern for the shared-symbolic mode."""
        if self._shared_cache is None:
            *_, csc_perm, csc_indices, csc_indptr = self._pattern()
            perm_c = np.asarray(perm_c, dtype=np.intp)
            counts = csc_indptr[1:] - csc_indptr[:-1]
            indptr_p = np.zeros_like(csc_indptr)
            np.cumsum(counts[perm_c], out=indptr_p[1:])
            if csc_indices.size:
                take = np.concatenate(
                    [np.arange(csc_indptr[c], csc_indptr[c + 1])
                     for c in perm_c])
            else:
                take = np.empty(0, dtype=np.intp)
            self._shared_cache = (perm_c, csc_perm[take], csc_indices[take],
                                  indptr_p)
        return self._shared_cache

    def _solve_shared(self, values: np.ndarray, out: np.ndarray) -> np.ndarray:
        """Shared-symbolic solves: design 0's COLAMD ordering for everyone."""
        *_, csc_perm, csc_indices, csc_indptr = self._pattern()
        matrix0 = _csc_matrix((values[:, 0][csc_perm], csc_indices,
                               csc_indptr), shape=(self.size, self.size))
        try:
            factor0 = _splu(matrix0)
        except RuntimeError as exc:
            raise np.linalg.LinAlgError(str(exc)) from exc
        out[0] = factor0.solve(self.rhs[0])
        perm_c, perm_values, indices_p, indptr_p = \
            self._shared_pattern(factor0.perm_c)
        for b in range(1, self.batch_size):
            matrix = _csc_matrix((values[:, b][perm_values], indices_p,
                                  indptr_p), shape=(self.size, self.size))
            try:
                factor = _splu(matrix, permc_spec="NATURAL")
                solution = factor.solve(self.rhs[b])
            except RuntimeError as exc:
                raise np.linalg.LinAlgError(str(exc)) from exc
            out[b][perm_c] = solution
        return out

    def solve(self) -> np.ndarray:
        """Factorise and solve every design; ``(B, size)``.

        Raises :class:`numpy.linalg.LinAlgError` as soon as one design's
        factor is singular -- the caller then retries per design with its
        least-squares fallback, like the dense path.
        """
        values, _, _ = self._csr()
        out = np.empty((self.batch_size, self.size))
        if self.shared_symbolic and self.batch_size > 1 and self.size:
            return self._solve_shared(values, out)
        for b in range(self.batch_size):
            out[b] = self._solve_one(values[:, b], self.rhs[b])
        return out

    def solve_design(self, index: int) -> np.ndarray:
        values, _, _ = self._csr()
        return self._solve_one(values[:, index], self.rhs[index])

    def solve_lstsq_design(self, index: int) -> np.ndarray:
        values, indices, indptr = self._csr()
        return _sparse_lstsq(values[:, index], indices, indptr, self.size,
                             self.rhs[index])
