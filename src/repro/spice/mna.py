"""Modified-nodal-analysis system assembly.

The MNA unknown vector is ``[node voltages (excluding ground), branch
currents]``.  Devices stamp conductances between node pairs, current
injections into nodes and branch equations through a :class:`Stamper`, which
transparently ignores the ground node (index ``-1``).
"""

from __future__ import annotations

import numpy as np


class Stamper:
    """Accumulates device stamps into the MNA matrix and right-hand side."""

    def __init__(self, n_nodes: int, n_branches: int, dtype=float):
        size = n_nodes + n_branches
        self.n_nodes = int(n_nodes)
        self.n_branches = int(n_branches)
        self.matrix = np.zeros((size, size), dtype=dtype)
        self.rhs = np.zeros(size, dtype=dtype)

    @property
    def size(self) -> int:
        return self.n_nodes + self.n_branches

    # ------------------------------------------------------------------ #
    # element stamps                                                      #
    # ------------------------------------------------------------------ #
    def add_entry(self, row: int, col: int, value) -> None:
        """Add ``value`` at (row, col); either index may be ground (-1)."""
        if row < 0 or col < 0:
            return
        self.matrix[row, col] += value

    def add_rhs(self, row: int, value) -> None:
        if row < 0:
            return
        self.rhs[row] += value

    def add_conductance(self, node_a: int, node_b: int, conductance) -> None:
        """Stamp a conductance between two nodes (standard 2x2 pattern)."""
        self.add_entry(node_a, node_a, conductance)
        self.add_entry(node_b, node_b, conductance)
        self.add_entry(node_a, node_b, -conductance)
        self.add_entry(node_b, node_a, -conductance)

    def add_current(self, node_from: int, node_to: int, current) -> None:
        """Stamp a current flowing from ``node_from`` to ``node_to``.

        Conventionally a current source pushing current into ``node_to``
        appears as ``+I`` on ``node_to`` and ``-I`` on ``node_from`` in the
        right-hand side.
        """
        self.add_rhs(node_from, -current)
        self.add_rhs(node_to, current)

    def add_transconductance(self, out_pos: int, out_neg: int,
                             ctrl_pos: int, ctrl_neg: int, gm) -> None:
        """Stamp a VCCS: current ``gm * (v_ctrl_pos - v_ctrl_neg)`` from out_pos to out_neg."""
        self.add_entry(out_pos, ctrl_pos, gm)
        self.add_entry(out_pos, ctrl_neg, -gm)
        self.add_entry(out_neg, ctrl_pos, -gm)
        self.add_entry(out_neg, ctrl_neg, gm)

    def add_gmin(self, gmin: float) -> None:
        """Add a small conductance from every node to ground (convergence aid)."""
        for node in range(self.n_nodes):
            self.matrix[node, node] += gmin

    # ------------------------------------------------------------------ #
    # solving                                                             #
    # ------------------------------------------------------------------ #
    def solve(self) -> np.ndarray:
        """Solve the assembled linear system."""
        return np.linalg.solve(self.matrix, self.rhs)

    def solve_lstsq(self) -> np.ndarray:
        """Least-squares fallback for singular systems (floating nodes)."""
        solution, *_ = np.linalg.lstsq(self.matrix, self.rhs, rcond=None)
        return solution
