"""AC small-signal analysis and transfer-function measurements."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.dc import OperatingPoint
from repro.spice.netlist import Circuit


@dataclass
class ACResult:
    """Frequency response of one (or more) observed nodes.

    Attributes
    ----------
    frequencies:
        Analysis frequencies in hertz.
    node_voltages:
        Mapping node name -> complex response array (same length as
        ``frequencies``).
    """

    frequencies: np.ndarray
    node_voltages: dict[str, np.ndarray]

    # ------------------------------------------------------------------ #
    # accessors                                                           #
    # ------------------------------------------------------------------ #
    def response(self, node: str) -> np.ndarray:
        return self.node_voltages[node]

    def magnitude_db(self, node: str) -> np.ndarray:
        return 20.0 * np.log10(np.maximum(np.abs(self.response(node)), 1e-30))

    def phase_degrees(self, node: str, unwrap: bool = True) -> np.ndarray:
        phase = np.angle(self.response(node))
        if unwrap:
            phase = np.unwrap(phase)
        return np.degrees(phase)

    # ------------------------------------------------------------------ #
    # measurements                                                        #
    # ------------------------------------------------------------------ #
    def dc_gain_db(self, node: str) -> float:
        """Gain at the lowest analysed frequency."""
        return float(self.magnitude_db(node)[0])

    def unity_gain_frequency(self, node: str) -> float:
        """First frequency where the magnitude crosses 0 dB (GBW proxy).

        Returns 0 when the response never reaches 0 dB (no unity-gain
        crossing means the amplifier is essentially dead).
        """
        magnitude = self.magnitude_db(node)
        if magnitude[0] <= 0.0:
            return 0.0
        below = np.nonzero(magnitude <= 0.0)[0]
        if below.size == 0:
            return float(self.frequencies[-1])
        index = below[0]
        # Log-linear interpolation between the straddling points.
        f_low, f_high = self.frequencies[index - 1], self.frequencies[index]
        m_low, m_high = magnitude[index - 1], magnitude[index]
        if m_low == m_high:
            return float(f_high)
        fraction = m_low / (m_low - m_high)
        return float(np.exp(np.log(f_low) + fraction * (np.log(f_high) - np.log(f_low))))

    def phase_margin_degrees(self, node: str) -> float:
        """Phase margin at the unity-gain frequency (0 when there is no crossing)."""
        unity = self.unity_gain_frequency(node)
        if unity <= 0.0:
            return 0.0
        phase = self.phase_degrees(node)
        # Normalise so the low-frequency phase reference is 0 (or 180 for
        # inverting responses) before measuring distance to -180 degrees.
        reference = phase[0]
        relative = phase - reference
        interpolated = np.interp(np.log(unity), np.log(self.frequencies), relative)
        margin = 180.0 + interpolated
        return float(np.clip(margin, -180.0, 360.0))

    def gain_at(self, node: str, frequency: float) -> float:
        """Interpolated magnitude (dB) at an arbitrary frequency."""
        magnitude = self.magnitude_db(node)
        return float(np.interp(np.log(frequency), np.log(self.frequencies), magnitude))

    def bandwidth_3db(self, node: str) -> float:
        """-3 dB bandwidth relative to the low-frequency gain."""
        magnitude = self.magnitude_db(node)
        target = magnitude[0] - 3.0
        below = np.nonzero(magnitude <= target)[0]
        if below.size == 0:
            return float(self.frequencies[-1])
        index = below[0]
        if index == 0:
            return float(self.frequencies[0])
        f_low, f_high = self.frequencies[index - 1], self.frequencies[index]
        m_low, m_high = magnitude[index - 1], magnitude[index]
        fraction = (m_low - target) / (m_low - m_high)
        return float(np.exp(np.log(f_low) + fraction * (np.log(f_high) - np.log(f_low))))


def logspace_frequencies(start: float = 1.0, stop: float = 1e9,
                         points_per_decade: int = 20) -> np.ndarray:
    """Logarithmically spaced analysis frequencies."""
    decades = np.log10(stop) - np.log10(start)
    count = max(int(decades * points_per_decade) + 1, 2)
    return np.logspace(np.log10(start), np.log10(stop), count)


def ac_analysis(circuit: Circuit, operating_point: OperatingPoint,
                frequencies: np.ndarray | None = None,
                observe: list[str] | None = None) -> ACResult:
    """Complex small-signal sweep of ``circuit`` around ``operating_point``.

    Parameters
    ----------
    frequencies:
        Frequencies in hertz; defaults to 1 Hz .. 1 GHz, 20 points/decade.
    observe:
        Node names to record; defaults to every non-ground node.
    """
    if frequencies is None:
        frequencies = logspace_frequencies()
    frequencies = np.asarray(frequencies, dtype=float)
    circuit.ensure_indices()
    observed = observe if observe is not None else circuit.nodes
    responses = {node: np.empty(frequencies.shape[0], dtype=complex) for node in observed}

    for index, frequency in enumerate(frequencies):
        omega = 2.0 * np.pi * frequency
        stamper = circuit.stamp_ac(omega, operating_point)
        # A tiny conductance to ground keeps otherwise-floating nodes solvable.
        stamper.add_gmin(1e-15)
        try:
            solution = stamper.solve()
        except np.linalg.LinAlgError:
            solution = stamper.solve_lstsq()
        for node in observed:
            responses[node][index] = circuit.node_voltage(solution, node)
    return ACResult(frequencies=frequencies, node_voltages=responses)
