"""AC small-signal analysis and transfer-function measurements."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.dc import OperatingPoint
from repro.spice.netlist import Circuit


@dataclass
class ACResult:
    """Frequency response of one (or more) observed nodes.

    Attributes
    ----------
    frequencies:
        Analysis frequencies in hertz.
    node_voltages:
        Mapping node name -> complex response array (same length as
        ``frequencies``).
    """

    frequencies: np.ndarray
    node_voltages: dict[str, np.ndarray]

    # ------------------------------------------------------------------ #
    # accessors                                                           #
    # ------------------------------------------------------------------ #
    def response(self, node: str) -> np.ndarray:
        return self.node_voltages[node]

    def magnitude_db(self, node: str) -> np.ndarray:
        return 20.0 * np.log10(np.maximum(np.abs(self.response(node)), 1e-30))

    def phase_degrees(self, node: str, unwrap: bool = True) -> np.ndarray:
        phase = np.angle(self.response(node))
        if unwrap:
            phase = np.unwrap(phase)
        return np.degrees(phase)

    # ------------------------------------------------------------------ #
    # measurements                                                        #
    # ------------------------------------------------------------------ #
    def dc_gain_db(self, node: str) -> float:
        """Gain at the lowest analysed frequency."""
        return float(self.magnitude_db(node)[0])

    def unity_gain_frequency(self, node: str) -> float:
        """First frequency where the magnitude crosses 0 dB (GBW proxy).

        The two no-crossing cases resolve differently:

        * starting *at or below* 0 dB returns 0 -- the amplifier is
          essentially dead, so a GBW constraint should fail outright;
        * staying *above* 0 dB through the whole sweep clamps to the last
          analysed frequency -- the true crossing lies beyond the sweep, so
          the clamp is a conservative lower bound on the real GBW.
        """
        magnitude = self.magnitude_db(node)
        if magnitude[0] <= 0.0:
            return 0.0
        below = np.nonzero(magnitude <= 0.0)[0]
        if below.size == 0:
            return float(self.frequencies[-1])
        index = below[0]
        # Log-linear interpolation between the straddling points.
        f_low, f_high = self.frequencies[index - 1], self.frequencies[index]
        m_low, m_high = magnitude[index - 1], magnitude[index]
        if m_low == m_high:
            return float(f_high)
        fraction = m_low / (m_low - m_high)
        return float(np.exp(np.log(f_low) + fraction * (np.log(f_high) - np.log(f_low))))

    def phase_margin_degrees(self, node: str) -> float:
        """Phase margin at the unity-gain frequency (0 when there is no crossing)."""
        unity = self.unity_gain_frequency(node)
        if unity <= 0.0:
            return 0.0
        phase = self.phase_degrees(node)
        # Normalise so the low-frequency phase reference is 0 (or 180 for
        # inverting responses) before measuring distance to -180 degrees.
        reference = phase[0]
        relative = phase - reference
        interpolated = np.interp(np.log(unity), np.log(self.frequencies), relative)
        margin = 180.0 + interpolated
        return float(np.clip(margin, -180.0, 360.0))

    def gain_margin_db(self, node: str) -> float:
        """Gain margin of a loop-gain response: ``-|T|`` dB at -180 degrees.

        The phase is referenced to its low-frequency value (like
        :meth:`phase_margin_degrees`) and the first crossing of -180 degrees
        is located by log-frequency interpolation.  A response whose phase
        never reaches -180 within the sweep reports the margin at the last
        analysed frequency -- a conservative lower bound, mirroring
        :meth:`unity_gain_frequency`'s clamp.
        """
        phase = self.phase_degrees(node)
        relative = phase - phase[0]
        below = np.nonzero(relative <= -180.0)[0]
        magnitude = self.magnitude_db(node)
        if below.size == 0:
            return float(-magnitude[-1])
        index = below[0]
        if index == 0:
            return float(-magnitude[0])
        p_low, p_high = relative[index - 1], relative[index]
        fraction = (p_low + 180.0) / (p_low - p_high)
        log_f = (np.log(self.frequencies[index - 1])
                 + fraction * (np.log(self.frequencies[index])
                               - np.log(self.frequencies[index - 1])))
        crossing = float(np.exp(log_f))
        return float(-self.gain_at(node, crossing))

    def gain_at(self, node: str, frequency: float) -> float:
        """Interpolated magnitude (dB) at an arbitrary frequency."""
        magnitude = self.magnitude_db(node)
        return float(np.interp(np.log(frequency), np.log(self.frequencies), magnitude))

    def bandwidth_3db(self, node: str) -> float:
        """-3 dB bandwidth relative to the low-frequency gain."""
        magnitude = self.magnitude_db(node)
        target = magnitude[0] - 3.0
        below = np.nonzero(magnitude <= target)[0]
        if below.size == 0:
            return float(self.frequencies[-1])
        index = below[0]
        if index == 0:
            return float(self.frequencies[0])
        f_low, f_high = self.frequencies[index - 1], self.frequencies[index]
        m_low, m_high = magnitude[index - 1], magnitude[index]
        fraction = (m_low - target) / (m_low - m_high)
        return float(np.exp(np.log(f_low) + fraction * (np.log(f_high) - np.log(f_low))))


def logspace_frequencies(start: float = 1.0, stop: float = 1e9,
                         points_per_decade: int = 20) -> np.ndarray:
    """Logarithmically spaced analysis frequencies."""
    decades = np.log10(stop) - np.log10(start)
    count = max(int(decades * points_per_decade) + 1, 2)
    return np.logspace(np.log10(start), np.log10(stop), count)


#: Tiny conductance to ground keeping otherwise-floating nodes solvable.
_AC_GMIN = 1e-15


def ac_analysis(circuit: Circuit, operating_point: OperatingPoint,
                frequencies: np.ndarray | None = None,
                observe: list[str] | None = None,
                method: str = "auto") -> ACResult:
    """Complex small-signal sweep of ``circuit`` around ``operating_point``.

    Parameters
    ----------
    frequencies:
        Frequencies in hertz; defaults to 1 Hz .. 1 GHz, 20 points/decade.
    observe:
        Node names to record; defaults to every non-ground node.
    method:
        ``"auto"`` (default) uses the vectorized path whenever every device
        declares affine AC stamps, falling back to the per-frequency loop
        when a device is non-affine or a frequency point is singular;
        ``"vectorized"`` forces the stacked solve (raising ``ValueError``
        for declared non-affine devices and propagating ``LinAlgError`` on
        singular systems or stamps that fail the affinity probe, instead of
        silently switching paths); ``"per_frequency"`` forces the simple
        reference loop.

    Notes
    -----
    The vectorized path exploits the fact that every built-in device stamp is
    affine in the angular frequency, ``A(omega) = G + omega * S`` with
    ``S = 1j * C``, and the excitation vector is frequency-independent.  The
    system is therefore assembled exactly twice (at ``omega = 0`` and
    ``omega = 1``) and all frequency points are solved as one stacked
    ``(F, N, N)`` :func:`numpy.linalg.solve` call, which removes the Python
    stamping loop and lets LAPACK batch the factorizations.
    """
    if method not in ("auto", "vectorized", "per_frequency"):
        raise ValueError(f"unknown AC method {method!r}")
    if frequencies is None:
        frequencies = logspace_frequencies()
    frequencies = np.asarray(frequencies, dtype=float)
    circuit.ensure_indices()
    observed = list(observe) if observe is not None else circuit.nodes

    affine = all(device.ac_affine for device in circuit.devices)
    if method == "vectorized":
        if not affine:
            non_affine = [d.name for d in circuit.devices if not d.ac_affine]
            raise ValueError("method='vectorized' requires affine AC stamps; "
                             f"non-affine devices: {non_affine}")
        return _ac_analysis_vectorized(circuit, operating_point,
                                       frequencies, observed)
    if method == "auto" and affine:
        try:
            return _ac_analysis_vectorized(circuit, operating_point,
                                           frequencies, observed)
        except np.linalg.LinAlgError:
            # One or more frequency points are singular; the reference loop
            # below handles those individually via least squares.
            pass
    return _ac_analysis_per_frequency(circuit, operating_point,
                                      frequencies, observed)


def _ac_analysis_vectorized(circuit: Circuit, operating_point: OperatingPoint,
                            frequencies: np.ndarray,
                            observed: list[str]) -> ACResult:
    """Solve all frequency points with one stacked ``numpy.linalg.solve``."""
    base = circuit.stamp_ac(0.0, operating_point)
    unit = circuit.stamp_ac(1.0, operating_point)
    if not np.array_equal(base.rhs, unit.rhs):
        raise np.linalg.LinAlgError("AC excitation is frequency-dependent")
    # A(omega) = G + omega * S  with  G = A(0)  and  S = A(1) - A(0).
    slope = unit.matrix - base.matrix
    # Affinity is declared by devices but verified here against a third
    # sample: a device whose stamps are secretly non-affine in omega (despite
    # ac_affine=True) must not silently get extrapolated wrong answers.
    # omega=2 is a power of two, so for truly affine stamps the comparison is
    # exact up to accumulation noise.
    probe = circuit.stamp_ac(2.0, operating_point)
    expected = base.matrix + 2.0 * slope
    if not (np.allclose(probe.matrix, expected, rtol=1e-8, atol=1e-30)
            and np.array_equal(probe.rhs, base.rhs)):
        raise np.linalg.LinAlgError("AC stamps are not affine in omega")
    omegas = 2.0 * np.pi * frequencies
    systems = base.matrix[None, :, :] + omegas[:, None, None] * slope[None, :, :]
    diagonal = np.arange(circuit.n_nodes)
    systems[:, diagonal, diagonal] += _AC_GMIN
    # Shape the right-hand side as a (1, N, 1) matrix stack so the solve
    # broadcasts unambiguously across the frequency axis.
    solutions = np.linalg.solve(systems, base.rhs[None, :, None])[..., 0]
    responses: dict[str, np.ndarray] = {}
    for node in observed:
        index = circuit.node_index(node)
        if index < 0:
            responses[node] = np.zeros(frequencies.shape[0], dtype=complex)
        else:
            responses[node] = solutions[:, index].copy()
    return ACResult(frequencies=frequencies, node_voltages=responses)


#: Memory budget (bytes) for one stacked ``(b, F, N, N)`` complex tensor in
#: the batched AC path; larger batches are solved in chunks.
_AC_BATCH_BYTES = 3.2e8


def ac_analysis_batch(circuits, operating_points,
                      frequencies: np.ndarray | None = None,
                      observe: list[str] | None = None,
                      method: str = "auto") -> list[ACResult]:
    """AC sweeps of ``B`` topology-identical circuits as stacked solves.

    Extends the vectorized affine path to a ``(B, F, N, N)`` tensor: each
    design's ``G``/``S`` matrices are assembled (and affinity-probed) exactly
    as in :func:`ac_analysis`, the stack is solved in one LAPACK call (in
    memory-bounded chunks along the design axis), and each design's slice is
    bit-identical to its serial solve.  Designs that fail the affinity probe
    or hit a singular frequency point fall back to serial
    :func:`ac_analysis` individually; ``method="vectorized"`` /
    ``"per_frequency"`` simply loop the serial path per design.
    """
    circuits = list(circuits)
    operating_points = list(operating_points)
    if len(circuits) != len(operating_points):
        raise ValueError("need one operating point per circuit")
    if not circuits:
        return []
    if method not in ("auto", "vectorized", "per_frequency"):
        raise ValueError(f"unknown AC method {method!r}")
    if frequencies is None:
        frequencies = logspace_frequencies()
    frequencies = np.asarray(frequencies, dtype=float)
    if method != "auto":
        return [ac_analysis(circuit, op, frequencies, observe, method)
                for circuit, op in zip(circuits, operating_points)]

    results: list[ACResult | None] = [None] * len(circuits)
    serial_designs: list[int] = []
    prepared: list[tuple[int, np.ndarray, np.ndarray, np.ndarray]] = []
    for b, (circuit, op) in enumerate(zip(circuits, operating_points)):
        circuit.ensure_indices()
        if not all(device.ac_affine for device in circuit.devices):
            serial_designs.append(b)
            continue
        base = circuit.stamp_ac(0.0, op)
        unit = circuit.stamp_ac(1.0, op)
        if not np.array_equal(base.rhs, unit.rhs):
            serial_designs.append(b)
            continue
        slope = unit.matrix - base.matrix
        probe = circuit.stamp_ac(2.0, op)
        expected = base.matrix + 2.0 * slope
        if not (np.allclose(probe.matrix, expected, rtol=1e-8, atol=1e-30)
                and np.array_equal(probe.rhs, base.rhs)):
            serial_designs.append(b)
            continue
        prepared.append((b, base.matrix, slope, base.rhs))

    first = circuits[0]
    observed = list(observe) if observe is not None else first.nodes
    omegas = 2.0 * np.pi * frequencies
    size = first.n_nodes + first.n_branches
    diagonal = np.arange(first.n_nodes)
    bytes_per_design = max(frequencies.shape[0] * size * size * 16, 1)
    chunk = max(1, int(_AC_BATCH_BYTES // bytes_per_design))
    for offset in range(0, len(prepared), chunk):
        group = prepared[offset:offset + chunk]
        bases = np.stack([entry[1] for entry in group])
        slopes = np.stack([entry[2] for entry in group])
        rhs = np.stack([entry[3] for entry in group])
        systems = (bases[:, None, :, :]
                   + omegas[None, :, None, None] * slopes[:, None, :, :])
        systems[:, :, diagonal, diagonal] += _AC_GMIN
        stacked_rhs = np.broadcast_to(
            rhs[:, None, :, None],
            (len(group), frequencies.shape[0], size, 1))
        try:
            solutions = np.linalg.solve(systems, stacked_rhs)[..., 0]
        except np.linalg.LinAlgError:
            # At least one design has a singular frequency point; let the
            # serial driver sort each of them out (it falls back to the
            # per-frequency least-squares loop design by design).
            serial_designs.extend(entry[0] for entry in group)
            continue
        for j, (b, *_rest) in enumerate(group):
            circuit = circuits[b]
            responses: dict[str, np.ndarray] = {}
            for node in observed:
                index = circuit.node_index(node)
                if index < 0:
                    responses[node] = np.zeros(frequencies.shape[0],
                                               dtype=complex)
                else:
                    responses[node] = solutions[j, :, index].copy()
            results[b] = ACResult(frequencies=frequencies,
                                  node_voltages=responses)
    for b in serial_designs:
        results[b] = ac_analysis(circuits[b], operating_points[b],
                                 frequencies, observe, method="auto")
    return results


def _ac_analysis_per_frequency(circuit: Circuit, operating_point: OperatingPoint,
                               frequencies: np.ndarray,
                               observed: list[str]) -> ACResult:
    """Reference implementation: assemble and solve one system per frequency."""
    responses = {node: np.empty(frequencies.shape[0], dtype=complex) for node in observed}
    for index, frequency in enumerate(frequencies):
        omega = 2.0 * np.pi * frequency
        stamper = circuit.stamp_ac(omega, operating_point)
        stamper.add_gmin(_AC_GMIN)
        try:
            solution = stamper.solve()
        except np.linalg.LinAlgError:
            solution = stamper.solve_lstsq()
        for node in observed:
            responses[node][index] = circuit.node_voltage(solution, node)
    return ACResult(frequencies=frequencies, node_voltages=responses)
