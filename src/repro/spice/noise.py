"""Small-signal noise analysis via one adjoint MNA solve per frequency.

Every device contributes independent noise current generators through the
:meth:`~repro.spice.devices.base.Device.noise_sources` contract (resistor
thermal ``4kT/R``, MOSFET channel thermal ``4kT*gamma*gm`` plus flicker
``KF*Ids^AF/(Cox*W*L*f)``, diode shot ``2q*Id``).  The naive way to sweep
them solves the linearised AC system once *per source*; the adjoint method
inverts the bookkeeping.  With ``A(omega) x = b`` the output voltage is
``v_out = e_out^T x``, so solving the single transposed system

    ``A(omega)^T y = e_out``

gives the transfer of *every* current injection at once: a unit current
between nodes ``a`` and ``b`` produces ``v_out = y[a] - y[b]``.  One solve
per frequency covers any number of noise sources -- and, as a free
by-product, the forward gain of the testbench's own AC excitation
(``gain = y . b``), which is what input-referred densities divide by.

Like :func:`repro.spice.ac.ac_analysis`, the sweep exploits the affine form
``A(omega) = G + omega * S`` of every built-in device stamp: the system is
assembled exactly twice (plus one affinity probe) and all frequency points
are solved as a single stacked ``(F, N, N)`` transposed
:func:`numpy.linalg.solve`.  A per-frequency reference loop backs the
vectorized path for singular points and benchmark comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.spice.ac import _AC_GMIN, logspace_frequencies
from repro.spice.dc import OperatingPoint
from repro.spice.devices.base import NoiseSource
from repro.spice.netlist import Circuit

# numpy >= 2 renames trapz; accept both without a dependency bump.
_trapezoid = getattr(np, "trapezoid", None) or np.trapz

#: Floor on |gain|^2 when referring output noise to the input, so a dead
#: forward path yields a huge-but-finite input-referred density instead of
#: divide-by-zero warnings.
_GAIN_SQ_FLOOR = 1e-60


@dataclass
class NoiseResult:
    """Noise spectra of one observed output node.

    Attributes
    ----------
    frequencies:
        Analysis frequencies in hertz.
    output:
        Observed output node name.
    output_psd:
        Total output voltage noise PSD (V^2/Hz), one value per frequency.
    gain:
        Complex forward transfer of the circuit's declared AC excitation to
        the output (``None`` when the circuit carries no AC excitation).
    input_psd:
        Input-referred PSD ``output_psd / |gain|^2`` (``None`` without an
        excitation to refer to).
    contributions:
        Per-device output PSD (V^2/Hz): each device's sources summed.
    source_transfers:
        Complex source-to-output transimpedance (V/A) per individual source,
        keyed ``"device:label"`` -- the adjoint solutions, exposed for
        direct-method cross-checks.
    source_psds:
        Output PSD (V^2/Hz) per individual source, same keys.
    """

    frequencies: np.ndarray
    output: str
    output_psd: np.ndarray
    gain: np.ndarray | None = None
    input_psd: np.ndarray | None = None
    contributions: dict[str, np.ndarray] = field(default_factory=dict)
    source_transfers: dict[str, np.ndarray] = field(default_factory=dict)
    source_psds: dict[str, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # spectral densities                                                  #
    # ------------------------------------------------------------------ #
    def output_density(self, frequency: float) -> float:
        """Output noise density (V/sqrt(Hz)) interpolated at ``frequency``."""
        return float(np.interp(np.log(frequency), np.log(self.frequencies),
                               np.sqrt(self.output_psd)))

    def input_density(self, frequency: float) -> float:
        """Input-referred noise density (V/sqrt(Hz)) at ``frequency``."""
        if self.input_psd is None:
            raise ValueError(
                f"no AC excitation drives output {self.output!r}: "
                "input-referred noise is undefined")
        return float(np.interp(np.log(frequency), np.log(self.frequencies),
                               np.sqrt(self.input_psd)))

    # ------------------------------------------------------------------ #
    # integrated noise                                                    #
    # ------------------------------------------------------------------ #
    def _integrate(self, psd: np.ndarray, f_low: float | None,
                   f_high: float | None) -> float:
        mask = np.ones(self.frequencies.shape, dtype=bool)
        if f_low is not None:
            mask &= self.frequencies >= f_low
        if f_high is not None:
            mask &= self.frequencies <= f_high
        if mask.sum() < 2:
            raise ValueError(
                f"integration band [{f_low}, {f_high}] covers fewer than two "
                "analysis frequencies")
        return float(np.sqrt(_trapezoid(psd[mask], self.frequencies[mask])))

    def integrated_output_noise(self, f_low: float | None = None,
                                f_high: float | None = None) -> float:
        """Total rms output noise (V) over the analysed (or given) band."""
        return self._integrate(self.output_psd, f_low, f_high)

    def integrated_input_noise(self, f_low: float | None = None,
                               f_high: float | None = None) -> float:
        """Total rms input-referred noise (V) over the band."""
        if self.input_psd is None:
            raise ValueError(
                f"no AC excitation drives output {self.output!r}: "
                "input-referred noise is undefined")
        return self._integrate(self.input_psd, f_low, f_high)

    def contribution_fractions(self) -> dict[str, float]:
        """Each device's share of the integrated output noise power."""
        total = float(_trapezoid(self.output_psd, self.frequencies))
        if total <= 0.0:
            return {name: 0.0 for name in self.contributions}
        return {name: float(_trapezoid(psd, self.frequencies)) / total
                for name, psd in self.contributions.items()}


def _gather_sources(circuit: Circuit,
                    operating_point: OperatingPoint) -> list[NoiseSource]:
    sources: list[NoiseSource] = []
    for device in circuit.devices:
        sources.extend(device.noise_sources(operating_point))
    return sources


def noise_analysis(circuit: Circuit, operating_point: OperatingPoint,
                   frequencies: np.ndarray | None = None,
                   output: str = "out",
                   method: str = "auto") -> NoiseResult:
    """Output (and input-referred) noise spectrum of ``circuit`` at a bias.

    Parameters
    ----------
    frequencies:
        Frequencies in hertz, strictly positive (flicker noise diverges at
        DC); defaults to 1 Hz .. 1 GHz, 20 points/decade.
    output:
        Observed output node (must not be ground).
    method:
        ``"auto"`` (default) uses the stacked adjoint solve whenever every
        device declares affine AC stamps, falling back to the per-frequency
        loop otherwise or on singular points; ``"vectorized"`` forces the
        stacked path (raising on non-affine stamps); ``"per_frequency"``
        forces the reference loop.
    """
    if method not in ("auto", "vectorized", "per_frequency"):
        raise ValueError(f"unknown noise method {method!r}")
    if frequencies is None:
        frequencies = logspace_frequencies()
    frequencies = np.asarray(frequencies, dtype=float)
    if frequencies.size == 0 or np.any(frequencies <= 0.0):
        raise ValueError("noise analysis frequencies must be positive")
    circuit.ensure_indices()
    out_index = circuit.node_index(output)
    if out_index < 0:
        raise ValueError(f"cannot observe noise at ground node {output!r}")
    sources = _gather_sources(circuit, operating_point)

    affine = all(device.ac_affine for device in circuit.devices)
    with telemetry.span("spice.noise", circuit=circuit.title,
                        frequencies=int(frequencies.size)):
        if method == "vectorized":
            if not affine:
                non_affine = [d.name for d in circuit.devices
                              if not d.ac_affine]
                raise ValueError(
                    "method='vectorized' requires affine AC stamps; "
                    f"non-affine devices: {non_affine}")
            adjoints, rhs = _adjoint_vectorized(circuit, operating_point,
                                                frequencies, out_index)
        elif method == "auto" and affine:
            try:
                adjoints, rhs = _adjoint_vectorized(circuit, operating_point,
                                                    frequencies, out_index)
            except np.linalg.LinAlgError:
                adjoints, rhs = _adjoint_per_frequency(
                    circuit, operating_point, frequencies, out_index)
        else:
            adjoints, rhs = _adjoint_per_frequency(circuit, operating_point,
                                                   frequencies, out_index)
    telemetry.inc("repro_noise_analyses_total")
    telemetry.observe("repro_noise_sources", len(sources))
    return _assemble_result(frequencies, output, sources, adjoints, rhs)


def _adjoint_vectorized(circuit: Circuit, operating_point: OperatingPoint,
                        frequencies: np.ndarray, out_index: int,
                        ) -> tuple[np.ndarray, np.ndarray]:
    """All adjoint solutions as one stacked transposed solve.

    Returns the ``(F, size)`` adjoint matrix ``y`` (rows solve
    ``A(omega)^T y = e_out``) and the frequency-independent excitation
    vector ``b`` of the forward system.
    """
    base = circuit.stamp_ac(0.0, operating_point)
    unit = circuit.stamp_ac(1.0, operating_point)
    if not np.array_equal(base.rhs, unit.rhs):
        raise np.linalg.LinAlgError("AC excitation is frequency-dependent")
    slope = unit.matrix - base.matrix
    # Same third-sample affinity probe as the vectorized AC path: a device
    # lying about ac_affine must not silently produce extrapolated garbage.
    probe = circuit.stamp_ac(2.0, operating_point)
    expected = base.matrix + 2.0 * slope
    if not (np.allclose(probe.matrix, expected, rtol=1e-8, atol=1e-30)
            and np.array_equal(probe.rhs, base.rhs)):
        raise np.linalg.LinAlgError("AC stamps are not affine in omega")
    omegas = 2.0 * np.pi * frequencies
    systems = base.matrix[None, :, :] + omegas[:, None, None] * slope[None, :, :]
    diagonal = np.arange(circuit.n_nodes)
    systems[:, diagonal, diagonal] += _AC_GMIN
    selector = np.zeros((systems.shape[1], 1), dtype=complex)
    selector[out_index, 0] = 1.0
    # swapaxes makes a view: one stacked LAPACK call on A^T per frequency.
    adjoints = np.linalg.solve(systems.swapaxes(1, 2),
                               selector[None, :, :])[..., 0]
    return adjoints, base.rhs


def _adjoint_per_frequency(circuit: Circuit, operating_point: OperatingPoint,
                           frequencies: np.ndarray, out_index: int,
                           ) -> tuple[np.ndarray, np.ndarray]:
    """Reference loop: assemble and solve one transposed system per frequency."""
    size = None
    adjoints = None
    rhs = None
    diagonal = np.arange(circuit.n_nodes)
    for index, frequency in enumerate(frequencies):
        omega = 2.0 * np.pi * frequency
        stamper = circuit.stamp_ac(omega, operating_point)
        matrix = stamper.matrix
        matrix[diagonal, diagonal] += _AC_GMIN
        if adjoints is None:
            size = matrix.shape[0]
            adjoints = np.empty((frequencies.shape[0], size), dtype=complex)
            rhs = stamper.rhs.copy()
        selector = np.zeros(size, dtype=complex)
        selector[out_index] = 1.0
        try:
            adjoints[index] = np.linalg.solve(matrix.T, selector)
        except np.linalg.LinAlgError:
            adjoints[index] = np.linalg.lstsq(matrix.T, selector,
                                              rcond=None)[0]
    return adjoints, rhs


def _assemble_result(frequencies: np.ndarray, output: str,
                     sources: list[NoiseSource], adjoints: np.ndarray,
                     rhs: np.ndarray) -> NoiseResult:
    """Fold per-source PSDs through the adjoint transfers into spectra."""
    output_psd = np.zeros(frequencies.shape[0])
    contributions: dict[str, np.ndarray] = {}
    source_transfers: dict[str, np.ndarray] = {}
    source_psds: dict[str, np.ndarray] = {}
    for source in sources:
        v_a = adjoints[:, source.node_a] if source.node_a >= 0 else 0.0
        v_b = adjoints[:, source.node_b] if source.node_b >= 0 else 0.0
        transfer = v_a - v_b
        psd = np.abs(transfer)**2 * source.psd(frequencies)
        key = f"{source.device}:{source.label}"
        source_transfers[key] = np.asarray(transfer, dtype=complex)
        source_psds[key] = psd
        output_psd += psd
        if source.device in contributions:
            contributions[source.device] = contributions[source.device] + psd
        else:
            contributions[source.device] = psd

    gain = None
    input_psd = None
    if np.any(rhs != 0.0):
        # e_out^T A^-1 b == y . b: the forward gain of the circuit's own AC
        # excitation falls out of the adjoint solve with no extra work.
        gain = adjoints @ rhs
        input_psd = output_psd / np.maximum(np.abs(gain)**2, _GAIN_SQ_FLOOR)
    return NoiseResult(frequencies=frequencies, output=output,
                       output_psd=output_psd, gain=gain, input_psd=input_psd,
                       contributions=contributions,
                       source_transfers=source_transfers,
                       source_psds=source_psds)
