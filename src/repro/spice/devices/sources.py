"""Independent and controlled sources."""

from __future__ import annotations

import numpy as np

from repro.spice.devices.base import Device, TwoTerminal


class VoltageSource(TwoTerminal):
    """Independent voltage source (adds one branch-current unknown).

    ``dc`` is the operating-point value; ``ac`` is the small-signal amplitude
    used by AC analysis (1 V for transfer-function measurements, 0 to keep
    the source quiet).
    """

    n_branches = 1

    def __init__(self, name: str, positive: str, negative: str,
                 dc: float = 0.0, ac: float = 0.0):
        super().__init__(name, positive, negative)
        self.dc = float(dc)
        self.ac = float(ac)

    def _stamp_branch(self, stamper, value) -> None:
        branch = self.branch_indices[0]
        pos, neg = self.positive_index, self.negative_index
        stamper.add_entry(pos, branch, 1.0)
        stamper.add_entry(neg, branch, -1.0)
        stamper.add_entry(branch, pos, 1.0)
        stamper.add_entry(branch, neg, -1.0)
        stamper.add_rhs(branch, value)

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        self._stamp_branch(stamper, self.dc)

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        self._stamp_branch(stamper, self.ac)

    def branch_current(self, solution: np.ndarray) -> float:
        """Current through the source (positive into the + terminal)."""
        return float(np.real(solution[self.branch_indices[0]]))


class CurrentSource(TwoTerminal):
    """Independent current source pushing ``dc`` amps from + to - internally.

    With the SPICE convention, a positive value pulls current out of the
    positive node and pushes it into the negative node.
    """

    def __init__(self, name: str, positive: str, negative: str,
                 dc: float = 0.0, ac: float = 0.0):
        super().__init__(name, positive, negative)
        self.dc = float(dc)
        self.ac = float(ac)

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        stamper.add_current(self.positive_index, self.negative_index, self.dc)

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        stamper.add_current(self.positive_index, self.negative_index, self.ac)

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        return {"i": self.dc, "v": self.voltage_across(voltages)}


class VCCS(Device):
    """Voltage-controlled current source (transconductance ``gm``)."""

    def __init__(self, name: str, out_positive: str, out_negative: str,
                 ctrl_positive: str, ctrl_negative: str, gm: float):
        super().__init__(name, (out_positive, out_negative, ctrl_positive, ctrl_negative))
        self.gm = float(gm)

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        out_p, out_n, ctrl_p, ctrl_n = self.node_indices
        stamper.add_transconductance(out_p, out_n, ctrl_p, ctrl_n, self.gm)

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        out_p, out_n, ctrl_p, ctrl_n = self.node_indices
        stamper.add_transconductance(out_p, out_n, ctrl_p, ctrl_n, self.gm)


class VCVS(Device):
    """Voltage-controlled voltage source with gain ``mu`` (one branch unknown)."""

    n_branches = 1

    def __init__(self, name: str, out_positive: str, out_negative: str,
                 ctrl_positive: str, ctrl_negative: str, mu: float):
        super().__init__(name, (out_positive, out_negative, ctrl_positive, ctrl_negative))
        self.mu = float(mu)

    def _stamp(self, stamper) -> None:
        out_p, out_n, ctrl_p, ctrl_n = self.node_indices
        branch = self.branch_indices[0]
        stamper.add_entry(out_p, branch, 1.0)
        stamper.add_entry(out_n, branch, -1.0)
        stamper.add_entry(branch, out_p, 1.0)
        stamper.add_entry(branch, out_n, -1.0)
        stamper.add_entry(branch, ctrl_p, -self.mu)
        stamper.add_entry(branch, ctrl_n, self.mu)

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        self._stamp(stamper)

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        self._stamp(stamper)
