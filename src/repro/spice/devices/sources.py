"""Independent and controlled sources, and time-varying waveforms.

A :class:`Waveform` turns an independent source into a transient stimulus:
the source's ``dc`` value stays the operating-point/DC-analysis value, while
:meth:`Waveform.value_at` supplies the instantaneous value during transient
analysis.  Waveforms also publish their :meth:`~Waveform.breakpoints` --
times where the stimulus has a corner or discontinuity -- so the adaptive
timestep controller can land a step exactly on each one and restart
integration cleanly behind it.
"""

from __future__ import annotations

import numpy as np

from repro.spice.devices.base import Device, TwoTerminal


class Waveform:
    """Base class for transient stimulus waveforms."""

    def value_at(self, t: float) -> float:
        """Instantaneous source value at time ``t`` (seconds)."""
        raise NotImplementedError

    def breakpoints(self, t_stop: float) -> tuple[float, ...]:
        """Times in ``(0, t_stop)`` where the waveform is non-smooth."""
        return ()


class StepWaveform(Waveform):
    """A step from ``initial`` to ``final`` at ``delay``, with a linear ramp.

    ``rise_time = 0`` gives an ideal discontinuity; a small non-zero ramp is
    kinder to the timestep controller and closer to a real pulse generator.
    """

    def __init__(self, initial: float = 0.0, final: float = 1.0,
                 delay: float = 0.0, rise_time: float = 0.0):
        self.initial = float(initial)
        self.final = float(final)
        self.delay = float(delay)
        self.rise_time = float(rise_time)

    def value_at(self, t: float) -> float:
        if t <= self.delay:
            return self.initial
        if self.rise_time > 0.0 and t < self.delay + self.rise_time:
            fraction = (t - self.delay) / self.rise_time
            return self.initial + fraction * (self.final - self.initial)
        return self.final

    def breakpoints(self, t_stop: float) -> tuple[float, ...]:
        points = [self.delay, self.delay + self.rise_time]
        return tuple(p for p in dict.fromkeys(points) if 0.0 < p < t_stop)


class PulseWaveform(Waveform):
    """SPICE-style periodic trapezoidal pulse.

    One period is: ``initial`` until ``delay``, a ``rise`` ramp to
    ``pulsed``, flat for ``width``, a ``fall`` ramp back, then flat until the
    period ends.  ``period = 0`` (default) gives a single pulse.
    """

    def __init__(self, initial: float = 0.0, pulsed: float = 1.0,
                 delay: float = 0.0, rise: float = 0.0, fall: float = 0.0,
                 width: float = 1e-6, period: float = 0.0):
        self.initial = float(initial)
        self.pulsed = float(pulsed)
        self.delay = float(delay)
        self.rise = float(rise)
        self.fall = float(fall)
        self.width = float(width)
        self.period = float(period)

    def _single_pulse(self, t: float) -> float:
        """Value within one period, ``t`` measured from the pulse start."""
        if t <= 0.0:
            return self.initial
        if self.rise > 0.0 and t < self.rise:
            return self.initial + t / self.rise * (self.pulsed - self.initial)
        t -= max(self.rise, 0.0)
        if t < self.width:
            return self.pulsed
        t -= self.width
        if self.fall > 0.0 and t < self.fall:
            return self.pulsed + t / self.fall * (self.initial - self.pulsed)
        return self.initial

    def value_at(self, t: float) -> float:
        t = t - self.delay
        if t <= 0.0:
            return self.initial
        if self.period > 0.0:
            t = t % self.period
        return self._single_pulse(t)

    def breakpoints(self, t_stop: float) -> tuple[float, ...]:
        edges = (0.0, self.rise, self.rise + self.width,
                 self.rise + self.width + self.fall)
        starts = [self.delay]
        if self.period > 0.0:
            n_periods = int(max(t_stop - self.delay, 0.0) / self.period) + 1
            starts = [self.delay + k * self.period for k in range(n_periods + 1)]
        points = sorted({start + edge for start in starts for edge in edges})
        return tuple(p for p in points if 0.0 < p < t_stop)


class PWLWaveform(Waveform):
    """Piecewise-linear waveform through ``(time, value)`` points."""

    def __init__(self, points):
        points = [(float(t), float(v)) for t, v in points]
        if not points:
            raise ValueError("PWLWaveform needs at least one point")
        points.sort(key=lambda p: p[0])
        self.times = np.array([p[0] for p in points])
        self.values = np.array([p[1] for p in points])

    def value_at(self, t: float) -> float:
        return float(np.interp(t, self.times, self.values))

    def breakpoints(self, t_stop: float) -> tuple[float, ...]:
        return tuple(float(t) for t in self.times if 0.0 < t < t_stop)


class SineWaveform(Waveform):
    """``offset + amplitude * sin(2*pi*frequency*(t - delay) + phase)``.

    The source holds ``offset`` before ``delay`` (like SPICE ``SIN``).
    """

    def __init__(self, offset: float = 0.0, amplitude: float = 1.0,
                 frequency: float = 1e3, delay: float = 0.0,
                 phase_degrees: float = 0.0):
        self.offset = float(offset)
        self.amplitude = float(amplitude)
        self.frequency = float(frequency)
        self.delay = float(delay)
        self.phase = float(np.radians(phase_degrees))

    def value_at(self, t: float) -> float:
        if t < self.delay:
            return self.offset + self.amplitude * np.sin(self.phase)
        angle = 2.0 * np.pi * self.frequency * (t - self.delay) + self.phase
        return float(self.offset + self.amplitude * np.sin(angle))

    def breakpoints(self, t_stop: float) -> tuple[float, ...]:
        return (self.delay,) if 0.0 < self.delay < t_stop else ()


class VoltageSource(TwoTerminal):
    """Independent voltage source (adds one branch-current unknown).

    ``dc`` is the operating-point value; ``ac`` is the small-signal amplitude
    used by AC analysis (1 V for transfer-function measurements, 0 to keep
    the source quiet); ``waveform`` (optional) drives transient analysis,
    which falls back to the constant ``dc`` value without one.
    """

    n_branches = 1

    def __init__(self, name: str, positive: str, negative: str,
                 dc: float = 0.0, ac: float = 0.0,
                 waveform: Waveform | None = None):
        super().__init__(name, positive, negative)
        self.dc = float(dc)
        self.ac = float(ac)
        self.waveform = waveform

    def value_at(self, t: float) -> float:
        """Transient source value at time ``t``."""
        return self.waveform.value_at(t) if self.waveform is not None else self.dc

    def _stamp_branch(self, stamper, value) -> None:
        branch = self.branch_indices[0]
        pos, neg = self.positive_index, self.negative_index
        stamper.add_entry(pos, branch, 1.0)
        stamper.add_entry(neg, branch, -1.0)
        stamper.add_entry(branch, pos, 1.0)
        stamper.add_entry(branch, neg, -1.0)
        stamper.add_rhs(branch, value)

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        self._stamp_branch(stamper, self.dc)

    def dc_batch_context(self, siblings, temperatures):
        # The DC value varies across the batch (e.g. per-corner supply scaling).
        return {"dc": np.array([d.dc for d in siblings])}

    def stamp_dc_batch(self, stamper, siblings, voltages, temperatures,
                       context=None) -> None:
        if context is None:
            context = self.dc_batch_context(siblings, temperatures)
        self._stamp_branch(stamper, context["dc"])

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        self._stamp_branch(stamper, self.ac)

    def stamp_transient(self, stamper, voltages: np.ndarray, state: dict,
                        dt: float, temperature: float) -> None:
        self._stamp_branch(stamper, self.value_at(state["time"]))

    def transient_batch_context(self, siblings, temperatures):
        # No shareable constants: each design is at its own solve time, so
        # the stamp evaluates the waveform per design.  An empty dict (not
        # None) still selects the vectorized branch stamp.
        return {}

    def stamp_transient_batch(self, stamper, siblings, voltages, states,
                              times, dts, trap, temperatures,
                              context=None) -> None:
        # Scalar value_at per design keeps the waveform math bit-identical
        # to the serial stamp; only the branch stamping is vectorized.
        values = np.array([device.value_at(float(t))
                           for device, t in zip(siblings, times)])
        self._stamp_branch(stamper, values)

    def branch_current(self, solution: np.ndarray) -> float:
        """Current through the source (positive into the + terminal)."""
        return float(np.real(solution[self.branch_indices[0]]))


class CurrentSource(TwoTerminal):
    """Independent current source pushing ``dc`` amps from + to - internally.

    With the SPICE convention, a positive value pulls current out of the
    positive node and pushes it into the negative node.  ``waveform``
    (optional) drives transient analysis like :class:`VoltageSource`.
    """

    def __init__(self, name: str, positive: str, negative: str,
                 dc: float = 0.0, ac: float = 0.0,
                 waveform: Waveform | None = None):
        super().__init__(name, positive, negative)
        self.dc = float(dc)
        self.ac = float(ac)
        self.waveform = waveform

    def value_at(self, t: float) -> float:
        """Transient source value at time ``t``."""
        return self.waveform.value_at(t) if self.waveform is not None else self.dc

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        stamper.add_current(self.positive_index, self.negative_index, self.dc)

    def dc_batch_context(self, siblings, temperatures):
        return {"dc": np.array([d.dc for d in siblings])}

    def stamp_dc_batch(self, stamper, siblings, voltages, temperatures,
                       context=None) -> None:
        if context is None:
            context = self.dc_batch_context(siblings, temperatures)
        stamper.add_current(self.positive_index, self.negative_index,
                            context["dc"])

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        stamper.add_current(self.positive_index, self.negative_index, self.ac)

    def stamp_transient(self, stamper, voltages: np.ndarray, state: dict,
                        dt: float, temperature: float) -> None:
        stamper.add_current(self.positive_index, self.negative_index,
                            self.value_at(state["time"]))

    def transient_batch_context(self, siblings, temperatures):
        return {}

    def stamp_transient_batch(self, stamper, siblings, voltages, states,
                              times, dts, trap, temperatures,
                              context=None) -> None:
        values = np.array([device.value_at(float(t))
                           for device, t in zip(siblings, times)])
        stamper.add_current(self.positive_index, self.negative_index, values)

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        return {"i": self.dc, "v": self.voltage_across(voltages)}


class VCCS(Device):
    """Voltage-controlled current source (transconductance ``gm``)."""

    def __init__(self, name: str, out_positive: str, out_negative: str,
                 ctrl_positive: str, ctrl_negative: str, gm: float):
        super().__init__(name, (out_positive, out_negative, ctrl_positive, ctrl_negative))
        self.gm = float(gm)

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        out_p, out_n, ctrl_p, ctrl_n = self.node_indices
        stamper.add_transconductance(out_p, out_n, ctrl_p, ctrl_n, self.gm)

    def dc_batch_context(self, siblings, temperatures):
        return {"gm": np.array([d.gm for d in siblings])}

    def stamp_dc_batch(self, stamper, siblings, voltages, temperatures,
                       context=None) -> None:
        if context is None:
            context = self.dc_batch_context(siblings, temperatures)
        out_p, out_n, ctrl_p, ctrl_n = self.node_indices
        stamper.add_transconductance(out_p, out_n, ctrl_p, ctrl_n,
                                     context["gm"])

    def transient_batch_context(self, siblings, temperatures):
        # Quasi-static: the transient stamp is exactly the DC stamp.
        return self.dc_batch_context(siblings, temperatures)

    def stamp_transient_batch(self, stamper, siblings, voltages, states,
                              times, dts, trap, temperatures,
                              context=None) -> None:
        self.stamp_dc_batch(stamper, siblings, voltages, temperatures, context)

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        out_p, out_n, ctrl_p, ctrl_n = self.node_indices
        stamper.add_transconductance(out_p, out_n, ctrl_p, ctrl_n, self.gm)


class VCVS(Device):
    """Voltage-controlled voltage source with gain ``mu`` (one branch unknown)."""

    n_branches = 1

    def __init__(self, name: str, out_positive: str, out_negative: str,
                 ctrl_positive: str, ctrl_negative: str, mu: float):
        super().__init__(name, (out_positive, out_negative, ctrl_positive, ctrl_negative))
        self.mu = float(mu)

    def _stamp(self, stamper) -> None:
        out_p, out_n, ctrl_p, ctrl_n = self.node_indices
        branch = self.branch_indices[0]
        stamper.add_entry(out_p, branch, 1.0)
        stamper.add_entry(out_n, branch, -1.0)
        stamper.add_entry(branch, out_p, 1.0)
        stamper.add_entry(branch, out_n, -1.0)
        stamper.add_entry(branch, ctrl_p, -self.mu)
        stamper.add_entry(branch, ctrl_n, self.mu)

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        self._stamp(stamper)

    def dc_batch_context(self, siblings, temperatures):
        return {"mu": np.array([d.mu for d in siblings])}

    def stamp_dc_batch(self, stamper, siblings, voltages, temperatures,
                       context=None) -> None:
        if context is None:
            context = self.dc_batch_context(siblings, temperatures)
        mu = context["mu"]
        out_p, out_n, ctrl_p, ctrl_n = self.node_indices
        branch = self.branch_indices[0]
        stamper.add_entry(out_p, branch, 1.0)
        stamper.add_entry(out_n, branch, -1.0)
        stamper.add_entry(branch, out_p, 1.0)
        stamper.add_entry(branch, out_n, -1.0)
        stamper.add_entry(branch, ctrl_p, -mu)
        stamper.add_entry(branch, ctrl_n, mu)

    def transient_batch_context(self, siblings, temperatures):
        # Quasi-static: the transient stamp is exactly the DC stamp.
        return self.dc_batch_context(siblings, temperatures)

    def stamp_transient_batch(self, stamper, siblings, voltages, states,
                              times, dts, trap, temperatures,
                              context=None) -> None:
        self.stamp_dc_batch(stamper, siblings, voltages, temperatures, context)

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        self._stamp(stamper)
