"""Linear passive devices: resistors, capacitors and inductors."""

from __future__ import annotations

import numpy as np

from repro.spice.devices.base import (
    NoiseSource,
    TwoTerminal,
    commit_capacitor_companion,
    stamp_capacitor_companion,
    stamp_capacitor_companion_batch,
)
from repro.utils.validation import check_positive

_K_BOLTZMANN = 1.380649e-23


class Resistor(TwoTerminal):
    """An ideal resistor between two nodes."""

    def __init__(self, name: str, positive: str, negative: str, resistance: float):
        super().__init__(name, positive, negative)
        self.resistance = check_positive(resistance, f"resistance of {name}")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        stamper.add_conductance(self.positive_index, self.negative_index,
                                self.conductance)

    def dc_batch_context(self, siblings, temperatures):
        return {"conductance": np.array([d.conductance for d in siblings])}

    def stamp_dc_batch(self, stamper, siblings, voltages, temperatures,
                       context=None) -> None:
        if context is None:
            context = self.dc_batch_context(siblings, temperatures)
        stamper.add_conductance(self.positive_index, self.negative_index,
                                context["conductance"])

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        stamper.add_conductance(self.positive_index, self.negative_index,
                                self.conductance)

    def transient_batch_context(self, siblings, temperatures):
        # Quasi-static: the transient stamp is exactly the DC stamp.
        return self.dc_batch_context(siblings, temperatures)

    def stamp_transient_batch(self, stamper, siblings, voltages, states,
                              times, dts, trap, temperatures,
                              context=None) -> None:
        self.stamp_dc_batch(stamper, siblings, voltages, temperatures, context)

    def noise_sources(self, operating_point) -> list[NoiseSource]:
        """Johnson-Nyquist thermal noise: current PSD ``4kT/R``."""
        t_kelvin = operating_point.temperature + 273.15
        white = 4.0 * _K_BOLTZMANN * t_kelvin / self.resistance
        return [NoiseSource(self.name, "thermal", self.positive_index,
                            self.negative_index, white=white)]

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        v = self.voltage_across(voltages)
        return {"v": v, "i": v / self.resistance, "power": v**2 / self.resistance}


class Capacitor(TwoTerminal):
    """An ideal capacitor: open in DC, admittance ``j*omega*C`` in AC."""

    def __init__(self, name: str, positive: str, negative: str, capacitance: float):
        super().__init__(name, positive, negative)
        self.capacitance = check_positive(capacitance, f"capacitance of {name}")

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        # Open circuit at DC; nothing to stamp.
        return

    def stamp_dc_batch(self, stamper, siblings, voltages, temperatures,
                       context=None) -> None:
        # Open circuit at DC for every design in the batch.
        return

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        stamper.add_conductance(self.positive_index, self.negative_index,
                                1j * omega * self.capacitance)

    def init_transient(self, operating_point, temperature: float) -> dict:
        # A capacitor carries no current at the DC operating point.
        return {"v": self.voltage_across(operating_point.voltages), "i": 0.0}

    def stamp_transient(self, stamper, voltages: np.ndarray, state: dict,
                        dt: float, temperature: float) -> None:
        stamp_capacitor_companion(stamper, self.positive_index,
                                  self.negative_index, self.capacitance,
                                  state, "v", "i", dt)

    def commit_transient(self, voltages: np.ndarray, state: dict, dt: float,
                         temperature: float) -> None:
        commit_capacitor_companion(self.capacitance, state, "v", "i", dt,
                                   self.voltage_across(voltages))

    def transient_batch_context(self, siblings, temperatures):
        return {"capacitance": np.array([d.capacitance for d in siblings])}

    def stamp_transient_batch(self, stamper, siblings, voltages, states,
                              times, dts, trap, temperatures,
                              context=None) -> None:
        if context is None:
            context = self.transient_batch_context(siblings, temperatures)
        v_prev = np.array([state["v"] for state in states])
        i_prev = np.array([state["i"] for state in states])
        stamp_capacitor_companion_batch(stamper, self.positive_index,
                                        self.negative_index,
                                        context["capacitance"], v_prev,
                                        i_prev, dts, trap)

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        return {"v": self.voltage_across(voltages)}


class Inductor(TwoTerminal):
    """An ideal inductor: short in DC, impedance ``j*omega*L`` in AC.

    Adds one branch-current unknown (like a voltage source), which makes the
    DC short exactly representable and gives transient analysis direct access
    to the inductor current for its companion model.
    """

    n_branches = 1

    def __init__(self, name: str, positive: str, negative: str, inductance: float):
        super().__init__(name, positive, negative)
        self.inductance = check_positive(inductance, f"inductance of {name}")

    def _stamp_branch_kcl(self, stamper) -> None:
        """Couple the branch current into both terminal KCL rows."""
        branch = self.branch_indices[0]
        stamper.add_entry(self.positive_index, branch, 1.0)
        stamper.add_entry(self.negative_index, branch, -1.0)

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        # DC short: branch equation v_pos - v_neg = 0.
        branch = self.branch_indices[0]
        self._stamp_branch_kcl(stamper)
        stamper.add_entry(branch, self.positive_index, 1.0)
        stamper.add_entry(branch, self.negative_index, -1.0)

    def stamp_dc_batch(self, stamper, siblings, voltages, temperatures,
                       context=None) -> None:
        # The DC short stamps are value-free, hence identical across designs.
        self.stamp_dc(stamper, None, 0.0)

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        # Branch equation v_pos - v_neg - j*omega*L * i = 0 (affine in omega).
        branch = self.branch_indices[0]
        self._stamp_branch_kcl(stamper)
        stamper.add_entry(branch, self.positive_index, 1.0)
        stamper.add_entry(branch, self.negative_index, -1.0)
        stamper.add_entry(branch, branch, -1j * omega * self.inductance)

    def init_transient(self, operating_point, temperature: float) -> dict:
        return {"i": float(np.real(operating_point.voltages[self.branch_indices[0]])),
                "v": self.voltage_across(operating_point.voltages)}

    def stamp_transient(self, stamper, voltages: np.ndarray, state: dict,
                        dt: float, temperature: float) -> None:
        # Companion branch equation.  Backward Euler discretises
        # v = L di/dt into v_new - (L/dt) i_new = -(L/dt) i_prev;
        # trapezoidal into v_new - (2L/dt) i_new = -(2L/dt) i_prev - v_prev.
        branch = self.branch_indices[0]
        self._stamp_branch_kcl(stamper)
        stamper.add_entry(branch, self.positive_index, 1.0)
        stamper.add_entry(branch, self.negative_index, -1.0)
        if state["method"] == "trap":
            req = 2.0 * self.inductance / dt
            rhs = -req * state["i"] - state["v"]
        else:
            req = self.inductance / dt
            rhs = -req * state["i"]
        stamper.add_entry(branch, branch, -req)
        stamper.add_rhs(branch, rhs)

    def commit_transient(self, voltages: np.ndarray, state: dict, dt: float,
                         temperature: float) -> None:
        state["i"] = float(voltages[self.branch_indices[0]])
        state["v"] = self.voltage_across(voltages)

    def transient_batch_context(self, siblings, temperatures):
        return {"inductance": np.array([d.inductance for d in siblings])}

    def stamp_transient_batch(self, stamper, siblings, voltages, states,
                              times, dts, trap, temperatures,
                              context=None) -> None:
        if context is None:
            context = self.transient_batch_context(siblings, temperatures)
        branch = self.branch_indices[0]
        self._stamp_branch_kcl(stamper)
        stamper.add_entry(branch, self.positive_index, 1.0)
        stamper.add_entry(branch, self.negative_index, -1.0)
        i_prev = np.array([state["i"] for state in states])
        v_prev = np.array([state["v"] for state in states])
        inductance = context["inductance"]
        req = np.where(trap, 2.0 * inductance / dts, inductance / dts)
        rhs = np.where(trap, -req * i_prev - v_prev, -req * i_prev)
        stamper.add_entry(branch, branch, -req)
        stamper.add_rhs(branch, rhs)

    def branch_current(self, solution: np.ndarray) -> float:
        """Current through the inductor (positive into the + terminal)."""
        return float(np.real(solution[self.branch_indices[0]]))

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        return {"v": self.voltage_across(voltages),
                "i": self.branch_current(voltages)}
