"""Linear passive devices: resistors and capacitors."""

from __future__ import annotations

import numpy as np

from repro.spice.devices.base import TwoTerminal
from repro.utils.validation import check_positive


class Resistor(TwoTerminal):
    """An ideal resistor between two nodes."""

    def __init__(self, name: str, positive: str, negative: str, resistance: float):
        super().__init__(name, positive, negative)
        self.resistance = check_positive(resistance, f"resistance of {name}")

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        stamper.add_conductance(self.positive_index, self.negative_index,
                                self.conductance)

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        stamper.add_conductance(self.positive_index, self.negative_index,
                                self.conductance)

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        v = self.voltage_across(voltages)
        return {"v": v, "i": v / self.resistance, "power": v**2 / self.resistance}


class Capacitor(TwoTerminal):
    """An ideal capacitor: open in DC, admittance ``j*omega*C`` in AC."""

    def __init__(self, name: str, positive: str, negative: str, capacitance: float):
        super().__init__(name, positive, negative)
        self.capacitance = check_positive(capacitance, f"capacitance of {name}")

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        # Open circuit at DC; nothing to stamp.
        return

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        stamper.add_conductance(self.positive_index, self.negative_index,
                                1j * omega * self.capacitance)

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        return {"v": self.voltage_across(voltages)}
