"""Diode (and diode-connected BJT) with the Shockley exponential model.

The bandgap reference needs the complementary-to-absolute-temperature (CTAT)
behaviour of a forward-biased junction, so the saturation current carries the
standard strong temperature dependence ``IS(T) ~ T^3 exp(-Eg/kT)``.
"""

from __future__ import annotations

import numpy as np

from repro.spice.devices.base import NoiseSource, TwoTerminal

_K_BOLTZMANN = 1.380649e-23
_Q_ELECTRON = 1.602176634e-19
_EG_SILICON = 1.12  # eV
_T_NOMINAL = 300.15  # K (27 C)


def thermal_voltage(temperature_kelvin: float) -> float:
    """kT/q in volts."""
    return _K_BOLTZMANN * temperature_kelvin / _Q_ELECTRON


class Diode(TwoTerminal):
    """Shockley diode ``I = IS(T) (exp(V / n Vt) - 1)`` with emission area scaling.

    Parameters
    ----------
    saturation_current:
        ``IS`` at the nominal temperature (27 C).
    emission_coefficient:
        Ideality factor ``n``.
    area:
        Relative junction area (the bandgap core uses a 1:N area ratio).
    """

    is_nonlinear_device = True

    def __init__(self, name: str, positive: str, negative: str,
                 saturation_current: float = 1e-15,
                 emission_coefficient: float = 1.0, area: float = 1.0):
        super().__init__(name, positive, negative)
        if saturation_current <= 0:
            raise ValueError(f"saturation_current of {name} must be positive")
        self.saturation_current = float(saturation_current)
        self.emission_coefficient = float(emission_coefficient)
        self.area = float(area)

    @property
    def is_nonlinear(self) -> bool:
        return True

    def _saturation_current_at(self, temperature_celsius: float) -> float:
        t_kelvin = temperature_celsius + 273.15
        ratio = t_kelvin / _T_NOMINAL
        vt_nom = thermal_voltage(_T_NOMINAL)
        vt = thermal_voltage(t_kelvin)
        exponent = _EG_SILICON * (1.0 / vt_nom - 1.0 / vt) / self.emission_coefficient
        return self.area * self.saturation_current * ratio**3 * np.exp(exponent)

    def current_and_conductance(self, v: float, temperature_celsius: float) -> tuple[float, float]:
        """Diode current and small-signal conductance at junction voltage ``v``."""
        t_kelvin = temperature_celsius + 273.15
        n_vt = self.emission_coefficient * thermal_voltage(t_kelvin)
        i_sat = self._saturation_current_at(temperature_celsius)
        # Limit the exponential argument to keep Newton iterations finite.
        arg = np.clip(v / n_vt, -80.0, 80.0)
        exp_term = np.exp(arg)
        current = i_sat * (exp_term - 1.0)
        conductance = i_sat * exp_term / n_vt + 1e-12
        return float(current), float(conductance)

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        v = self.voltage_across(voltages)
        current, conductance = self.current_and_conductance(v, temperature)
        equivalent = current - conductance * v
        pos, neg = self.positive_index, self.negative_index
        stamper.add_conductance(pos, neg, conductance)
        stamper.add_current(pos, neg, equivalent)

    def dc_batch_context(self, siblings, temperatures):
        # The temperature laws use general powers (``ratio**3`` is fine, but
        # the Arrhenius exponential feeds on scalar divisions); evaluate the
        # exact scalar model once per design so batched and serial runs share
        # every bit.
        count = len(siblings)
        n_vt = np.empty(count)
        i_sat = np.empty(count)
        for b, (device, temp) in enumerate(zip(siblings, temperatures)):
            t_celsius = float(temp)
            n_vt[b] = device.emission_coefficient * thermal_voltage(t_celsius + 273.15)
            i_sat[b] = device._saturation_current_at(t_celsius)
        return {"n_vt": n_vt, "i_sat": i_sat}

    def stamp_dc_batch(self, stamper, siblings, voltages, temperatures,
                       context=None) -> None:
        if context is None:
            context = self.dc_batch_context(siblings, temperatures)
        n_vt = context["n_vt"]
        i_sat = context["i_sat"]
        v = self.voltage_across_batch(voltages)
        # Elementwise transcription of current_and_conductance.
        arg = np.clip(v / n_vt, -80.0, 80.0)
        exp_term = np.exp(arg)
        current = i_sat * (exp_term - 1.0)
        conductance = i_sat * exp_term / n_vt + 1e-12
        equivalent = current - conductance * v
        pos, neg = self.positive_index, self.negative_index
        stamper.add_conductance(pos, neg, conductance)
        stamper.add_current(pos, neg, equivalent)

    def transient_batch_context(self, siblings, temperatures):
        # Quasi-static: the transient stamp is exactly the DC stamp.
        return self.dc_batch_context(siblings, temperatures)

    def stamp_transient_batch(self, stamper, siblings, voltages, states,
                              times, dts, trap, temperatures,
                              context=None) -> None:
        self.stamp_dc_batch(stamper, siblings, voltages, temperatures, context)

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        info = operating_point.device_info.get(self.name, {})
        conductance = info.get("gd", 1e-12)
        stamper.add_conductance(self.positive_index, self.negative_index, conductance)

    def noise_sources(self, operating_point) -> list[NoiseSource]:
        """Shot noise of the junction current: PSD ``2 q |Id|``."""
        info = operating_point.device_info.get(self.name, {})
        white = 2.0 * _Q_ELECTRON * abs(info.get("i", 0.0))
        return [NoiseSource(self.name, "shot", self.positive_index,
                            self.negative_index, white=white)]

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        v = self.voltage_across(voltages)
        current, conductance = self.current_and_conductance(v, temperature)
        return {"v": v, "i": current, "gd": conductance}
