"""Circuit devices: passives, sources and nonlinear semiconductor models."""

from repro.spice.devices.base import Device, NoiseSource, TwoTerminal
from repro.spice.devices.passives import Capacitor, Inductor, Resistor
from repro.spice.devices.sources import (
    VCCS,
    VCVS,
    CurrentSource,
    PulseWaveform,
    PWLWaveform,
    SineWaveform,
    StepWaveform,
    VoltageSource,
    Waveform,
)
from repro.spice.devices.diode import Diode
from repro.spice.devices.mosfet import Mosfet, MosfetModel, NoiseCard

__all__ = [
    "Device",
    "NoiseSource",
    "TwoTerminal",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Diode",
    "Mosfet",
    "MosfetModel",
    "NoiseCard",
    "Waveform",
    "StepWaveform",
    "PulseWaveform",
    "PWLWaveform",
    "SineWaveform",
]
