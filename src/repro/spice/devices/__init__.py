"""Circuit devices: passives, sources and nonlinear semiconductor models."""

from repro.spice.devices.base import Device, TwoTerminal
from repro.spice.devices.passives import Capacitor, Resistor
from repro.spice.devices.sources import VCCS, VCVS, CurrentSource, VoltageSource
from repro.spice.devices.diode import Diode
from repro.spice.devices.mosfet import Mosfet, MosfetModel

__all__ = [
    "Device",
    "TwoTerminal",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Diode",
    "Mosfet",
    "MosfetModel",
]
