"""Circuit devices: passives, sources and nonlinear semiconductor models."""

from repro.spice.devices.base import Device, TwoTerminal
from repro.spice.devices.passives import Capacitor, Inductor, Resistor
from repro.spice.devices.sources import (
    VCCS,
    VCVS,
    CurrentSource,
    PulseWaveform,
    PWLWaveform,
    SineWaveform,
    StepWaveform,
    VoltageSource,
    Waveform,
)
from repro.spice.devices.diode import Diode
from repro.spice.devices.mosfet import Mosfet, MosfetModel

__all__ = [
    "Device",
    "TwoTerminal",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Diode",
    "Mosfet",
    "MosfetModel",
    "Waveform",
    "StepWaveform",
    "PulseWaveform",
    "PWLWaveform",
    "SineWaveform",
]
