"""Device base classes and the stamping interface.

Every device knows how to *stamp* its contribution into the MNA system:

* :meth:`Device.stamp_dc` -- real-valued Jacobian/right-hand-side stamps at a
  given trial node-voltage vector (linear devices ignore the voltages);
* :meth:`Device.stamp_ac` -- complex-valued small-signal stamps at angular
  frequency ``omega``, linearised around a previously computed DC operating
  point.

Node indices are resolved by :class:`repro.spice.netlist.Circuit` before any
analysis runs; index ``-1`` denotes the ground node and is skipped by the
stamping helpers in :mod:`repro.spice.mna`.
"""

from __future__ import annotations

import numpy as np


class Device:
    """Base class for all circuit elements."""

    #: number of extra MNA unknowns (branch currents) the device needs
    n_branches = 0

    #: whether the device's AC stamps are affine in ``omega``, i.e. every
    #: matrix entry has the form ``g + 1j * omega * c`` and the right-hand
    #: side is frequency-independent.  All built-in devices are affine, which
    #: lets :func:`repro.spice.ac.ac_analysis` assemble the system once and
    #: solve every frequency point in a single batched call.  A device whose
    #: stamps depend on ``omega`` in any other way (e.g. a lossy transmission
    #: line) must set this to ``False`` to force the per-frequency path.
    ac_affine = True

    def __init__(self, name: str, nodes: tuple[str, ...]):
        if not name:
            raise ValueError("device name must be non-empty")
        self.name = name
        self.node_names = tuple(nodes)
        self.node_indices: tuple[int, ...] = ()
        self.branch_indices: tuple[int, ...] = ()

    # -- wiring --------------------------------------------------------- #
    def bind(self, node_indices: tuple[int, ...], branch_indices: tuple[int, ...]) -> None:
        """Store resolved matrix indices (called by the circuit)."""
        self.node_indices = tuple(node_indices)
        self.branch_indices = tuple(branch_indices)

    # -- behaviour ------------------------------------------------------ #
    @property
    def is_nonlinear(self) -> bool:
        return False

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        """Stamp DC (large-signal, linearised) contributions."""
        raise NotImplementedError

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        """Stamp AC small-signal contributions."""
        raise NotImplementedError

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        """Per-device operating-point quantities (currents, gm, region, ...)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}, nodes={self.node_names})"


class TwoTerminal(Device):
    """Convenience base class for two-terminal devices."""

    def __init__(self, name: str, positive: str, negative: str):
        super().__init__(name, (positive, negative))

    @property
    def positive_index(self) -> int:
        return self.node_indices[0]

    @property
    def negative_index(self) -> int:
        return self.node_indices[1]

    def voltage_across(self, voltages: np.ndarray) -> float:
        """Voltage from the positive to the negative terminal."""
        pos = 0.0 if self.positive_index < 0 else voltages[self.positive_index]
        neg = 0.0 if self.negative_index < 0 else voltages[self.negative_index]
        return float(pos - neg)
