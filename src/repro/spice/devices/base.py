"""Device base classes and the stamping interface.

Every device knows how to *stamp* its contribution into the MNA system:

* :meth:`Device.stamp_dc` -- real-valued Jacobian/right-hand-side stamps at a
  given trial node-voltage vector (linear devices ignore the voltages);
* :meth:`Device.stamp_ac` -- complex-valued small-signal stamps at angular
  frequency ``omega``, linearised around a previously computed DC operating
  point;
* :meth:`Device.stamp_transient` -- real-valued companion-model stamps for
  one timestep of transient analysis (see below).

Node indices are resolved by :class:`repro.spice.netlist.Circuit` before any
analysis runs; index ``-1`` denotes the ground node and is skipped by the
stamping helpers in :mod:`repro.spice.mna`.

Noise contract
--------------
:meth:`Device.noise_sources` returns the device's small-signal noise
generators at a given DC operating point as a list of :class:`NoiseSource`
records -- each an independent current source between two resolved node
indices with a white plus ``1/f``-shaped power spectral density.  The
default returns no sources (ideal independent sources, controlled sources
and reactive elements are noiseless); :mod:`repro.spice.noise` sweeps the
sources through one adjoint solve of the linearised AC system per
frequency to obtain every source-to-output transfer at once.

Transient contract
------------------
Transient analysis (:func:`repro.spice.transient.transient_analysis`)
discretises each reactive device into a *companion model* -- a conductance
plus an independent current source whose values depend on the timestep
``dt``, the integration method and the device's previously accepted state.
The solver drives three hooks:

1. :meth:`Device.init_transient` is called once after the initial DC solve
   and returns the device's mutable ``state`` dictionary (previous voltages,
   currents, frozen capacitance values, ...).  The solver additionally
   maintains two reserved keys in every state: ``state["time"]`` (the time
   being solved for) and ``state["method"]`` (``"be"`` for backward Euler or
   ``"trap"`` for trapezoidal).
2. :meth:`Device.stamp_transient` stamps the companion model for the current
   Newton iterate.  The default implementation delegates to
   :meth:`stamp_dc`, which is exactly right for memoryless devices
   (resistors, controlled sources, the quasi-static diode).
3. :meth:`Device.commit_transient` is called once per *accepted* step with
   the converged solution so the device can roll its state forward.
   Rejected steps (local truncation error too large, Newton failure) never
   commit, so a device must keep all history in ``state`` -- not on ``self``.

Batched transient analysis
(:func:`repro.spice.transient.transient_analysis_batch`) adds the
companion-model analogue of the batched DC contract:
:meth:`Device.transient_batch_context` precomputes per-design ``(B,)``
constants (or returns ``None`` to opt out) and
:meth:`Device.stamp_transient_batch` stamps all sibling devices of a
topology-identical batch at once -- each design carrying its *own* time,
timestep and integration method, since the adaptive controllers run
independently per design.  The default implementation falls back to
per-design :meth:`stamp_transient` calls, so the contract is opt-in per
device class; overrides must keep the accumulation order bit-identical to
the serial stamp, exactly like ``stamp_dc_batch``.
"""

from __future__ import annotations

import numpy as np


def stamp_capacitor_companion(stamper, positive: int, negative: int,
                              capacitance: float, state: dict,
                              v_key: str, i_key: str, dt: float) -> None:
    """Stamp the companion model of a linear capacitor.

    Backward Euler replaces the capacitor by ``Geq = C/dt`` in parallel with
    a current source ``-Geq * v_prev``; trapezoidal integration uses
    ``Geq = 2C/dt`` and ``-Geq * v_prev - i_prev``.  The previous branch
    voltage/current live in ``state[v_key]`` / ``state[i_key]`` and are
    rolled forward by :func:`commit_capacitor_companion`.
    """
    v_prev = state[v_key]
    if state["method"] == "trap":
        geq = 2.0 * capacitance / dt
        ieq = -geq * v_prev - state[i_key]
    else:
        geq = capacitance / dt
        ieq = -geq * v_prev
    stamper.add_conductance(positive, negative, geq)
    stamper.add_current(positive, negative, ieq)


def stamp_capacitor_companion_batch(stamper, positive: int, negative: int,
                                    capacitance: np.ndarray,
                                    v_prev: np.ndarray, i_prev: np.ndarray,
                                    dts: np.ndarray,
                                    trap: np.ndarray) -> None:
    """Vectorized :func:`stamp_capacitor_companion` over a design batch.

    ``capacitance``/``v_prev``/``i_prev``/``dts`` are ``(B,)`` arrays and
    ``trap`` is the ``(B,)`` boolean mask of designs integrating this step
    with the trapezoidal rule.  Both method lanes are evaluated elementwise
    and blended with ``np.where``, which reproduces the scalar branches bit
    for bit per design.
    """
    geq = np.where(trap, 2.0 * capacitance / dts, capacitance / dts)
    ieq = np.where(trap, -geq * v_prev - i_prev, -geq * v_prev)
    stamper.add_conductance(positive, negative, geq)
    stamper.add_current(positive, negative, ieq)


def commit_capacitor_companion(capacitance: float, state: dict,
                               v_key: str, i_key: str, dt: float,
                               v_new: float) -> None:
    """Advance a capacitor companion state to the accepted solution."""
    if state["method"] == "trap":
        i_new = 2.0 * capacitance / dt * (v_new - state[v_key]) - state[i_key]
    else:
        i_new = capacitance / dt * (v_new - state[v_key])
    state[v_key] = v_new
    state[i_key] = i_new


class NoiseSource:
    """One independent noise current generator of a device.

    The generator injects a current between the resolved MNA node indices
    ``node_a`` and ``node_b`` (``-1`` for ground) with the one-sided power
    spectral density

        ``S(f) = white + flicker / f**flicker_exponent``   [A^2/Hz]

    which covers every classical device noise mechanism: thermal and shot
    noise are frequency-flat (``flicker == 0``) and flicker noise carries
    its full bias/geometry prefactor in ``flicker`` with the canonical
    ``1/f`` slope.  Sources are statistically independent, so analyses sum
    their squared transfer-weighted PSDs.
    """

    __slots__ = ("device", "label", "node_a", "node_b", "white", "flicker",
                 "flicker_exponent")

    def __init__(self, device: str, label: str, node_a: int, node_b: int,
                 white: float, flicker: float = 0.0,
                 flicker_exponent: float = 1.0):
        if white < 0.0 or flicker < 0.0:
            raise ValueError(
                f"noise PSD coefficients of {device}:{label} must be "
                f"non-negative, got white={white}, flicker={flicker}")
        self.device = device
        self.label = label
        self.node_a = int(node_a)
        self.node_b = int(node_b)
        self.white = float(white)
        self.flicker = float(flicker)
        self.flicker_exponent = float(flicker_exponent)

    def psd(self, frequencies: np.ndarray) -> np.ndarray:
        """Evaluate the current PSD (A^2/Hz) on a frequency grid."""
        frequencies = np.asarray(frequencies, dtype=float)
        psd = np.full(frequencies.shape, self.white)
        if self.flicker:
            psd = psd + self.flicker / frequencies**self.flicker_exponent
        return psd

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NoiseSource({self.device}:{self.label}, "
                f"white={self.white:.3e}, flicker={self.flicker:.3e})")


class Device:
    """Base class for all circuit elements."""

    #: number of extra MNA unknowns (branch currents) the device needs
    n_branches = 0

    #: whether the device's AC stamps are affine in ``omega``, i.e. every
    #: matrix entry has the form ``g + 1j * omega * c`` and the right-hand
    #: side is frequency-independent.  All built-in devices are affine, which
    #: lets :func:`repro.spice.ac.ac_analysis` assemble the system once and
    #: solve every frequency point in a single batched call.  A device whose
    #: stamps depend on ``omega`` in any other way (e.g. a lossy transmission
    #: line) must set this to ``False`` to force the per-frequency path.
    ac_affine = True

    def __init__(self, name: str, nodes: tuple[str, ...]):
        if not name:
            raise ValueError("device name must be non-empty")
        self.name = name
        self.node_names = tuple(nodes)
        self.node_indices: tuple[int, ...] = ()
        self.branch_indices: tuple[int, ...] = ()

    # -- wiring --------------------------------------------------------- #
    def bind(self, node_indices: tuple[int, ...], branch_indices: tuple[int, ...]) -> None:
        """Store resolved matrix indices (called by the circuit)."""
        self.node_indices = tuple(node_indices)
        self.branch_indices = tuple(branch_indices)

    # -- behaviour ------------------------------------------------------ #
    @property
    def is_nonlinear(self) -> bool:
        return False

    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        """Stamp DC (large-signal, linearised) contributions."""
        raise NotImplementedError

    # -- batched DC ----------------------------------------------------- #
    def dc_batch_context(self, siblings, temperatures: np.ndarray):
        """Precompute per-design constants for :meth:`stamp_dc_batch`.

        ``siblings[b]`` is this device's counterpart in design ``b`` of a
        topology-identical batch (``siblings[0] is self``) and
        ``temperatures`` is the matching ``(B,)`` array of simulation
        temperatures.  The returned value must be either ``None`` (no
        vectorized stamp; the driver falls back to per-design
        :meth:`stamp_dc`) or a ``dict`` of ``(B,)`` arrays, which the batched
        Newton driver slices row-wise as designs converge and drop out of the
        active sub-batch.

        Bit-identity contract: constants that the serial model derives with
        scalar math (temperature laws, geometry ratios, saturation currents)
        must be computed here by calling the *same scalar code* once per
        sibling -- general ``array ** exponent`` is not bit-identical to the
        scalar power it replaces.  Only voltage-dependent elementwise math
        belongs in :meth:`stamp_dc_batch`.
        """
        return None

    def stamp_dc_batch(self, stamper, siblings, voltages: np.ndarray,
                       temperatures: np.ndarray, context=None) -> None:
        """Stamp DC contributions for a batch of sibling devices at once.

        ``stamper`` is a batch stamper (dense or sparse) accepting scalar or
        ``(B,)`` values per stamp; ``voltages`` is the ``(B, size)`` matrix of
        trial solutions and ``context`` is (a row-sliced view of) whatever
        :meth:`dc_batch_context` returned.  Overrides must accumulate exactly
        the same additions in the same order as :meth:`stamp_dc` does per
        design, so batched and serial Newton iterates stay bit-identical.

        The base implementation is the automatic per-design fallback: each
        sibling stamps through a serial view of its slice of the batch.
        """
        stamper.stamp_device_serial(siblings, voltages, temperatures)

    #: whether consecutive device columns of this class may be stamped
    #: through one fused kernel (``dc_batch_fused_layout`` +
    #: ``stamp_dc_batch_fused`` classmethods) instead of one
    #: :meth:`stamp_dc_batch` call per column.  Fusion amortises the
    #: fixed numpy dispatch cost of the model evaluation over all device
    #: rows at once; the fused kernel must still accumulate per-cell
    #: contributions in original device order to stay bit-identical.
    dc_batch_fusable = False

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        """Stamp AC small-signal contributions."""
        raise NotImplementedError

    # -- noise ---------------------------------------------------------- #
    def noise_sources(self, operating_point) -> list[NoiseSource]:
        """This device's noise generators at ``operating_point``.

        Implementations read their bias quantities from
        ``operating_point.device_info[self.name]`` (the same record
        :meth:`operating_info` produced during the DC solve) and return one
        :class:`NoiseSource` per independent physical mechanism, with node
        indices taken from the device's resolved ``node_indices``.  The
        default -- ideal sources, controlled sources, capacitors and
        inductors -- is noiseless.
        """
        return []

    # -- transient ------------------------------------------------------ #
    def init_transient(self, operating_point, temperature: float) -> dict:
        """Build this device's mutable transient state from the DC solution.

        Memoryless devices need no state; the base implementation returns an
        empty dictionary (the solver still injects the reserved ``"time"``
        and ``"method"`` keys).
        """
        return {}

    def stamp_transient(self, stamper, voltages: np.ndarray, state: dict,
                        dt: float, temperature: float) -> None:
        """Stamp companion-model contributions for one transient timestep.

        The default is quasi-static: memoryless devices contribute exactly
        their (linearised) DC stamps at the current Newton iterate.
        """
        self.stamp_dc(stamper, voltages, temperature)

    def commit_transient(self, voltages: np.ndarray, state: dict, dt: float,
                         temperature: float) -> None:
        """Roll ``state`` forward after a step is accepted (default: no-op)."""
        return

    # -- batched transient ---------------------------------------------- #
    def transient_batch_context(self, siblings, temperatures: np.ndarray):
        """Precompute per-design constants for :meth:`stamp_transient_batch`.

        Same shape and bit-identity rules as :meth:`dc_batch_context`:
        return ``None`` for the per-design fallback or a dict of ``(B,)``
        arrays for the vectorized stamp.  Classes that override
        :meth:`stamp_transient` should override this pair together --
        inheriting a quasi-static batch stamp over a stateful serial stamp
        would silently diverge.
        """
        return None

    def stamp_transient_batch(self, stamper, siblings, voltages: np.ndarray,
                              states, times: np.ndarray, dts: np.ndarray,
                              trap: np.ndarray, temperatures: np.ndarray,
                              context=None) -> None:
        """Stamp one transient Newton iteration for a batch of siblings.

        ``states[b]`` is design ``b``'s state dict for this device (with the
        reserved ``"time"``/``"method"`` keys already set), ``times``/``dts``
        are the per-design solve times and timesteps, and ``trap`` is the
        per-design trapezoidal-method mask -- designs step asynchronously,
        so none of these are shared across the batch.  Overrides must
        accumulate exactly the same additions in the same order as
        :meth:`stamp_transient` does per design.

        The base implementation is the automatic per-design fallback.
        """
        stamper.stamp_device_transient_serial(siblings, voltages, states,
                                              dts, temperatures)

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        """Per-device operating-point quantities (currents, gm, region, ...)."""
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name}, nodes={self.node_names})"


class TwoTerminal(Device):
    """Convenience base class for two-terminal devices."""

    def __init__(self, name: str, positive: str, negative: str):
        super().__init__(name, (positive, negative))

    @property
    def positive_index(self) -> int:
        return self.node_indices[0]

    @property
    def negative_index(self) -> int:
        return self.node_indices[1]

    def voltage_across(self, voltages: np.ndarray) -> float:
        """Voltage from the positive to the negative terminal."""
        pos = 0.0 if self.positive_index < 0 else voltages[self.positive_index]
        neg = 0.0 if self.negative_index < 0 else voltages[self.negative_index]
        return float(pos - neg)

    def voltage_across_batch(self, voltages: np.ndarray):
        """Per-design terminal voltage difference for a ``(B, size)`` batch."""
        pos = 0.0 if self.positive_index < 0 else voltages[:, self.positive_index]
        neg = 0.0 if self.negative_index < 0 else voltages[:, self.negative_index]
        return pos - neg
