"""Level-1 (square-law) MOSFET model with channel-length modulation.

The synthetic 180 nm / 40 nm technology cards in :mod:`repro.pdk` supply the
model parameters.  The model provides both the large-signal equations used by
Newton-Raphson DC analysis and the small-signal quantities (gm, gds,
capacitances) used by AC analysis and by the analytical op-amp testbenches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.devices.base import (
    Device,
    NoiseSource,
    commit_capacitor_companion,
    stamp_capacitor_companion,
    stamp_capacitor_companion_batch,
)

#: Boltzmann constant (J/K), exact SI value.
_K_BOLTZMANN = 1.380649e-23


@dataclass(frozen=True)
class NoiseCard:
    """Noise parameters of one MOSFET polarity.

    Lives on the :class:`MosfetModel` (and therefore on the PDK
    ``Technology`` card, whose ``fingerprint`` hashes every nested model
    field), so corner- and variation-derived cards compose with noise for
    free.

    Attributes
    ----------
    gamma:
        Channel thermal-noise excess factor: drain current PSD
        ``4*k*T*gamma*gm``.  ``2/3`` for a long-channel device in
        saturation, rising above 1 for short channels.
    kf:
        Flicker coefficient of ``KF * Ids**AF / (Cox * W * L * f)``.
    af:
        Flicker current exponent ``AF`` (1 for the classical model).
    """

    gamma: float = 2.0 / 3.0
    kf: float = 0.0
    af: float = 1.0

    def __post_init__(self) -> None:
        if self.gamma < 0.0 or self.kf < 0.0:
            raise ValueError(
                f"noise card coefficients must be non-negative, got "
                f"gamma={self.gamma}, kf={self.kf}")


#: Thermal-only default so bare models stay valid without a PDK card.
DEFAULT_NOISE = NoiseCard()


@dataclass(frozen=True)
class MosfetModel:
    """Technology parameters of one device polarity.

    Attributes
    ----------
    polarity:
        ``"nmos"`` or ``"pmos"``.
    vth0:
        Zero-bias threshold voltage magnitude (V).
    kp:
        Process transconductance ``mu * Cox`` (A/V^2).
    lambda_per_um:
        Channel-length-modulation coefficient for a 1 um device; the
        effective lambda scales as ``lambda_per_um / L_um``.
    cox:
        Gate-oxide capacitance per area (F/m^2).
    cgdo:
        Gate-drain overlap capacitance per width (F/m).
    vth_tc:
        Threshold temperature coefficient (V/K), negative for both polarities.
    mobility_temp_exponent:
        ``kp(T) = kp * (T/Tnom)^exponent`` (exponent is negative).
    noise:
        Thermal/flicker :class:`NoiseCard` of this polarity.
    """

    polarity: str
    vth0: float
    kp: float
    lambda_per_um: float
    cox: float
    cgdo: float
    vth_tc: float = -1e-3
    mobility_temp_exponent: float = -1.5
    noise: NoiseCard = DEFAULT_NOISE

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}")

    @property
    def sign(self) -> float:
        """+1 for NMOS, -1 for PMOS (applied to terminal voltages)."""
        return 1.0 if self.polarity == "nmos" else -1.0

    def vth_at(self, temperature_celsius: float) -> float:
        return self.vth0 + self.vth_tc * (temperature_celsius - 27.0)

    def kp_at(self, temperature_celsius: float) -> float:
        t_ratio = (temperature_celsius + 273.15) / 300.15
        return self.kp * t_ratio**self.mobility_temp_exponent

    def effective_lambda(self, length: float) -> float:
        """Channel-length modulation for a device of length ``length`` metres."""
        length_um = max(length * 1e6, 1e-3)
        return self.lambda_per_um / length_um


@dataclass
class MosfetOperatingPoint:
    """Small-signal quantities of one MOSFET at its DC bias.

    Voltages follow the device's own polarity convention (``vgs``/``vds`` are
    source-referenced magnitudes for PMOS as well), so ``vov > 0`` always
    means the channel is on.
    """

    ids: float
    vgs: float
    vds: float
    vov: float
    gm: float
    gds: float
    region: str
    cgs: float
    cgd: float


def square_law(model: MosfetModel, width: float, length: float,
               vgs: float, vds: float, temperature: float = 27.0,
               ) -> MosfetOperatingPoint:
    """Evaluate the square-law model (``vgs``/``vds`` in polarity convention, ``vds >= 0``)."""
    vth = model.vth_at(temperature)
    kp = model.kp_at(temperature)
    beta = kp * width / max(length, 1e-9)
    lam = model.effective_lambda(length)
    vov = vgs - vth
    vds = max(vds, 0.0)
    cgs = (2.0 / 3.0) * width * length * model.cox + model.cgdo * width
    cgd = model.cgdo * width

    if vov <= 0.0:
        # Sub-threshold: a tiny exponential leakage keeps the Jacobian finite
        # and gives Newton a gradient to climb out of cutoff.
        ids = 1e-12 * np.exp(np.clip(vov / 0.08, -60.0, 0.0)) * (1.0 + lam * vds)
        gm = ids / 0.08
        gds = 1e-9
        return MosfetOperatingPoint(ids=float(ids), vgs=vgs, vds=vds, vov=vov,
                                    gm=float(gm), gds=gds, region="cutoff",
                                    cgs=cgs, cgd=cgd)
    if vds < vov:
        ids = beta * (vov * vds - 0.5 * vds**2) * (1.0 + lam * vds)
        gm = beta * vds * (1.0 + lam * vds)
        gds = (beta * (vov - vds) * (1.0 + lam * vds)
               + beta * (vov * vds - 0.5 * vds**2) * lam)
        region = "triode"
        cgs = 0.5 * width * length * model.cox + model.cgdo * width
        cgd = 0.5 * width * length * model.cox + model.cgdo * width
    else:
        ids = 0.5 * beta * vov**2 * (1.0 + lam * vds)
        gm = beta * vov * (1.0 + lam * vds)
        gds = 0.5 * beta * vov**2 * lam + 1e-12
        region = "saturation"
    return MosfetOperatingPoint(ids=float(ids), vgs=float(vgs), vds=float(vds),
                                vov=float(vov), gm=float(max(gm, 1e-15)),
                                gds=float(max(gds, 1e-12)), region=region,
                                cgs=float(cgs), cgd=float(cgd))


def _square_law_batch(vth: np.ndarray, beta: np.ndarray, lam: np.ndarray,
                      vgs: np.ndarray, vds: np.ndarray,
                      ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized ``(ids, gm, gds)`` of :func:`square_law` over a batch.

    An operation-for-operation transcription of the scalar model: every lane
    lands in the same region branch as the scalar code (NaN trial voltages
    fall through to saturation in both) and evaluates the exact expressions
    of that branch, so the selected values are bit-identical to per-design
    scalar evaluation.  Note the scalar cutoff branch returns its ``gm`` and
    ``gds`` *without* the ``max(gm, 1e-15)`` / ``max(gds, 1e-12)`` floors --
    the floors here apply only to the triode/saturation selection.
    """
    vov = vgs - vth
    vds = np.maximum(vds, 0.0)
    cutoff = vov <= 0.0
    triode = vds < vov
    # Callers (the batch assembler / stamp_dc_batch) run under an errstate
    # that silences the overflows and invalids NaN trial voltages produce.
    # float_power, not ** : the array squaring fast path multiplies, while
    # Python's scalar ``x ** 2`` goes through libm pow -- they can disagree
    # in the last ulp, which bit-identity cannot afford.  Repeated
    # subexpressions of the scalar branches are hoisted: recomputation is
    # bit-deterministic, so sharing the result changes nothing.
    vds_sq = np.float_power(vds, 2)
    vov_sq = np.float_power(vov, 2)
    channel_mod = 1.0 + lam * vds
    tri_curve = vov * vds - 0.5 * vds_sq
    ids_cut = 1e-12 * np.exp(np.minimum(np.maximum(vov / 0.08, -60.0), 0.0)) * channel_mod
    gm_cut = ids_cut / 0.08
    ids_tri = beta * tri_curve * channel_mod
    gm_tri = beta * vds * channel_mod
    gds_tri = beta * (vov - vds) * channel_mod + beta * tri_curve * lam
    half_beta_vov_sq = 0.5 * beta * vov_sq
    ids_sat = half_beta_vov_sq * channel_mod
    gm_sat = beta * vov * channel_mod
    gds_sat = half_beta_vov_sq * lam + 1e-12
    ids = np.where(cutoff, ids_cut, np.where(triode, ids_tri, ids_sat))
    gm = np.where(cutoff, gm_cut,
                  np.maximum(np.where(triode, gm_tri, gm_sat), 1e-15))
    gds = np.where(cutoff, 1e-9,
                   np.maximum(np.where(triode, gds_tri, gds_sat), 1e-12))
    return ids, gm, gds


class Mosfet(Device):
    """A four-terminal MOSFET (drain, gate, source, bulk).

    The bulk terminal is kept for netlist fidelity but the level-1 equations
    ignore body effect.
    """

    def __init__(self, name: str, drain: str, gate: str, source: str, bulk: str,
                 model: MosfetModel, width: float, length: float):
        super().__init__(name, (drain, gate, source, bulk))
        if width <= 0 or length <= 0:
            raise ValueError(f"width and length of {name} must be positive")
        self.model = model
        self.width = float(width)
        self.length = float(length)

    @property
    def is_nonlinear(self) -> bool:
        return True

    # ------------------------------------------------------------------ #
    # large-signal evaluation                                             #
    # ------------------------------------------------------------------ #
    def _terminal_voltages(self, voltages: np.ndarray) -> tuple[float, float, float]:
        drain, gate, source, _ = self.node_indices
        v_d = 0.0 if drain < 0 else float(voltages[drain])
        v_g = 0.0 if gate < 0 else float(voltages[gate])
        v_s = 0.0 if source < 0 else float(voltages[source])
        return v_d, v_g, v_s

    def _ids_and_derivatives(self, v_d: float, v_g: float, v_s: float,
                             temperature: float,
                             ) -> tuple[float, float, float, float, MosfetOperatingPoint]:
        """Drain-to-source current and its partials w.r.t. (v_d, v_g, v_s).

        Handles both polarities and drain/source swapping so the Newton
        iteration sees a continuous, consistent model everywhere.
        """
        if self.model.polarity == "nmos":
            if v_d >= v_s:
                op = square_law(self.model, self.width, self.length,
                                v_g - v_s, v_d - v_s, temperature)
                return op.ids, op.gds, op.gm, -(op.gm + op.gds), op
            op = square_law(self.model, self.width, self.length,
                            v_g - v_d, v_s - v_d, temperature)
            return -op.ids, op.gm + op.gds, -op.gm, -op.gds, op
        # PMOS: conduction when the source is above the drain.
        if v_s >= v_d:
            op = square_law(self.model, self.width, self.length,
                            v_s - v_g, v_s - v_d, temperature)
            return -op.ids, op.gds, op.gm, -(op.gm + op.gds), op
        op = square_law(self.model, self.width, self.length,
                        v_d - v_g, v_d - v_s, temperature)
        return op.ids, op.gm + op.gds, -op.gm, -op.gds, op

    def operating_point(self, voltages: np.ndarray, temperature: float) -> MosfetOperatingPoint:
        v_d, v_g, v_s = self._terminal_voltages(voltages)
        _, _, _, _, op = self._ids_and_derivatives(v_d, v_g, v_s, temperature)
        return op

    # ------------------------------------------------------------------ #
    # stamping                                                            #
    # ------------------------------------------------------------------ #
    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        drain, gate, source, _ = self.node_indices
        v_d, v_g, v_s = self._terminal_voltages(voltages)
        i_ds, d_vd, d_vg, d_vs, _ = self._ids_and_derivatives(v_d, v_g, v_s, temperature)
        # KCL: +i_ds leaves the drain, enters the source.
        stamper.add_entry(drain, drain, d_vd)
        stamper.add_entry(drain, gate, d_vg)
        stamper.add_entry(drain, source, d_vs)
        stamper.add_entry(source, drain, -d_vd)
        stamper.add_entry(source, gate, -d_vg)
        stamper.add_entry(source, source, -d_vs)
        equivalent = i_ds - (d_vd * v_d + d_vg * v_g + d_vs * v_s)
        stamper.add_current(drain, source, equivalent)

    def dc_batch_context(self, siblings, temperatures):
        # Temperature/geometry constants via the exact scalar model per
        # design: the mobility law's general power is not bit-reproducible
        # when vectorized, so only voltage-dependent math is batched.
        if any(d.model.polarity != self.model.polarity for d in siblings):
            return None  # mixed polarity: fall back to per-design stamping
        count = len(siblings)
        vth = np.empty(count)
        beta = np.empty(count)
        lam = np.empty(count)
        for b, (device, temp) in enumerate(zip(siblings, temperatures)):
            t_celsius = float(temp)
            model = device.model
            vth[b] = model.vth_at(t_celsius)
            kp = model.kp_at(t_celsius)
            beta[b] = kp * device.width / max(device.length, 1e-9)
            lam[b] = model.effective_lambda(device.length)
        return {"vth": vth, "beta": beta, "lam": lam}

    def stamp_dc_batch(self, stamper, siblings, voltages, temperatures,
                       context=None) -> None:
        if context is None:
            context = self.dc_batch_context(siblings, temperatures)
        if context is None:
            stamper.stamp_device_serial(siblings, voltages, temperatures)
            return
        drain, gate, source, _ = self.node_indices
        v_d = 0.0 if drain < 0 else voltages[:, drain]
        v_g = 0.0 if gate < 0 else voltages[:, gate]
        v_s = 0.0 if source < 0 else voltages[:, source]
        # Vectorized drain/source swap: ``forward`` lanes evaluate the model
        # with the same arguments as the scalar branches, and the derivative
        # tuple mapping is shared by both polarities (see
        # _ids_and_derivatives).
        if self.model.polarity == "nmos":
            forward = v_d >= v_s
            vgs = np.where(forward, v_g - v_s, v_g - v_d)
            vds = np.where(forward, v_d - v_s, v_s - v_d)
        else:
            forward = v_s >= v_d
            vgs = np.where(forward, v_s - v_g, v_d - v_g)
            vds = np.where(forward, v_s - v_d, v_d - v_s)
        ids, gm, gds = _square_law_batch(context["vth"], context["beta"],
                                         context["lam"], vgs, vds)
        if self.model.polarity == "nmos":
            i_ds = np.where(forward, ids, -ids)
        else:
            i_ds = np.where(forward, -ids, ids)
        d_vd = np.where(forward, gds, gm + gds)
        d_vg = np.where(forward, gm, -gm)
        d_vs = np.where(forward, -(gm + gds), -gds)
        stamper.add_entry(drain, drain, d_vd)
        stamper.add_entry(drain, gate, d_vg)
        stamper.add_entry(drain, source, d_vs)
        stamper.add_entry(source, drain, -d_vd)
        stamper.add_entry(source, gate, -d_vg)
        stamper.add_entry(source, source, -d_vs)
        equivalent = i_ds - (d_vd * v_d + d_vg * v_g + d_vs * v_s)
        stamper.add_current(drain, source, equivalent)

    # ------------------------------------------------------------------ #
    # fused stamping of consecutive mosfet columns                        #
    # ------------------------------------------------------------------ #
    dc_batch_fusable = True

    @classmethod
    def dc_batch_fused_layout(cls, devices) -> dict:
        """Static per-row layout for a fused stamp of mosfet columns.

        ``devices`` are the first design's devices of each fused column, in
        original netlist order; indices are topology-invariant across the
        batch.  ``sign`` is +1 for NMOS rows and -1 for PMOS rows: negating
        ``v_a - v_b`` is exact, so one signed kernel reproduces both
        polarity branches of :meth:`_ids_and_derivatives` bit-for-bit.
        """
        nmos = np.array([device.model.polarity == "nmos"
                         for device in devices])
        return {
            "drain": np.array([device.node_indices[0] for device in devices]),
            "gate": np.array([device.node_indices[1] for device in devices]),
            "source": np.array([device.node_indices[2] for device in devices]),
            "nmos": nmos[:, None],
            "sign": np.where(nmos, 1.0, -1.0)[:, None],
        }

    @staticmethod
    def _gather_rows(voltages: np.ndarray, indices: np.ndarray) -> np.ndarray:
        """``(D, B)`` terminal voltages; grounded rows read exactly 0.0."""
        values = voltages[:, indices].T  # fancy indexing copies: writable
        grounded = indices < 0
        if grounded.any():
            values[grounded] = 0.0
        return values

    @classmethod
    def stamp_dc_batch_fused(cls, stamper, devices, layout: dict,
                             params: dict, voltages: np.ndarray) -> None:
        """Stamp ``D`` consecutive mosfet columns with one model evaluation.

        Evaluates the square law once on ``(D, B)`` tensors -- elementwise
        numpy ops are position-independent, so each row's values are
        bit-identical to a per-column :meth:`stamp_dc_batch` -- and then
        stamps row by row in original device order, preserving the per-cell
        accumulation order the serial stamp loop would produce.
        """
        v_d = cls._gather_rows(voltages, layout["drain"])
        v_g = cls._gather_rows(voltages, layout["gate"])
        v_s = cls._gather_rows(voltages, layout["source"])
        sign = layout["sign"]
        forward = np.where(layout["nmos"], v_d >= v_s, v_s >= v_d)
        vgs = sign * np.where(forward, v_g - v_s, v_g - v_d)
        vds = sign * np.where(forward, v_d - v_s, v_s - v_d)
        ids, gm, gds = _square_law_batch(params["vth"], params["beta"],
                                         params["lam"], vgs, vds)
        i_ds = sign * np.where(forward, ids, -ids)
        gm_gds = gm + gds
        d_vd = np.where(forward, gds, gm_gds)
        d_vg = np.where(forward, gm, -gm)
        d_vs = np.where(forward, -gm_gds, -gds)
        equivalent = i_ds - (d_vd * v_d + d_vg * v_g + d_vs * v_s)
        for row, device in enumerate(devices):
            drain, gate, source, _ = device.node_indices
            stamper.add_entry(drain, drain, d_vd[row])
            stamper.add_entry(drain, gate, d_vg[row])
            stamper.add_entry(drain, source, d_vs[row])
            stamper.add_entry(source, drain, -d_vd[row])
            stamper.add_entry(source, gate, -d_vg[row])
            stamper.add_entry(source, source, -d_vs[row])
            stamper.add_current(drain, source, equivalent[row])

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        drain, gate, source, _ = self.node_indices
        info = operating_point.device_info.get(self.name)
        if info is None:
            raise KeyError(f"no operating point recorded for {self.name}")
        gm, gds = info["gm"], info["gds"]
        cgs, cgd = info["cgs"], info["cgd"]
        # The small-signal model has the same form for NMOS and PMOS.
        stamper.add_transconductance(drain, source, gate, source, gm)
        stamper.add_conductance(drain, source, gds)
        stamper.add_conductance(gate, source, 1j * omega * cgs)
        stamper.add_conductance(gate, drain, 1j * omega * cgd)

    def noise_sources(self, operating_point) -> list[NoiseSource]:
        """Channel thermal (``4kT*gamma*gm``) and flicker noise at the bias.

        Both mechanisms appear as one drain-to-source current generator:
        thermal noise is white, flicker carries the SPICE-style
        ``KF * Ids**AF / (Cox * W * L * f)`` density with KF/AF/gamma from
        the model's :class:`NoiseCard`.  Bias quantities come from the
        recorded operating info, so the sources are consistent with the AC
        linearisation reusing the same solve.
        """
        info = operating_point.device_info.get(self.name)
        if info is None:
            raise KeyError(f"no operating point recorded for {self.name}")
        drain, _, source, _ = self.node_indices
        card = self.model.noise
        t_kelvin = operating_point.temperature + 273.15
        white = 4.0 * _K_BOLTZMANN * t_kelvin * card.gamma * abs(info["gm"])
        flicker = 0.0
        if card.kf > 0.0:
            gate_cap = self.model.cox * self.width * self.length
            flicker = card.kf * abs(info["ids"])**card.af / gate_cap
        return [NoiseSource(self.name, "channel", drain, source,
                            white=white, flicker=flicker)]

    def init_transient(self, operating_point, temperature: float) -> dict:
        """Freeze the gate capacitances at the DC bias and record their state.

        The level-1 capacitances vary only mildly between regions; freezing
        them at the operating point keeps the companion models linear (and
        charge-conserving) while the large-signal drain current stays fully
        nonlinear -- slewing is limited by the bias currents, as in the real
        amplifier.
        """
        voltages = operating_point.voltages
        op = self.operating_point(voltages, temperature)
        v_d, v_g, v_s = self._terminal_voltages(voltages)
        return {"cgs": op.cgs, "cgd": op.cgd,
                "v_gs": v_g - v_s, "i_gs": 0.0,
                "v_gd": v_g - v_d, "i_gd": 0.0}

    def stamp_transient(self, stamper, voltages: np.ndarray, state: dict,
                        dt: float, temperature: float) -> None:
        # Nonlinear drain current: identical linearised stamps to DC.
        self.stamp_dc(stamper, voltages, temperature)
        drain, gate, source, _ = self.node_indices
        stamp_capacitor_companion(stamper, gate, source, state["cgs"],
                                  state, "v_gs", "i_gs", dt)
        stamp_capacitor_companion(stamper, gate, drain, state["cgd"],
                                  state, "v_gd", "i_gd", dt)

    def commit_transient(self, voltages: np.ndarray, state: dict, dt: float,
                         temperature: float) -> None:
        v_d, v_g, v_s = self._terminal_voltages(voltages)
        commit_capacitor_companion(state["cgs"], state, "v_gs", "i_gs", dt,
                                   v_g - v_s)
        commit_capacitor_companion(state["cgd"], state, "v_gd", "i_gd", dt,
                                   v_g - v_d)

    def transient_batch_context(self, siblings, temperatures):
        # Same constants (and the same mixed-polarity fallback) as DC: the
        # frozen gate capacitances live per design in the transient state.
        return self.dc_batch_context(siblings, temperatures)

    def stamp_transient_batch(self, stamper, siblings, voltages, states,
                              times, dts, trap, temperatures,
                              context=None) -> None:
        if context is None:
            context = self.transient_batch_context(siblings, temperatures)
        if context is None:
            stamper.stamp_device_transient_serial(siblings, voltages, states,
                                                  dts, temperatures)
            return
        self.stamp_dc_batch(stamper, siblings, voltages, temperatures, context)
        drain, gate, source, _ = self.node_indices
        cgs = np.array([state["cgs"] for state in states])
        cgd = np.array([state["cgd"] for state in states])
        v_gs = np.array([state["v_gs"] for state in states])
        i_gs = np.array([state["i_gs"] for state in states])
        v_gd = np.array([state["v_gd"] for state in states])
        i_gd = np.array([state["i_gd"] for state in states])
        stamp_capacitor_companion_batch(stamper, gate, source, cgs, v_gs,
                                        i_gs, dts, trap)
        stamp_capacitor_companion_batch(stamper, gate, drain, cgd, v_gd,
                                        i_gd, dts, trap)

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        op = self.operating_point(voltages, temperature)
        return {
            "ids": op.ids, "vgs": op.vgs, "vds": op.vds, "vov": op.vov,
            "gm": op.gm, "gds": op.gds, "cgs": op.cgs, "cgd": op.cgd,
            "region": op.region,
        }
