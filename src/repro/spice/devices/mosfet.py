"""Level-1 (square-law) MOSFET model with channel-length modulation.

The synthetic 180 nm / 40 nm technology cards in :mod:`repro.pdk` supply the
model parameters.  The model provides both the large-signal equations used by
Newton-Raphson DC analysis and the small-signal quantities (gm, gds,
capacitances) used by AC analysis and by the analytical op-amp testbenches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.spice.devices.base import (
    Device,
    commit_capacitor_companion,
    stamp_capacitor_companion,
)


@dataclass(frozen=True)
class MosfetModel:
    """Technology parameters of one device polarity.

    Attributes
    ----------
    polarity:
        ``"nmos"`` or ``"pmos"``.
    vth0:
        Zero-bias threshold voltage magnitude (V).
    kp:
        Process transconductance ``mu * Cox`` (A/V^2).
    lambda_per_um:
        Channel-length-modulation coefficient for a 1 um device; the
        effective lambda scales as ``lambda_per_um / L_um``.
    cox:
        Gate-oxide capacitance per area (F/m^2).
    cgdo:
        Gate-drain overlap capacitance per width (F/m).
    vth_tc:
        Threshold temperature coefficient (V/K), negative for both polarities.
    mobility_temp_exponent:
        ``kp(T) = kp * (T/Tnom)^exponent`` (exponent is negative).
    """

    polarity: str
    vth0: float
    kp: float
    lambda_per_um: float
    cox: float
    cgdo: float
    vth_tc: float = -1e-3
    mobility_temp_exponent: float = -1.5

    def __post_init__(self) -> None:
        if self.polarity not in ("nmos", "pmos"):
            raise ValueError(f"polarity must be 'nmos' or 'pmos', got {self.polarity!r}")

    @property
    def sign(self) -> float:
        """+1 for NMOS, -1 for PMOS (applied to terminal voltages)."""
        return 1.0 if self.polarity == "nmos" else -1.0

    def vth_at(self, temperature_celsius: float) -> float:
        return self.vth0 + self.vth_tc * (temperature_celsius - 27.0)

    def kp_at(self, temperature_celsius: float) -> float:
        t_ratio = (temperature_celsius + 273.15) / 300.15
        return self.kp * t_ratio**self.mobility_temp_exponent

    def effective_lambda(self, length: float) -> float:
        """Channel-length modulation for a device of length ``length`` metres."""
        length_um = max(length * 1e6, 1e-3)
        return self.lambda_per_um / length_um


@dataclass
class MosfetOperatingPoint:
    """Small-signal quantities of one MOSFET at its DC bias.

    Voltages follow the device's own polarity convention (``vgs``/``vds`` are
    source-referenced magnitudes for PMOS as well), so ``vov > 0`` always
    means the channel is on.
    """

    ids: float
    vgs: float
    vds: float
    vov: float
    gm: float
    gds: float
    region: str
    cgs: float
    cgd: float


def square_law(model: MosfetModel, width: float, length: float,
               vgs: float, vds: float, temperature: float = 27.0,
               ) -> MosfetOperatingPoint:
    """Evaluate the square-law model (``vgs``/``vds`` in polarity convention, ``vds >= 0``)."""
    vth = model.vth_at(temperature)
    kp = model.kp_at(temperature)
    beta = kp * width / max(length, 1e-9)
    lam = model.effective_lambda(length)
    vov = vgs - vth
    vds = max(vds, 0.0)
    cgs = (2.0 / 3.0) * width * length * model.cox + model.cgdo * width
    cgd = model.cgdo * width

    if vov <= 0.0:
        # Sub-threshold: a tiny exponential leakage keeps the Jacobian finite
        # and gives Newton a gradient to climb out of cutoff.
        ids = 1e-12 * np.exp(np.clip(vov / 0.08, -60.0, 0.0)) * (1.0 + lam * vds)
        gm = ids / 0.08
        gds = 1e-9
        return MosfetOperatingPoint(ids=float(ids), vgs=vgs, vds=vds, vov=vov,
                                    gm=float(gm), gds=gds, region="cutoff",
                                    cgs=cgs, cgd=cgd)
    if vds < vov:
        ids = beta * (vov * vds - 0.5 * vds**2) * (1.0 + lam * vds)
        gm = beta * vds * (1.0 + lam * vds)
        gds = (beta * (vov - vds) * (1.0 + lam * vds)
               + beta * (vov * vds - 0.5 * vds**2) * lam)
        region = "triode"
        cgs = 0.5 * width * length * model.cox + model.cgdo * width
        cgd = 0.5 * width * length * model.cox + model.cgdo * width
    else:
        ids = 0.5 * beta * vov**2 * (1.0 + lam * vds)
        gm = beta * vov * (1.0 + lam * vds)
        gds = 0.5 * beta * vov**2 * lam + 1e-12
        region = "saturation"
    return MosfetOperatingPoint(ids=float(ids), vgs=float(vgs), vds=float(vds),
                                vov=float(vov), gm=float(max(gm, 1e-15)),
                                gds=float(max(gds, 1e-12)), region=region,
                                cgs=float(cgs), cgd=float(cgd))


class Mosfet(Device):
    """A four-terminal MOSFET (drain, gate, source, bulk).

    The bulk terminal is kept for netlist fidelity but the level-1 equations
    ignore body effect.
    """

    def __init__(self, name: str, drain: str, gate: str, source: str, bulk: str,
                 model: MosfetModel, width: float, length: float):
        super().__init__(name, (drain, gate, source, bulk))
        if width <= 0 or length <= 0:
            raise ValueError(f"width and length of {name} must be positive")
        self.model = model
        self.width = float(width)
        self.length = float(length)

    @property
    def is_nonlinear(self) -> bool:
        return True

    # ------------------------------------------------------------------ #
    # large-signal evaluation                                             #
    # ------------------------------------------------------------------ #
    def _terminal_voltages(self, voltages: np.ndarray) -> tuple[float, float, float]:
        drain, gate, source, _ = self.node_indices
        v_d = 0.0 if drain < 0 else float(voltages[drain])
        v_g = 0.0 if gate < 0 else float(voltages[gate])
        v_s = 0.0 if source < 0 else float(voltages[source])
        return v_d, v_g, v_s

    def _ids_and_derivatives(self, v_d: float, v_g: float, v_s: float,
                             temperature: float,
                             ) -> tuple[float, float, float, float, MosfetOperatingPoint]:
        """Drain-to-source current and its partials w.r.t. (v_d, v_g, v_s).

        Handles both polarities and drain/source swapping so the Newton
        iteration sees a continuous, consistent model everywhere.
        """
        if self.model.polarity == "nmos":
            if v_d >= v_s:
                op = square_law(self.model, self.width, self.length,
                                v_g - v_s, v_d - v_s, temperature)
                return op.ids, op.gds, op.gm, -(op.gm + op.gds), op
            op = square_law(self.model, self.width, self.length,
                            v_g - v_d, v_s - v_d, temperature)
            return -op.ids, op.gm + op.gds, -op.gm, -op.gds, op
        # PMOS: conduction when the source is above the drain.
        if v_s >= v_d:
            op = square_law(self.model, self.width, self.length,
                            v_s - v_g, v_s - v_d, temperature)
            return -op.ids, op.gds, op.gm, -(op.gm + op.gds), op
        op = square_law(self.model, self.width, self.length,
                        v_d - v_g, v_d - v_s, temperature)
        return op.ids, op.gm + op.gds, -op.gm, -op.gds, op

    def operating_point(self, voltages: np.ndarray, temperature: float) -> MosfetOperatingPoint:
        v_d, v_g, v_s = self._terminal_voltages(voltages)
        _, _, _, _, op = self._ids_and_derivatives(v_d, v_g, v_s, temperature)
        return op

    # ------------------------------------------------------------------ #
    # stamping                                                            #
    # ------------------------------------------------------------------ #
    def stamp_dc(self, stamper, voltages: np.ndarray, temperature: float) -> None:
        drain, gate, source, _ = self.node_indices
        v_d, v_g, v_s = self._terminal_voltages(voltages)
        i_ds, d_vd, d_vg, d_vs, _ = self._ids_and_derivatives(v_d, v_g, v_s, temperature)
        # KCL: +i_ds leaves the drain, enters the source.
        stamper.add_entry(drain, drain, d_vd)
        stamper.add_entry(drain, gate, d_vg)
        stamper.add_entry(drain, source, d_vs)
        stamper.add_entry(source, drain, -d_vd)
        stamper.add_entry(source, gate, -d_vg)
        stamper.add_entry(source, source, -d_vs)
        equivalent = i_ds - (d_vd * v_d + d_vg * v_g + d_vs * v_s)
        stamper.add_current(drain, source, equivalent)

    def stamp_ac(self, stamper, omega: float, operating_point) -> None:
        drain, gate, source, _ = self.node_indices
        info = operating_point.device_info.get(self.name)
        if info is None:
            raise KeyError(f"no operating point recorded for {self.name}")
        gm, gds = info["gm"], info["gds"]
        cgs, cgd = info["cgs"], info["cgd"]
        # The small-signal model has the same form for NMOS and PMOS.
        stamper.add_transconductance(drain, source, gate, source, gm)
        stamper.add_conductance(drain, source, gds)
        stamper.add_conductance(gate, source, 1j * omega * cgs)
        stamper.add_conductance(gate, drain, 1j * omega * cgd)

    def init_transient(self, operating_point, temperature: float) -> dict:
        """Freeze the gate capacitances at the DC bias and record their state.

        The level-1 capacitances vary only mildly between regions; freezing
        them at the operating point keeps the companion models linear (and
        charge-conserving) while the large-signal drain current stays fully
        nonlinear -- slewing is limited by the bias currents, as in the real
        amplifier.
        """
        voltages = operating_point.voltages
        op = self.operating_point(voltages, temperature)
        v_d, v_g, v_s = self._terminal_voltages(voltages)
        return {"cgs": op.cgs, "cgd": op.cgd,
                "v_gs": v_g - v_s, "i_gs": 0.0,
                "v_gd": v_g - v_d, "i_gd": 0.0}

    def stamp_transient(self, stamper, voltages: np.ndarray, state: dict,
                        dt: float, temperature: float) -> None:
        # Nonlinear drain current: identical linearised stamps to DC.
        self.stamp_dc(stamper, voltages, temperature)
        drain, gate, source, _ = self.node_indices
        stamp_capacitor_companion(stamper, gate, source, state["cgs"],
                                  state, "v_gs", "i_gs", dt)
        stamp_capacitor_companion(stamper, gate, drain, state["cgd"],
                                  state, "v_gd", "i_gd", dt)

    def commit_transient(self, voltages: np.ndarray, state: dict, dt: float,
                         temperature: float) -> None:
        v_d, v_g, v_s = self._terminal_voltages(voltages)
        commit_capacitor_companion(state["cgs"], state, "v_gs", "i_gs", dt,
                                   v_g - v_s)
        commit_capacitor_companion(state["cgd"], state, "v_gd", "i_gd", dt,
                                   v_g - v_d)

    def operating_info(self, voltages: np.ndarray, temperature: float) -> dict[str, float]:
        op = self.operating_point(voltages, temperature)
        return {
            "ids": op.ids, "vgs": op.vgs, "vds": op.vds, "vov": op.vov,
            "gm": op.gm, "gds": op.gds, "cgs": op.cgs, "cgd": op.cgd,
            "region": op.region,
        }
