"""DC and temperature sweeps built on the operating-point solver."""

from __future__ import annotations

import warnings
from typing import Callable

import numpy as np

from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.devices.base import Device
from repro.spice.netlist import Circuit


def dc_sweep(circuit: Circuit, device: str | Device,
             attribute: str = "dc", values: np.ndarray | None = None,
             observe: str | None = None,
             temperature: float = 27.0) -> tuple[np.ndarray, np.ndarray]:
    """Sweep one device attribute and record one node voltage.

    Parameters
    ----------
    device:
        Device name (or instance) whose ``attribute`` is swept -- e.g.
        ``("VIN", "dc")`` for an input-source sweep.  The attribute's
        original value is restored when the sweep finishes (or raises), so
        the circuit comes back unmutated and other analyses on the same
        netlist see the configured bias, not the last sweep value.
    attribute:
        Attribute to sweep (default ``"dc"``).
    values:
        The sweep values.
    observe:
        Node name whose DC voltage is recorded.

    Returns
    -------
    (values, observed_voltages)

    .. deprecated::
        The old ``dc_sweep(circuit, set_value_callback, values, observe)``
        form still works but leaves the circuit mutated at the last sweep
        value (the callback is opaque, so nothing can be restored); pass
        ``(device, attribute, values)`` instead.
    """
    if callable(device) and not isinstance(device, Device):
        # Legacy callback form: (circuit, set_value, values[, observe]).
        set_value = device
        if values is None and observe is not None:
            values = attribute
        elif observe is None:
            values, observe = attribute, values
        warnings.warn(
            "dc_sweep(circuit, set_value_callback, ...) is deprecated and "
            "leaves the circuit mutated at the last sweep value; call "
            "dc_sweep(circuit, device, attribute, values, observe) instead",
            DeprecationWarning, stacklevel=2)
        return _dc_sweep_values(circuit, set_value, values, observe, temperature)

    if values is None or observe is None:
        raise ValueError("dc_sweep needs values and observe")
    target = circuit.device(device) if isinstance(device, str) else device
    original = getattr(target, attribute)  # AttributeError = caller bug

    def set_value(value: float) -> None:
        setattr(target, attribute, value)

    try:
        return _dc_sweep_values(circuit, set_value, values, observe, temperature)
    finally:
        setattr(target, attribute, original)


def _dc_sweep_values(circuit: Circuit, set_value: Callable[[float], None],
                     values: np.ndarray, observe: str,
                     temperature: float) -> tuple[np.ndarray, np.ndarray]:
    """The sweep loop (warm-starting each solve from the previous one)."""
    values = np.asarray(values, dtype=float)
    observed = np.empty(values.shape[0])
    previous: np.ndarray | None = None
    for index, value in enumerate(values):
        set_value(float(value))
        op = dc_operating_point(circuit, temperature=temperature,
                                initial_guess=previous)
        observed[index] = op.voltage(observe)
        previous = op.voltages
    return values, observed


def temperature_sweep(circuit: Circuit, temperatures: np.ndarray,
                      observe: str) -> tuple[np.ndarray, np.ndarray, list[OperatingPoint]]:
    """Solve the operating point across temperature and record one node.

    This is the analysis behind the bandgap temperature-coefficient metric.
    """
    temperatures = np.asarray(temperatures, dtype=float)
    observed = np.empty(temperatures.shape[0])
    points: list[OperatingPoint] = []
    previous: np.ndarray | None = None
    for index, temperature in enumerate(temperatures):
        op = dc_operating_point(circuit, temperature=float(temperature),
                                initial_guess=previous)
        observed[index] = op.voltage(observe)
        points.append(op)
        previous = op.voltages
    return temperatures, observed, points


def temperature_coefficient_ppm(temperatures: np.ndarray, values: np.ndarray) -> float:
    """Box-method temperature coefficient in ppm/degC.

    ``TC = (max - min) / (mean * temperature_span) * 1e6`` -- the standard
    figure reported for bandgap references.
    """
    temperatures = np.asarray(temperatures, dtype=float)
    values = np.asarray(values, dtype=float)
    span = float(temperatures.max() - temperatures.min())
    mean = float(np.mean(values))
    if span <= 0 or abs(mean) < 1e-18:
        return float("inf")
    return float((values.max() - values.min()) / (abs(mean) * span) * 1e6)
