"""DC and temperature sweeps built on the operating-point solver."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.netlist import Circuit


def dc_sweep(circuit: Circuit, set_value: Callable[[float], None],
             values: np.ndarray, observe: str,
             temperature: float = 27.0) -> tuple[np.ndarray, np.ndarray]:
    """Sweep a source value and record one node voltage.

    Parameters
    ----------
    set_value:
        Callback that mutates the circuit for each sweep value (e.g. sets a
        :class:`VoltageSource` ``dc`` attribute).
    values:
        The sweep values.
    observe:
        Node name whose DC voltage is recorded.

    Returns
    -------
    (values, observed_voltages)
    """
    values = np.asarray(values, dtype=float)
    observed = np.empty(values.shape[0])
    previous: np.ndarray | None = None
    for index, value in enumerate(values):
        set_value(float(value))
        op = dc_operating_point(circuit, temperature=temperature,
                                initial_guess=previous)
        observed[index] = op.voltage(observe)
        previous = op.voltages
    return values, observed


def temperature_sweep(circuit: Circuit, temperatures: np.ndarray,
                      observe: str) -> tuple[np.ndarray, np.ndarray, list[OperatingPoint]]:
    """Solve the operating point across temperature and record one node.

    This is the analysis behind the bandgap temperature-coefficient metric.
    """
    temperatures = np.asarray(temperatures, dtype=float)
    observed = np.empty(temperatures.shape[0])
    points: list[OperatingPoint] = []
    previous: np.ndarray | None = None
    for index, temperature in enumerate(temperatures):
        op = dc_operating_point(circuit, temperature=float(temperature),
                                initial_guess=previous)
        observed[index] = op.voltage(observe)
        points.append(op)
        previous = op.voltages
    return temperatures, observed, points


def temperature_coefficient_ppm(temperatures: np.ndarray, values: np.ndarray) -> float:
    """Box-method temperature coefficient in ppm/degC.

    ``TC = (max - min) / (mean * temperature_span) * 1e6`` -- the standard
    figure reported for bandgap references.
    """
    temperatures = np.asarray(temperatures, dtype=float)
    values = np.asarray(values, dtype=float)
    span = float(temperatures.max() - temperatures.min())
    mean = float(np.mean(values))
    if span <= 0 or abs(mean) < 1e-18:
        return float("inf")
    return float((values.max() - values.min()) / (abs(mean) * span) * 1e6)
