"""A small SPICE-like analog circuit simulator.

The paper evaluates designs with ngspice on proprietary PDKs; offline, this
package provides the simulation substrate instead: modified nodal analysis
(MNA) with

* linear devices (resistors, capacitors, inductors, independent and
  controlled sources, time-varying stimulus waveforms),
* nonlinear devices (level-1 / square-law MOSFETs, diodes and diode-connected
  BJTs),
* Newton-Raphson DC operating-point analysis with gmin stepping and damping,
* complex-valued AC small-signal analysis,
* adaptive-timestep transient analysis (backward-Euler startup, trapezoidal
  integration, companion models), and
* DC / temperature sweeps.

The circuit testbenches in :mod:`repro.circuits` build small-signal
equivalent networks with these devices and extract gain, bandwidth, phase
margin and PSRR from the AC results, plus slew rate, settling time and
overshoot from transient step responses.
"""

from repro.spice.netlist import Circuit, GROUND
from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Inductor,
    Mosfet,
    MosfetModel,
    PulseWaveform,
    PWLWaveform,
    Resistor,
    SineWaveform,
    StepWaveform,
    VCCS,
    VCVS,
    VoltageSource,
    Waveform,
)
from repro.spice.dc import (
    OperatingPoint,
    dc_operating_point,
    dc_operating_point_batch,
)
from repro.spice.ac import ACResult, ac_analysis, ac_analysis_batch
from repro.spice.noise import NoiseResult, noise_analysis
from repro.spice.mna import (
    SPARSE_SIZE_THRESHOLD,
    BatchStamper,
    SparseBatchStamper,
    SparseStamper,
    Stamper,
)
from repro.spice.transient import (
    TransientResult,
    transient_analysis,
    transient_analysis_batch,
    transient_operating_point,
    transient_operating_point_batch,
)
from repro.spice.sweep import dc_sweep, temperature_sweep

__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Diode",
    "Mosfet",
    "MosfetModel",
    "Waveform",
    "StepWaveform",
    "PulseWaveform",
    "PWLWaveform",
    "SineWaveform",
    "OperatingPoint",
    "dc_operating_point",
    "dc_operating_point_batch",
    "ACResult",
    "ac_analysis",
    "ac_analysis_batch",
    "NoiseResult",
    "noise_analysis",
    "Stamper",
    "BatchStamper",
    "SparseStamper",
    "SparseBatchStamper",
    "SPARSE_SIZE_THRESHOLD",
    "TransientResult",
    "transient_analysis",
    "transient_analysis_batch",
    "transient_operating_point",
    "transient_operating_point_batch",
    "dc_sweep",
    "temperature_sweep",
]
