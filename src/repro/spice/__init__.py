"""A small SPICE-like analog circuit simulator.

The paper evaluates designs with ngspice on proprietary PDKs; offline, this
package provides the simulation substrate instead: modified nodal analysis
(MNA) with

* linear devices (resistors, capacitors, independent and controlled sources),
* nonlinear devices (level-1 / square-law MOSFETs, diodes and diode-connected
  BJTs),
* Newton-Raphson DC operating-point analysis with gmin stepping and damping,
* complex-valued AC small-signal analysis, and
* DC / temperature sweeps.

The circuit testbenches in :mod:`repro.circuits` build small-signal
equivalent networks with these devices and extract gain, bandwidth, phase
margin and PSRR from the AC results.
"""

from repro.spice.netlist import Circuit, GROUND
from repro.spice.devices import (
    Capacitor,
    CurrentSource,
    Diode,
    Mosfet,
    MosfetModel,
    Resistor,
    VCCS,
    VCVS,
    VoltageSource,
)
from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.ac import ACResult, ac_analysis
from repro.spice.sweep import dc_sweep, temperature_sweep

__all__ = [
    "Circuit",
    "GROUND",
    "Resistor",
    "Capacitor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Diode",
    "Mosfet",
    "MosfetModel",
    "OperatingPoint",
    "dc_operating_point",
    "ACResult",
    "ac_analysis",
    "dc_sweep",
    "temperature_sweep",
]
