"""Newton-Raphson DC operating-point analysis with gmin stepping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError
from repro.spice.netlist import Circuit


@dataclass
class OperatingPoint:
    """Solved DC operating point.

    Attributes
    ----------
    voltages:
        Raw solution vector (node voltages then branch currents).
    node_voltages:
        Mapping node name -> DC voltage.
    device_info:
        Mapping device name -> small-signal / bias dictionary (``gm``,
        ``gds``, ``ids``, ``region``, ...), consumed by AC analysis.
    converged:
        Whether Newton iteration met the tolerance.
    iterations:
        Newton iterations used (summed across gmin steps).
    temperature:
        Analysis temperature in Celsius.
    """

    voltages: np.ndarray
    node_voltages: dict[str, float]
    device_info: dict[str, dict[str, float]] = field(default_factory=dict)
    converged: bool = True
    iterations: int = 0
    temperature: float = 27.0

    def voltage(self, node: str) -> float:
        if node in ("0", "gnd", "vss"):
            return 0.0
        return self.node_voltages[node]


def _newton_solve(circuit: Circuit, start: np.ndarray, temperature: float,
                  gmin: float, max_iterations: int, tolerance: float,
                  damping: float) -> tuple[np.ndarray, bool, int]:
    """Damped Newton iteration at a fixed gmin level."""
    voltages = start.copy()
    for iteration in range(1, max_iterations + 1):
        stamper = circuit.stamp_dc(voltages, temperature, gmin=gmin)
        try:
            new_voltages = stamper.solve()
        except np.linalg.LinAlgError:
            new_voltages = stamper.solve_lstsq()
        if not np.all(np.isfinite(new_voltages)):
            return voltages, False, iteration
        delta = new_voltages - voltages
        # Limit the per-iteration voltage step (classic SPICE damping).
        step = np.clip(delta, -damping, damping)
        voltages = voltages + step
        if np.max(np.abs(delta)) < tolerance:
            return voltages, True, iteration
    return voltages, False, max_iterations


def dc_operating_point(circuit: Circuit, temperature: float = 27.0,
                       max_iterations: int = 150, tolerance: float = 1e-9,
                       damping: float = 0.5,
                       gmin_steps: tuple[float, ...] = (1e-2, 1e-4, 1e-6, 1e-9, 1e-12),
                       initial_guess: np.ndarray | None = None,
                       raise_on_failure: bool = False) -> OperatingPoint:
    """Find the DC operating point of ``circuit``.

    gmin stepping: the circuit is first solved with a large conductance from
    every node to ground (which makes the system nearly linear), then the
    conductance is reduced step by step, warm-starting each Newton solve from
    the previous solution.

    When Newton fails at the final gmin the best solution found is returned
    with ``converged=False`` (or :class:`ConvergenceError` is raised when
    ``raise_on_failure`` is set) -- the circuit testbenches treat
    non-converged designs as constraint violations rather than crashes.
    """
    circuit.ensure_indices()
    size = circuit.n_nodes + circuit.n_branches
    voltages = np.zeros(size) if initial_guess is None else np.asarray(
        initial_guess, dtype=float).copy()
    if voltages.shape[0] != size:
        raise ValueError(f"initial_guess must have length {size}")

    total_iterations = 0
    converged = False
    for gmin in gmin_steps:
        voltages, converged, used = _newton_solve(
            circuit, voltages, temperature, gmin, max_iterations, tolerance, damping)
        total_iterations += used
        if not converged and gmin == gmin_steps[-1]:
            break
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"DC analysis of {circuit.title!r} did not converge after "
            f"{total_iterations} Newton iterations")

    node_voltages = {name: float(voltages[index])
                     for name, index in zip(circuit.nodes, range(circuit.n_nodes))}
    device_info = {device.name: device.operating_info(voltages, temperature)
                   for device in circuit.devices}
    return OperatingPoint(voltages=voltages, node_voltages=node_voltages,
                          device_info=device_info, converged=converged,
                          iterations=total_iterations, temperature=temperature)
