"""Newton-Raphson DC operating-point analysis with gmin stepping.

Two drivers share one model of the iteration:

* :func:`dc_operating_point` -- classic serial Newton on one circuit;
* :func:`dc_operating_point_batch` -- the same gmin ladder on ``B``
  topology-identical circuits at once, assembling one ``(B, size, size)``
  tensor per iteration (or one shared-pattern sparse batch) and solving it
  with a single stacked call.  Per-design convergence masking freezes
  finished designs exactly where the serial iteration would stop them, so
  each design's iterate sequence -- and hence its final
  :class:`OperatingPoint` -- is bit-identical to a serial solve of that
  design alone with the same solver.

Solver selection (``solver=`` on both drivers): ``"dense"`` uses the LAPACK
path, ``"sparse"`` CSR + SuperLU, and ``"auto"`` (default) picks sparse once
the MNA system size reaches
:data:`repro.spice.mna.SPARSE_SIZE_THRESHOLD`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import telemetry
from repro.errors import ConvergenceError, NetlistError
from repro.spice.mna import (
    HAVE_SCIPY_SPARSE,
    SPARSE_SIZE_THRESHOLD,
    BatchStamper,
    SparseBatchStamper,
)
from repro.spice.netlist import Circuit
from repro.telemetry import SolveStats


@dataclass
class OperatingPoint:
    """Solved DC operating point.

    Attributes
    ----------
    voltages:
        Raw solution vector (node voltages then branch currents).
    node_voltages:
        Mapping node name -> DC voltage.
    device_info:
        Mapping device name -> small-signal / bias dictionary (``gm``,
        ``gds``, ``ids``, ``region``, ...), consumed by AC analysis.
    converged:
        Whether Newton iteration met the tolerance.
    iterations:
        Newton iterations used (summed across gmin steps).
    temperature:
        Analysis temperature in Celsius.
    stats:
        Optional :class:`~repro.telemetry.SolveStats` telemetry metadata.
        Excluded from equality (``compare=False``) and from cache keys
        (those hash only design parameter bytes), so it never perturbs
        bit-identity contracts.
    """

    voltages: np.ndarray
    node_voltages: dict[str, float]
    device_info: dict[str, dict[str, float]] = field(default_factory=dict)
    converged: bool = True
    iterations: int = 0
    temperature: float = 27.0
    stats: SolveStats | None = field(default=None, compare=False, repr=False)

    def voltage(self, node: str) -> float:
        if node in ("0", "gnd", "vss"):
            return 0.0
        return self.node_voltages[node]


def _resolve_solver(size: int, solver: str) -> str:
    """Resolve a ``solver=`` argument (``"auto"``/``"dense"``/``"sparse"``)."""
    if solver == "auto":
        if HAVE_SCIPY_SPARSE and size >= SPARSE_SIZE_THRESHOLD:
            return "sparse"
        return "dense"
    if solver not in ("dense", "sparse"):
        raise ValueError(f"solver must be 'auto', 'dense' or 'sparse', "
                         f"got {solver!r}")
    return solver


def _newton_solve(circuit: Circuit, start: np.ndarray, temperature: float,
                  gmin: float, max_iterations: int, tolerance: float,
                  damping: float, solver: str = "dense",
                  collect_residuals: bool = False,
                  ) -> tuple[np.ndarray, bool, int, float, int, list | None]:
    """Damped Newton iteration at a fixed gmin level.

    Returns ``(voltages, converged, iterations, residual, clamps,
    trajectory)``: ``residual`` is the last computed ``max|delta|`` (NaN if
    the solve bailed before any update), ``clamps`` counts voltage steps
    clipped by the damping limiter, and ``trajectory`` lists the
    per-iteration residuals when ``collect_residuals`` is set (telemetry
    only -- the extra list appends never run on a disabled hot path).
    """
    voltages = start.copy()
    stamper = circuit.make_dc_stamper(solver)
    residual = float("nan")
    clamps = 0
    trajectory: list | None = [] if collect_residuals else None
    for iteration in range(1, max_iterations + 1):
        circuit.stamp_dc(voltages, temperature, gmin=gmin, stamper=stamper)
        try:
            new_voltages = stamper.solve()
        except np.linalg.LinAlgError:
            try:
                new_voltages = stamper.solve_lstsq()
            except np.linalg.LinAlgError:
                # lstsq's SVD can itself diverge on a non-finite system;
                # bail out rather than poison the next gmin step's warm start.
                return voltages, False, iteration, residual, clamps, trajectory
        if not np.all(np.isfinite(new_voltages)):
            return voltages, False, iteration, residual, clamps, trajectory
        delta = new_voltages - voltages
        abs_delta = np.abs(delta)
        # Limit the per-iteration voltage step (classic SPICE damping).
        step = np.clip(delta, -damping, damping)
        voltages = voltages + step
        residual = float(np.max(abs_delta))
        clamps += int(np.count_nonzero(abs_delta > damping))
        if trajectory is not None:
            trajectory.append(residual)
        if residual < tolerance:
            return voltages, True, iteration, residual, clamps, trajectory
    return voltages, False, max_iterations, residual, clamps, trajectory


#: Fallback schedule for solves the standard settings cannot crack: a much
#: denser gmin ladder with gentle damping.  Slower per attempt, so it only
#: runs after the standard ladder has already failed.
_RESCUE_GMIN_STEPS = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9,
                      1e-10, 1e-11, 1e-12)
_RESCUE_MAX_ITERATIONS = 200
_RESCUE_DAMPING = 0.1
#: The rescue ladder aborts once more than this many of its steps have
#: failed: rescuable chains recover within a step or two, while a
#: genuinely dead circuit fails every remaining level -- bailing out keeps
#: the cost of hopeless designs (common in random optimizer batches) to a
#: fraction of the full ladder.
_RESCUE_MAX_FAILED_STEPS = 2


def _gmin_ladder(circuit: Circuit, start: np.ndarray, temperature: float,
                 gmin_steps: tuple[float, ...], max_iterations: int,
                 tolerance: float, damping: float,
                 max_failed_steps: int | None = None, solver: str = "dense",
                 collect_residuals: bool = False,
                 ) -> tuple[np.ndarray, bool, int, dict]:
    """Run Newton down a gmin ladder, warm-starting each step.

    ``max_failed_steps`` aborts the ladder early once more than that many
    steps have failed to converge (``None`` never aborts -- the standard
    path's exact legacy semantics).

    The ``info`` dict carries solve statistics: per-step iteration counts,
    the final step's residual and gmin (what a failure message reports),
    total damping clamps, and -- only when ``collect_residuals`` -- the
    final step's residual trajectory.
    """
    voltages = start
    total_iterations = 0
    converged = False
    failed_steps = 0
    iterations_per_gmin: list[int] = []
    residual = float("nan")
    last_gmin = 0.0
    clamps = 0
    trajectory: list | None = None
    for gmin in gmin_steps:
        voltages, converged, used, residual, step_clamps, trajectory = (
            _newton_solve(circuit, voltages, temperature, gmin,
                          max_iterations, tolerance, damping, solver=solver,
                          collect_residuals=collect_residuals))
        total_iterations += used
        iterations_per_gmin.append(used)
        last_gmin = gmin
        clamps += step_clamps
        if not converged:
            failed_steps += 1
            if (max_failed_steps is not None
                    and failed_steps > max_failed_steps):
                break
    info = {"iterations_per_gmin": iterations_per_gmin, "residual": residual,
            "gmin": last_gmin, "clamps": clamps, "trajectory": trajectory}
    return voltages, converged, total_iterations, info


def dc_operating_point(circuit: Circuit, temperature: float = 27.0,
                       max_iterations: int = 150, tolerance: float = 1e-9,
                       damping: float = 0.5,
                       gmin_steps: tuple[float, ...] = (1e-2, 1e-4, 1e-6, 1e-9, 1e-12),
                       initial_guess: np.ndarray | None = None,
                       raise_on_failure: bool = False,
                       rescue: bool = True, solver: str = "auto") -> OperatingPoint:
    """Find the DC operating point of ``circuit``.

    gmin stepping: the circuit is first solved with a large conductance from
    every node to ground (which makes the system nearly linear), then the
    conductance is reduced step by step, warm-starting each Newton solve from
    the previous solution.

    When the standard ladder fails and ``rescue`` is set (the default), one
    fallback attempt runs a much denser gmin ladder with gentler damping
    from the same starting point, bailing out early once a few of its steps
    have failed (hopeless circuits stay cheap; rescuable chains recover
    within a step or two).  Solves that converge on the standard ladder
    never enter the fallback, so their solutions are bit-identical with and
    without it; the fallback exists for *marginally* hard circuits -- e.g.
    a bandgap whose mirror devices carry millivolt mismatch shifts -- where
    the coarse ladder's basin hopping overshoots.

    When Newton fails at the final gmin the best solution found is returned
    with ``converged=False`` (or :class:`ConvergenceError` is raised when
    ``raise_on_failure`` is set) -- the circuit testbenches treat
    non-converged designs as constraint violations rather than crashes.
    """
    circuit.ensure_indices()
    size = circuit.n_nodes + circuit.n_branches
    solver = _resolve_solver(size, solver)
    start = np.zeros(size) if initial_guess is None else np.asarray(
        initial_guess, dtype=float).copy()
    if start.shape[0] != size:
        raise ValueError(f"initial_guess must have length {size}")

    collect = telemetry.enabled()
    with telemetry.span("spice.dc", circuit=circuit.title):
        voltages, converged, total_iterations, info = _gmin_ladder(
            circuit, start.copy(), temperature, tuple(gmin_steps),
            max_iterations, tolerance, damping, solver=solver,
            collect_residuals=collect)
        iterations_per_gmin = list(info["iterations_per_gmin"])
        clamps = info["clamps"]
        rescue_entered = False
        if not converged and rescue:
            rescue_entered = True
            rescued, converged, used, info = _gmin_ladder(
                circuit, start.copy(), temperature, _RESCUE_GMIN_STEPS,
                _RESCUE_MAX_ITERATIONS, tolerance, _RESCUE_DAMPING,
                max_failed_steps=_RESCUE_MAX_FAILED_STEPS, solver=solver,
                collect_residuals=collect)
            total_iterations += used
            iterations_per_gmin.extend(info["iterations_per_gmin"])
            clamps += info["clamps"]
            if converged:
                voltages = rescued
    # The failure detail reports the last ladder actually walked (the
    # rescue ladder once entered) -- same on the batched path.
    trajectory = info["trajectory"] if not converged else None
    stats = SolveStats(
        analysis="dc", converged=converged, iterations=total_iterations,
        iterations_per_gmin=tuple(iterations_per_gmin),
        gmin_steps=len(iterations_per_gmin), rescue_entered=rescue_entered,
        damping_clamps=clamps, final_residual=info["residual"],
        final_gmin=info["gmin"],
        residual_trajectory=tuple(trajectory) if trajectory else ())
    telemetry.record_solve(stats)
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"DC analysis of {circuit.title!r} did not converge "
            f"{stats.failure_detail()}")

    node_voltages = {name: float(voltages[index])
                     for name, index in zip(circuit.nodes, range(circuit.n_nodes))}
    device_info = {device.name: device.operating_info(voltages, temperature)
                   for device in circuit.devices}
    return OperatingPoint(voltages=voltages, node_voltages=node_voltages,
                          device_info=device_info, converged=converged,
                          iterations=total_iterations, temperature=temperature,
                          stats=stats)


# --------------------------------------------------------------------- #
# batched Newton                                                         #
# --------------------------------------------------------------------- #
def _check_batch_topology(circuits: list[Circuit]) -> None:
    """Verify that every circuit in the batch is topology-identical.

    Batched assembly stacks per-design values on shared (row, col) slots, so
    the circuits must agree on node/branch layout and on the device sequence
    (classes, names and resolved indices); only parameter *values* may
    differ.
    """
    first = circuits[0]
    first.ensure_indices()
    for circuit in circuits[1:]:
        circuit.ensure_indices()
        if (circuit.n_nodes != first.n_nodes
                or circuit.n_branches != first.n_branches
                or circuit.nodes != first.nodes
                or len(circuit.devices) != len(first.devices)):
            raise NetlistError(
                f"batched DC analysis needs topology-identical circuits: "
                f"{circuit.title!r} does not match {first.title!r}")
        for reference, device in zip(first.devices, circuit.devices):
            if (type(device) is not type(reference)
                    or device.name != reference.name
                    or device.node_indices != reference.node_indices
                    or device.branch_indices != reference.branch_indices):
                raise NetlistError(
                    f"batched DC analysis needs topology-identical circuits: "
                    f"device {device.name!r} of {circuit.title!r} does not "
                    f"match {first.title!r}")


class _BatchAssembler:
    """Assembles the batched DC system for any active subset of designs.

    Built once per batched solve: transposes the batch into per-device
    sibling columns, precomputes each device's vectorized context over the
    *full* batch, and then stamps arbitrary active sub-batches by slicing
    those contexts row-wise -- convergence masking never re-derives model
    constants.
    """

    def __init__(self, circuits: list[Circuit], temperatures: np.ndarray,
                 solver: str):
        first = circuits[0]
        self.n_nodes = first.n_nodes
        self.n_branches = first.n_branches
        self.size = self.n_nodes + self.n_branches
        self.temperatures = temperatures
        self.solver = solver
        # Telemetry counters: convergence-mask occupancy (active rows per
        # assembled iteration over the full batch) and sparse pattern reuse.
        self.total_designs = len(circuits)
        self.assemblies = 0
        self.active_rows = 0
        self.columns = [tuple(circuit.devices[position] for circuit in circuits)
                        for position in range(len(first.devices))]
        self.contexts = [column[0].dc_batch_context(list(column), temperatures)
                         for column in self.columns]
        # Fusion plan: maximal runs of >=2 consecutive same-class fusable
        # columns stamp through one fused kernel (one model evaluation over
        # all rows), everything else stamps per column.  Only *consecutive*
        # columns fuse, and the fused kernel stamps rows in original order,
        # so per-cell accumulation order -- and therefore bitwise results --
        # match the serial device loop exactly.
        self.plan: list[tuple[str, int]] = []
        self.fused: list[tuple[type, list, dict, dict]] = []
        run: list[int] = []

        def flush() -> None:
            if len(run) >= 2:
                devices = [self.columns[position][0] for position in run]
                cls = type(devices[0])
                params = {key: np.stack([self.contexts[position][key]
                                         for position in run])
                          for key in self.contexts[run[0]]}
                self.plan.append(("fused", len(self.fused)))
                self.fused.append((cls, devices,
                                   cls.dc_batch_fused_layout(devices), params))
            else:
                self.plan.extend(("column", position) for position in run)
            run.clear()

        for position, (column, context) in enumerate(zip(self.columns,
                                                         self.contexts)):
            fusable = (context is not None
                       and getattr(column[0], "dc_batch_fusable", False))
            if not fusable:
                flush()
                self.plan.append(("column", position))
                continue
            if run and type(self.columns[run[-1]][0]) is not type(column[0]):
                flush()
            run.append(position)
        flush()
        # Sub-batch gathers are memoized: the active set only shrinks a
        # handful of times per ladder, while stamping runs every iteration.
        self._gather_cache: dict[bytes, tuple] = {}
        self._dense_stamper: BatchStamper | None = None
        self._sparse_stamper: SparseBatchStamper | None = None
        self._sparse_gmin: bool | None = None

    def _gather(self, indices: np.ndarray) -> tuple:
        key = indices.tobytes()
        cached = self._gather_cache.get(key)
        if cached is None:
            index_list = indices.tolist()
            siblings = [[column[i] for i in index_list]
                        for column in self.columns]
            contexts = [None if context is None
                        else {name: values[indices]
                              for name, values in context.items()}
                        for context in self.contexts]
            temperatures = self.temperatures[indices]
            fused_params = [{name: values[:, indices]
                             for name, values in params.items()}
                            for _, _, _, params in self.fused]
            cached = (siblings, contexts, temperatures, fused_params)
            self._gather_cache[key] = cached
        return cached

    @property
    def occupancy(self) -> float:
        """Mean fraction of the batch active per assembled iteration."""
        if not self.assemblies:
            return float("nan")
        return self.active_rows / (self.assemblies * self.total_designs)

    @property
    def pattern_reuse_hits(self) -> int:
        stamper = self._sparse_stamper
        return stamper.pattern_reuse_hits if stamper is not None else 0

    def assemble(self, indices: np.ndarray, voltages: np.ndarray, gmin: float):
        """Stamp the active sub-batch ``indices`` at trial ``voltages``."""
        batch_size = len(indices)
        self.assemblies += 1
        self.active_rows += batch_size
        if self.solver == "sparse":
            # Reused like the dense stamper so the locked triplet pattern
            # (and its symbolic analysis) carries across Newton iterations.
            # A gmin-presence flip would change the stamp sequence against
            # the locked pattern, so it forces a rebuild.
            stamper = self._sparse_stamper
            if (stamper is None or stamper.batch_size != batch_size
                    or self._sparse_gmin != (gmin > 0.0)):
                stamper = SparseBatchStamper(batch_size, self.n_nodes,
                                             self.n_branches)
                self._sparse_stamper = stamper
                self._sparse_gmin = gmin > 0.0
            else:
                stamper.reset()
        else:
            stamper = self._dense_stamper
            if stamper is None or stamper.batch_size != batch_size:
                stamper = BatchStamper(batch_size, self.n_nodes,
                                       self.n_branches)
                self._dense_stamper = stamper
            else:
                stamper.reset()
        siblings, contexts, temperatures, fused_params = self._gather(indices)
        # One errstate frame for the whole stamp loop: device models produce
        # benign overflows/invalids on NaN trial voltages, and entering a
        # context manager per device per iteration is measurable overhead.
        with np.errstate(over="ignore", invalid="ignore"):
            for kind, ref in self.plan:
                if kind == "column":
                    self.columns[ref][0].stamp_dc_batch(
                        stamper, siblings[ref], voltages, temperatures,
                        contexts[ref])
                else:
                    cls, devices, layout, _ = self.fused[ref]
                    cls.stamp_dc_batch_fused(stamper, devices, layout,
                                             fused_params[ref], voltages)
        if gmin > 0.0:
            stamper.add_gmin(gmin)
        return stamper


def _solve_rows_individually(stamper, size: int) -> np.ndarray:
    """Per-design solve fallback once the stacked solve hits a singular design.

    Replicates the serial solver chain per design -- direct solve, then
    least-squares, then give up (a NaN row, which the finite check freezes
    exactly like the serial bail-out).
    """
    out = np.empty((stamper.batch_size, size))
    for b in range(stamper.batch_size):
        try:
            out[b] = stamper.solve_design(b)
        except np.linalg.LinAlgError:
            try:
                out[b] = stamper.solve_lstsq_design(b)
            except np.linalg.LinAlgError:
                out[b] = np.nan
    return out


def _newton_solve_batch(assembler: _BatchAssembler, voltages: np.ndarray,
                        indices: np.ndarray, gmin: float, max_iterations: int,
                        tolerance: float, damping: float,
                        collect_residuals: bool = False,
                        ) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                   np.ndarray, list | None]:
    """Damped Newton on the designs ``indices`` at a fixed gmin level.

    Updates the full-batch ``voltages`` rows in place and returns
    ``(converged, iterations, residual, clamps, trajectories)`` arrays
    aligned with ``indices``.  Designs freeze the moment their serial
    counterpart would stop -- after applying the final damped step on
    convergence, *before* applying anything on a non-finite solution -- so
    warm starts for the next ladder step are bit-identical to serial.

    ``residual`` mirrors the serial solver's reporting exactly: it holds
    each design's last finite-iteration ``max|delta|`` (NaN when a design
    bailed before its first update), so failure messages built from it are
    string-identical to the serial path's.
    """
    converged = np.zeros(len(indices), dtype=bool)
    iterations = np.zeros(len(indices), dtype=int)
    residual = np.full(len(indices), np.nan)
    clamps = np.zeros(len(indices), dtype=int)
    trajectories: list | None = (
        [[] for _ in range(len(indices))] if collect_residuals else None)
    alive = np.arange(len(indices))
    for iteration in range(1, max_iterations + 1):
        active = indices[alive]
        stamper = assembler.assemble(active, voltages[active], gmin)
        try:
            new_voltages = stamper.solve()
        except np.linalg.LinAlgError:
            new_voltages = _solve_rows_individually(stamper, assembler.size)
        finite = np.isfinite(new_voltages).all(axis=1)
        iterations[alive[~finite]] = iteration
        current = voltages[active]
        delta = new_voltages - current
        abs_delta = np.abs(delta)
        step = np.clip(delta, -damping, damping)
        row_residual = np.max(abs_delta, axis=1)
        # Rows with non-finite deltas compare False here and are already
        # excluded by ``finite``; NaNs propagate through max without noise.
        below_tolerance = row_residual < tolerance
        updated = alive[finite]
        # Serial never computes a delta on the bail-out iteration, so only
        # finite rows refresh their reported residual and clamp count.
        residual[updated] = row_residual[finite]
        clamps[updated] += np.count_nonzero(abs_delta > damping,
                                            axis=1)[finite]
        if trajectories is not None:
            for position, value in zip(updated, row_residual[finite]):
                trajectories[position].append(float(value))
        voltages[indices[updated]] = (current + step)[finite]
        newly_converged = finite & below_tolerance
        converged[alive[newly_converged]] = True
        iterations[alive[newly_converged]] = iteration
        alive = alive[finite & ~below_tolerance]
        if alive.size == 0:
            return converged, iterations, residual, clamps, trajectories
    iterations[alive] = max_iterations
    return converged, iterations, residual, clamps, trajectories


def _gmin_ladder_batch(assembler: _BatchAssembler, voltages: np.ndarray,
                       indices: np.ndarray, gmin_steps: tuple[float, ...],
                       max_iterations: int, tolerance: float, damping: float,
                       max_failed_steps: int | None = None,
                       collect_residuals: bool = False,
                       ) -> tuple[np.ndarray, np.ndarray, dict]:
    """The serial gmin ladder over a batch of designs.

    Mirrors :func:`_gmin_ladder` per design: every design runs *every*
    ladder step (warm-started from its previous step) regardless of earlier
    convergence, ``converged`` reports the final step's outcome, and
    ``max_failed_steps`` retires designs whose failure count exceeds it.
    The ``info`` dict carries the same per-design solve statistics as the
    serial ladder's, as arrays/lists aligned with ``indices``.
    """
    count = len(indices)
    converged = np.zeros(count, dtype=bool)
    total_iterations = np.zeros(count, dtype=int)
    failed_steps = np.zeros(count, dtype=int)
    on_ladder = np.ones(count, dtype=bool)
    residual = np.full(count, np.nan)
    final_gmin = np.zeros(count)
    clamps = np.zeros(count, dtype=int)
    iterations_per_gmin: list[list[int]] = [[] for _ in range(count)]
    trajectories: list[tuple] = [() for _ in range(count)]
    for gmin in gmin_steps:
        positions = np.nonzero(on_ladder)[0]
        if positions.size == 0:
            break
        step_converged, used, step_residual, step_clamps, step_traj = (
            _newton_solve_batch(assembler, voltages, indices[positions], gmin,
                                max_iterations, tolerance, damping,
                                collect_residuals=collect_residuals))
        total_iterations[positions] += used
        converged[positions] = step_converged
        # Failure reporting mirrors serial: the *last step a design ran*
        # provides its residual and gmin level.
        residual[positions] = step_residual
        final_gmin[positions] = gmin
        clamps[positions] += step_clamps
        for offset, position in enumerate(positions):
            iterations_per_gmin[position].append(int(used[offset]))
            if step_traj is not None:
                trajectories[position] = tuple(step_traj[offset])
        failed = positions[~step_converged]
        failed_steps[failed] += 1
        if max_failed_steps is not None:
            on_ladder[failed[failed_steps[failed] > max_failed_steps]] = False
    info = {"residual": residual, "gmin": final_gmin, "clamps": clamps,
            "iterations_per_gmin": iterations_per_gmin,
            "trajectories": trajectories}
    return converged, total_iterations, info


def dc_operating_point_batch(circuits, temperature=27.0,
                             max_iterations: int = 150,
                             tolerance: float = 1e-9, damping: float = 0.5,
                             gmin_steps: tuple[float, ...] = (1e-2, 1e-4, 1e-6, 1e-9, 1e-12),
                             initial_guess: np.ndarray | None = None,
                             raise_on_failure: bool = False,
                             rescue: bool = True, solver: str = "auto",
                             ) -> list[OperatingPoint]:
    """DC operating points of ``B`` topology-identical circuits at once.

    The whole batch walks the gmin ladder together: each Newton iteration
    assembles one ``(B, size, size)`` tensor (devices with a vectorized
    ``stamp_dc_batch`` fill all designs per stamp; the rest fall back to
    per-design stamping into batch slices) and one stacked solve advances
    every still-active design.  Converged designs freeze while stragglers
    iterate, and the rescue ladder runs only on the failed sub-batch, so the
    work tracks the hardest design rather than the batch size.

    ``temperature`` may be a scalar or a length-``B`` array (per-design
    corner temperatures).  Results are bit-identical to calling
    :func:`dc_operating_point` per circuit with the same ``solver``.
    """
    circuits = list(circuits)
    if not circuits:
        return []
    _check_batch_topology(circuits)
    first = circuits[0]
    size = first.n_nodes + first.n_branches
    batch_size = len(circuits)
    solver = _resolve_solver(size, solver)
    temperatures = np.asarray(temperature, dtype=float)
    if temperatures.ndim == 0:
        temperatures = np.full(batch_size, float(temperatures))
    elif temperatures.shape != (batch_size,):
        raise ValueError(f"temperature must be a scalar or have shape "
                         f"({batch_size},), got {temperatures.shape}")
    if initial_guess is None:
        start = np.zeros((batch_size, size))
    else:
        start = np.asarray(initial_guess, dtype=float).copy()
        if start.shape != (batch_size, size):
            raise ValueError(f"initial_guess must have shape "
                             f"({batch_size}, {size}), got {start.shape}")

    assembler = _BatchAssembler(circuits, temperatures, solver)
    indices = np.arange(batch_size)
    voltages = start.copy()
    collect = telemetry.enabled()
    rescue_mask = np.zeros(batch_size, dtype=bool)
    with telemetry.span("spice.dc_batch", batch=batch_size,
                        circuit=first.title):
        converged, total_iterations, info = _gmin_ladder_batch(
            assembler, voltages, indices, tuple(gmin_steps), max_iterations,
            tolerance, damping, collect_residuals=collect)
        if rescue and not converged.all():
            failed = indices[~converged]
            rescue_mask[failed] = True
            # The rescue ladder restarts the failed designs from the original
            # start, on a scratch copy: like the serial driver, a failed rescue
            # leaves the standard ladder's best solution in place.
            rescue_voltages = voltages.copy()
            rescue_voltages[failed] = start[failed]
            rescue_converged, used, rescue_info = _gmin_ladder_batch(
                assembler, rescue_voltages, failed, _RESCUE_GMIN_STEPS,
                _RESCUE_MAX_ITERATIONS, tolerance, _RESCUE_DAMPING,
                max_failed_steps=_RESCUE_MAX_FAILED_STEPS,
                collect_residuals=collect)
            total_iterations[failed] += used
            # The rescue ladder ran last for these designs, so it provides
            # their reported residual/gmin -- exactly as on the serial path.
            info["residual"][failed] = rescue_info["residual"]
            info["gmin"][failed] = rescue_info["gmin"]
            info["clamps"][failed] += rescue_info["clamps"]
            for offset, b in enumerate(failed):
                info["iterations_per_gmin"][b].extend(
                    rescue_info["iterations_per_gmin"][offset])
                if collect:
                    info["trajectories"][b] = rescue_info["trajectories"][offset]
            rescued = failed[rescue_converged]
            voltages[rescued] = rescue_voltages[rescued]
            converged[rescued] = True

    occupancy = assembler.occupancy
    reuse_hits = assembler.pattern_reuse_hits
    per_design_stats = []
    for b in range(batch_size):
        trajectory = info["trajectories"][b] if not converged[b] else ()
        per_design_stats.append(SolveStats(
            analysis="dc", converged=bool(converged[b]),
            iterations=int(total_iterations[b]),
            iterations_per_gmin=tuple(info["iterations_per_gmin"][b]),
            gmin_steps=len(info["iterations_per_gmin"][b]),
            rescue_entered=bool(rescue_mask[b]),
            damping_clamps=int(info["clamps"][b]),
            final_residual=float(info["residual"][b]),
            final_gmin=float(info["gmin"][b]),
            residual_trajectory=tuple(trajectory),
            batch_size=batch_size, batch_occupancy=occupancy,
            pattern_reuse_hits=reuse_hits))
    if telemetry.enabled():
        for stats in per_design_stats:
            telemetry.record_solve(stats)
        if occupancy == occupancy:  # skip the no-assembly NaN
            telemetry.observe("repro_batch_occupancy", occupancy,
                              telemetry.FRACTION_BUCKETS)
        telemetry.inc("repro_pattern_reuse_total", reuse_hits)

    if raise_on_failure and not converged.all():
        failures = indices[~converged]
        titles = [circuits[i].title for i in failures]
        raise ConvergenceError(
            f"batched DC analysis: {len(titles)} of {batch_size} designs did "
            f"not converge (first failure: {titles[0]!r} "
            f"{per_design_stats[failures[0]].failure_detail()})")

    results = []
    for b, circuit in enumerate(circuits):
        solution = voltages[b].copy()
        celsius = float(temperatures[b])
        node_voltages = {name: float(solution[index])
                         for name, index in zip(circuit.nodes,
                                                range(circuit.n_nodes))}
        device_info = {device.name: device.operating_info(solution, celsius)
                       for device in circuit.devices}
        results.append(OperatingPoint(
            voltages=solution, node_voltages=node_voltages,
            device_info=device_info, converged=bool(converged[b]),
            iterations=int(total_iterations[b]), temperature=celsius,
            stats=per_design_stats[b]))
    return results
