"""Newton-Raphson DC operating-point analysis with gmin stepping."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError
from repro.spice.netlist import Circuit


@dataclass
class OperatingPoint:
    """Solved DC operating point.

    Attributes
    ----------
    voltages:
        Raw solution vector (node voltages then branch currents).
    node_voltages:
        Mapping node name -> DC voltage.
    device_info:
        Mapping device name -> small-signal / bias dictionary (``gm``,
        ``gds``, ``ids``, ``region``, ...), consumed by AC analysis.
    converged:
        Whether Newton iteration met the tolerance.
    iterations:
        Newton iterations used (summed across gmin steps).
    temperature:
        Analysis temperature in Celsius.
    """

    voltages: np.ndarray
    node_voltages: dict[str, float]
    device_info: dict[str, dict[str, float]] = field(default_factory=dict)
    converged: bool = True
    iterations: int = 0
    temperature: float = 27.0

    def voltage(self, node: str) -> float:
        if node in ("0", "gnd", "vss"):
            return 0.0
        return self.node_voltages[node]


def _newton_solve(circuit: Circuit, start: np.ndarray, temperature: float,
                  gmin: float, max_iterations: int, tolerance: float,
                  damping: float) -> tuple[np.ndarray, bool, int]:
    """Damped Newton iteration at a fixed gmin level."""
    voltages = start.copy()
    for iteration in range(1, max_iterations + 1):
        stamper = circuit.stamp_dc(voltages, temperature, gmin=gmin)
        try:
            new_voltages = stamper.solve()
        except np.linalg.LinAlgError:
            new_voltages = stamper.solve_lstsq()
        if not np.all(np.isfinite(new_voltages)):
            return voltages, False, iteration
        delta = new_voltages - voltages
        # Limit the per-iteration voltage step (classic SPICE damping).
        step = np.clip(delta, -damping, damping)
        voltages = voltages + step
        if np.max(np.abs(delta)) < tolerance:
            return voltages, True, iteration
    return voltages, False, max_iterations


#: Fallback schedule for solves the standard settings cannot crack: a much
#: denser gmin ladder with gentle damping.  Slower per attempt, so it only
#: runs after the standard ladder has already failed.
_RESCUE_GMIN_STEPS = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-9,
                      1e-10, 1e-11, 1e-12)
_RESCUE_MAX_ITERATIONS = 200
_RESCUE_DAMPING = 0.1
#: The rescue ladder aborts once more than this many of its steps have
#: failed: rescuable chains recover within a step or two, while a
#: genuinely dead circuit fails every remaining level -- bailing out keeps
#: the cost of hopeless designs (common in random optimizer batches) to a
#: fraction of the full ladder.
_RESCUE_MAX_FAILED_STEPS = 2


def _gmin_ladder(circuit: Circuit, start: np.ndarray, temperature: float,
                 gmin_steps: tuple[float, ...], max_iterations: int,
                 tolerance: float, damping: float,
                 max_failed_steps: int | None = None,
                 ) -> tuple[np.ndarray, bool, int]:
    """Run Newton down a gmin ladder, warm-starting each step.

    ``max_failed_steps`` aborts the ladder early once more than that many
    steps have failed to converge (``None`` never aborts -- the standard
    path's exact legacy semantics).
    """
    voltages = start
    total_iterations = 0
    converged = False
    failed_steps = 0
    for gmin in gmin_steps:
        voltages, converged, used = _newton_solve(
            circuit, voltages, temperature, gmin, max_iterations, tolerance,
            damping)
        total_iterations += used
        if not converged:
            failed_steps += 1
            if (max_failed_steps is not None
                    and failed_steps > max_failed_steps):
                break
    return voltages, converged, total_iterations


def dc_operating_point(circuit: Circuit, temperature: float = 27.0,
                       max_iterations: int = 150, tolerance: float = 1e-9,
                       damping: float = 0.5,
                       gmin_steps: tuple[float, ...] = (1e-2, 1e-4, 1e-6, 1e-9, 1e-12),
                       initial_guess: np.ndarray | None = None,
                       raise_on_failure: bool = False,
                       rescue: bool = True) -> OperatingPoint:
    """Find the DC operating point of ``circuit``.

    gmin stepping: the circuit is first solved with a large conductance from
    every node to ground (which makes the system nearly linear), then the
    conductance is reduced step by step, warm-starting each Newton solve from
    the previous solution.

    When the standard ladder fails and ``rescue`` is set (the default), one
    fallback attempt runs a much denser gmin ladder with gentler damping
    from the same starting point, bailing out early once a few of its steps
    have failed (hopeless circuits stay cheap; rescuable chains recover
    within a step or two).  Solves that converge on the standard ladder
    never enter the fallback, so their solutions are bit-identical with and
    without it; the fallback exists for *marginally* hard circuits -- e.g.
    a bandgap whose mirror devices carry millivolt mismatch shifts -- where
    the coarse ladder's basin hopping overshoots.

    When Newton fails at the final gmin the best solution found is returned
    with ``converged=False`` (or :class:`ConvergenceError` is raised when
    ``raise_on_failure`` is set) -- the circuit testbenches treat
    non-converged designs as constraint violations rather than crashes.
    """
    circuit.ensure_indices()
    size = circuit.n_nodes + circuit.n_branches
    start = np.zeros(size) if initial_guess is None else np.asarray(
        initial_guess, dtype=float).copy()
    if start.shape[0] != size:
        raise ValueError(f"initial_guess must have length {size}")

    voltages, converged, total_iterations = _gmin_ladder(
        circuit, start.copy(), temperature, tuple(gmin_steps),
        max_iterations, tolerance, damping)
    if not converged and rescue:
        rescued, converged, used = _gmin_ladder(
            circuit, start.copy(), temperature, _RESCUE_GMIN_STEPS,
            _RESCUE_MAX_ITERATIONS, tolerance, _RESCUE_DAMPING,
            max_failed_steps=_RESCUE_MAX_FAILED_STEPS)
        total_iterations += used
        if converged:
            voltages = rescued
    if not converged and raise_on_failure:
        raise ConvergenceError(
            f"DC analysis of {circuit.title!r} did not converge after "
            f"{total_iterations} Newton iterations")

    node_voltages = {name: float(voltages[index])
                     for name, index in zip(circuit.nodes, range(circuit.n_nodes))}
    device_info = {device.name: device.operating_info(voltages, temperature)
                   for device in circuit.devices}
    return OperatingPoint(voltages=voltages, node_voltages=node_voltages,
                          device_info=device_info, converged=converged,
                          iterations=total_iterations, temperature=temperature)
