"""Circuit container: named nodes, devices and index resolution."""

from __future__ import annotations

import numpy as np

from repro.errors import NetlistError
from repro.spice.devices.base import Device
from repro.spice.mna import SparseStamper, Stamper

GROUND = "0"
_GROUND_ALIASES = {"0", "gnd", "gnd!", "vss"}


class Circuit:
    """A flat netlist of devices connected by named nodes.

    Node names are case-insensitive strings; ``"0"``, ``"gnd"`` and ``"vss"``
    are treated as the ground reference.
    """

    def __init__(self, title: str = "circuit"):
        self.title = title
        self.devices: list[Device] = []
        self._device_names: set[str] = set()
        self._node_order: list[str] = []
        self._node_index: dict[str, int] = {}
        self._n_branches = 0
        self._dirty = True

    # ------------------------------------------------------------------ #
    # construction                                                        #
    # ------------------------------------------------------------------ #
    @staticmethod
    def canonical_node(name: str) -> str:
        name = str(name).strip().lower()
        return GROUND if name in _GROUND_ALIASES else name

    def add(self, device: Device) -> Device:
        """Add a device; returns it so construction can be chained."""
        if device.name in self._device_names:
            raise NetlistError(f"duplicate device name {device.name!r}")
        self._device_names.add(device.name)
        self.devices.append(device)
        self._dirty = True
        return device

    def add_all(self, devices) -> None:
        for device in devices:
            self.add(device)

    def __len__(self) -> int:
        return len(self.devices)

    def device(self, name: str) -> Device:
        for candidate in self.devices:
            if candidate.name == name:
                return candidate
        raise NetlistError(f"no device named {name!r}")

    # ------------------------------------------------------------------ #
    # index resolution                                                    #
    # ------------------------------------------------------------------ #
    def _rebuild_indices(self) -> None:
        self._node_order = []
        self._node_index = {}
        branch_counter = 0
        for device in self.devices:
            node_indices = []
            for node_name in device.node_names:
                canonical = self.canonical_node(node_name)
                if canonical == GROUND:
                    node_indices.append(-1)
                    continue
                if canonical not in self._node_index:
                    self._node_index[canonical] = len(self._node_order)
                    self._node_order.append(canonical)
                node_indices.append(self._node_index[canonical])
            branch_indices = tuple(range(branch_counter, branch_counter + device.n_branches))
            branch_counter += device.n_branches
            device.bind(tuple(node_indices), branch_indices)
        self._n_branches = branch_counter
        # Branch unknowns live after the node unknowns; shift their indices.
        for device in self.devices:
            device.branch_indices = tuple(len(self._node_order) + b
                                          for b in device.branch_indices)
        self._dirty = False

    def ensure_indices(self) -> None:
        if self._dirty:
            self._rebuild_indices()

    @property
    def nodes(self) -> list[str]:
        """Non-ground node names in matrix order."""
        self.ensure_indices()
        return list(self._node_order)

    @property
    def n_nodes(self) -> int:
        self.ensure_indices()
        return len(self._node_order)

    @property
    def n_branches(self) -> int:
        self.ensure_indices()
        return self._n_branches

    def node_index(self, name: str) -> int:
        """Matrix index of a node (-1 for ground)."""
        self.ensure_indices()
        canonical = self.canonical_node(name)
        if canonical == GROUND:
            return -1
        if canonical not in self._node_index:
            raise NetlistError(f"unknown node {name!r}; known nodes: {self._node_order}")
        return self._node_index[canonical]

    def node_voltage(self, solution: np.ndarray, name: str) -> complex:
        """Extract one node's voltage from a solution vector (0 for ground)."""
        index = self.node_index(name)
        return 0.0 if index < 0 else solution[index]

    # ------------------------------------------------------------------ #
    # stamping helpers                                                    #
    # ------------------------------------------------------------------ #
    def make_stamper(self, dtype=float) -> Stamper:
        self.ensure_indices()
        return Stamper(self.n_nodes, self.n_branches, dtype=dtype)

    def make_dc_stamper(self, solver: str = "dense"):
        """A reusable DC stamper: dense :class:`Stamper` or :class:`SparseStamper`."""
        self.ensure_indices()
        if solver == "sparse":
            return SparseStamper(self.n_nodes, self.n_branches)
        return Stamper(self.n_nodes, self.n_branches, dtype=float)

    def stamp_dc(self, voltages: np.ndarray, temperature: float,
                 gmin: float = 0.0, stamper=None):
        """Assemble the (linearised) DC system at trial node voltages.

        ``stamper`` (optional) is a previously created DC stamper to reuse --
        it is reset and restamped in place, so Newton iterations avoid
        reallocating the matrix/rhs buffers every pass.
        """
        if stamper is None:
            stamper = self.make_stamper(dtype=float)
        else:
            stamper.reset()
        for device in self.devices:
            device.stamp_dc(stamper, voltages, temperature)
        if gmin > 0.0:
            stamper.add_gmin(gmin)
        return stamper

    def stamp_ac(self, omega: float, operating_point) -> Stamper:
        """Assemble the complex small-signal system at angular frequency ``omega``."""
        stamper = self.make_stamper(dtype=complex)
        for device in self.devices:
            device.stamp_ac(stamper, omega, operating_point)
        return stamper

    def init_transient_states(self, operating_point, temperature: float) -> dict[str, dict]:
        """Build every device's transient companion state from the DC solution."""
        self.ensure_indices()
        return {device.name: device.init_transient(operating_point, temperature)
                for device in self.devices}

    def stamp_transient(self, voltages: np.ndarray, states: dict[str, dict],
                        time: float, dt: float, method: str, temperature: float,
                        gmin: float = 0.0, stamper=None):
        """Assemble the companion-model system for one transient Newton iterate.

        The solver-owned ``time`` and ``method`` (``"be"``/``"trap"``) are
        injected into each device's state before stamping, per the transient
        contract in :mod:`repro.spice.devices.base`.  ``stamper`` (optional)
        is a previously created DC-style stamper to reset and restamp in
        place, like :meth:`stamp_dc`.
        """
        if stamper is None:
            stamper = self.make_stamper(dtype=float)
        else:
            stamper.reset()
        for device in self.devices:
            state = states[device.name]
            state["time"] = time
            state["method"] = method
            device.stamp_transient(stamper, voltages, state, dt, temperature)
        if gmin > 0.0:
            stamper.add_gmin(gmin)
        return stamper

    def commit_transient(self, voltages: np.ndarray, states: dict[str, dict],
                         dt: float, temperature: float) -> None:
        """Roll every device's companion state forward after an accepted step."""
        for device in self.devices:
            device.commit_transient(voltages, states[device.name], dt, temperature)

    def summary(self) -> dict[str, int]:
        """Device/node counts (useful in logs and tests)."""
        self.ensure_indices()
        kinds: dict[str, int] = {}
        for device in self.devices:
            kinds[type(device).__name__] = kinds.get(type(device).__name__, 0) + 1
        return {"n_devices": len(self.devices), "n_nodes": self.n_nodes,
                "n_branches": self.n_branches, **kinds}
