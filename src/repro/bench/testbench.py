"""The declarative testbench: circuits + analyses + checks + measures.

A :class:`Testbench` is the simulation-side counterpart of
:class:`repro.study.StudySpec`: instead of imperatively chaining
``dc_operating_point`` / ``ac_analysis`` / ``transient_analysis`` calls, a
circuit problem *declares*

* its circuit builders (one or more netlist variants of the same design),
* the named analyses to run over them (:mod:`repro.bench.analyses`),
* validity checks that mark a design dead (e.g. "the follower must track"),
* and the measurements that produce the metric dictionary
  (:mod:`repro.bench.measures`).

The :class:`~repro.bench.Simulator` executes the bench for one design and
returns a :class:`SimResult`; operating points are solved once per
``(circuit, temperature)`` and shared across every dependent analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bench.analyses import AnalysisSpec
from repro.bench.measures import Measure, MeasureContext


@dataclass(frozen=True)
class Check:
    """A validity predicate evaluated after the analyses, before the measures.

    ``fn`` receives the :class:`~repro.bench.measures.MeasureContext` and
    returns truthy when the design is alive; a falsy return marks the whole
    simulation failed with ``description`` as the reason.
    """

    description: str
    fn: Callable[[MeasureContext], bool] = field(repr=False, default=None)

    def __post_init__(self) -> None:
        if self.fn is None:
            raise ValueError(f"check {self.description!r} needs a callable")


@dataclass
class SimResult:
    """One executed testbench: metrics, raw analysis results and statistics.

    Attributes
    ----------
    ok:
        Whether every analysis converged, every check passed and every
        finite-gated measure produced a finite value.  When false,
        ``metrics`` is empty and ``failure`` names the first reason.
    metrics:
        Metric name -> value, in the bench's measure order.
    analyses:
        Analysis name -> raw result (:class:`~repro.spice.OperatingPoint`,
        :class:`~repro.spice.ACResult`, :class:`~repro.spice.TransientResult`
        or :class:`~repro.bench.analyses.SweepResult`).
    stats:
        Session counters: ``n_op_solves`` (Newton operating-point solves,
        sweep points included), ``n_op_reused`` (analyses served by a
        memoised operating point) and ``n_circuits_built``.
    """

    ok: bool
    metrics: dict[str, float] = field(default_factory=dict)
    analyses: dict[str, object] = field(default_factory=dict)
    failure: str | None = None
    stats: dict[str, int] = field(default_factory=dict)

    def __getitem__(self, analysis: str):
        return self.analyses[analysis]


class Testbench:
    """A named, declarative simulation setup for one circuit design space.

    Parameters
    ----------
    name:
        Bench identifier (used in failure messages).
    builders:
        Mapping circuit key -> ``(design: dict) -> Circuit``, or a single
        callable registered under the key ``"main"``.  Builders must be pure
        (a fresh netlist per call) and picklable -- bound methods of a
        picklable problem qualify.
    analyses:
        :class:`~repro.bench.analyses.AnalysisSpec` instances, executed in
        order; names must be unique.
    measures:
        :class:`~repro.bench.measures.Measure` instances producing the metric
        dictionary, in order; names must be unique.
    checks:
        :class:`Check` predicates evaluated between analyses and measures.
    temperature:
        Default analysis temperature (Celsius) for specs that do not pin
        their own.
    """

    #: The class name starts with "Test"; tell pytest it is not a test case.
    __test__ = False

    def __init__(self, name: str,
                 builders: dict[str, Callable] | Callable,
                 analyses: list[AnalysisSpec],
                 measures: list[Measure],
                 checks: list[Check] | tuple = (),
                 temperature: float = 27.0):
        self.name = name
        if callable(builders):
            builders = {"main": builders}
        self.builders = dict(builders)
        self.analyses = list(analyses)
        self.measures = list(measures)
        self.checks = list(checks)
        self.temperature = float(temperature)
        self._validate()

    def _validate(self) -> None:
        from repro.bench.analyses import OPSpec
        if not self.builders:
            raise ValueError(f"testbench {self.name!r} needs a circuit builder")
        seen: set[str] = set()
        op_specs: dict[str, OPSpec] = {}
        for spec in self.analyses:
            if spec.name in seen:
                raise ValueError(f"testbench {self.name!r} has duplicate "
                                 f"analysis name {spec.name!r}")
            seen.add(spec.name)
            if spec.circuit not in self.builders:
                raise ValueError(
                    f"analysis {spec.name!r} references unknown circuit "
                    f"{spec.circuit!r}; builders: {sorted(self.builders)}")
            if isinstance(spec, OPSpec):
                op_specs[spec.name] = spec
            referenced = getattr(spec, "op", None)
            if referenced is not None:
                if referenced not in op_specs:
                    raise ValueError(
                        f"analysis {spec.name!r} references operating point "
                        f"{referenced!r}, which is not an earlier OP analysis")
                # An analysis linearises around its referenced bias, so a
                # pinned temperature that disagrees with the OP's would be
                # silently ignored -- reject the contradiction outright.
                ref_temp = op_specs[referenced].resolved_temperature(
                    self.temperature)
                spec_temp = spec.resolved_temperature(self.temperature)
                if spec_temp != ref_temp:
                    raise ValueError(
                        f"analysis {spec.name!r} pins temperature "
                        f"{spec_temp:g}C but references operating point "
                        f"{referenced!r} solved at {ref_temp:g}C; pin the "
                        "temperature on the OP analysis (or drop op= to "
                        "solve a bias at this analysis' own temperature)")
        metric_names = set()
        for measure in self.measures:
            if measure.name in metric_names:
                raise ValueError(f"testbench {self.name!r} has duplicate "
                                 f"measure name {measure.name!r}")
            metric_names.add(measure.name)

    @property
    def metric_names(self) -> list[str]:
        return [measure.name for measure in self.measures]

    def run(self, design: dict[str, float], **simulator_options) -> SimResult:
        """Convenience one-shot execution through a fresh Simulator session."""
        from repro.bench.simulator import Simulator
        return Simulator(**simulator_options).run(self, design)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Testbench({self.name!r}, circuits={sorted(self.builders)}, "
                f"analyses={[a.name for a in self.analyses]}, "
                f"measures={self.metric_names})")
