"""Sense-aware metric aggregation shared by PVT corners and Monte Carlo.

Both robustness layers reduce *many* metric dictionaries for one design --
per-corner results, per-mismatch-sample results -- into one dictionary that
optimizers consume.  The reductions must agree on what "worse" means, so the
senses live in exactly one place:

* a constrained metric is worse in the direction that violates its
  constraint (``ge`` -> smaller is worse, ``le`` -> larger is worse);
* the objective is worse against the optimisation direction;
* metrics with no declared sense pass through un-reduced (corners) or get
  direction-free statistics (Monte Carlo).

:func:`worst_case_metrics` is the deterministic fold used by
:class:`~repro.circuits.corners.CornerSizingProblem` ("a design is only as
good as its worst corner"); :func:`sigma_metrics` is the statistical fold
used by the yield problems (``<metric>_mean`` / ``_std`` / ``_p99``, the
latter a sense-aware 99th-percentile worst case).
"""

from __future__ import annotations

import numpy as np

from repro.bo.problem import Constraint


def worst_is_low(name: str, objective: str, minimize: bool,
                 senses: dict[str, str]) -> bool | None:
    """Whether smaller values of ``name`` are worse, or ``None`` if senseless.

    The single source of truth for aggregation direction: ``ge`` constraints
    and maximised objectives degrade downwards, ``le`` constraints and
    minimised objectives degrade upwards.
    """
    if name in senses:
        return senses[name] == "ge"
    if name == objective:
        return not minimize
    return None


def sense_reduce(values, low_is_worse: bool) -> float:
    """The worst value of one metric across scenarios, given its direction."""
    return float(min(values) if low_is_worse else max(values))


def worst_case_metrics(per_corner: list[dict[str, float]],
                       objective: str, minimize: bool,
                       constraints: list[Constraint]) -> dict[str, float]:
    """Fold per-corner metrics into one worst-case metric dictionary.

    Constrained metrics aggregate against their sense (``ge`` -> min across
    corners, ``le`` -> max), the objective against its direction; every other
    metric passes through from the first (nominal) corner.  The result also
    reports ``<objective>_nominal`` so studies can see the robustness cost.
    """
    if not per_corner:
        raise ValueError("worst_case_metrics needs at least one corner result")
    senses = {c.name: c.sense for c in constraints}
    metrics = dict(per_corner[0])
    for name in per_corner[0]:
        low = worst_is_low(name, objective, minimize, senses)
        if low is None:
            continue
        metrics[name] = sense_reduce(
            [corner[name] for corner in per_corner if name in corner], low)
    metrics[f"{objective}_nominal"] = float(per_corner[0][objective])
    return metrics


def sigma_metrics(per_sample: list[dict[str, float]],
                  objective: str, minimize: bool,
                  constraints: list[Constraint]) -> dict[str, float]:
    """Per-metric statistics across Monte Carlo samples.

    For every metric present in the first sample, reports

    * ``<metric>_mean`` and ``<metric>_std`` (population std, ddof=0), and
    * ``<metric>_p99`` -- the sense-aware 99%-worst value: the pessimistic
      bound the metric is *worse than* in only 1% of samples (so 99% of
      silicon does at least this well), i.e. the 1st percentile for metrics
      that degrade downwards and the 99th for metrics that degrade upwards.
      Metrics with no declared sense report the plain 99th percentile.

    Values are computed in sample order with numpy reductions only, so the
    result is bit-identical however the samples were executed.
    """
    if not per_sample:
        raise ValueError("sigma_metrics needs at least one sample result")
    senses = {c.name: c.sense for c in constraints}
    out: dict[str, float] = {}
    # Key off the union of metric names (first-seen order) rather than the
    # first sample alone: a crashed first sample carries only the pessimised
    # constraint metrics, and must not silently drop the sigma statistics of
    # unconstrained measures (e.g. the bandgap's vref) for the whole design.
    names: dict[str, None] = {}
    for sample in per_sample:
        for name in sample:
            names.setdefault(name)
    for name in names:
        values = np.asarray([sample[name] for sample in per_sample
                             if name in sample], dtype=float)
        low = worst_is_low(name, objective, minimize, senses)
        quantile = 1.0 if low else 99.0
        out[f"{name}_mean"] = float(np.mean(values))
        out[f"{name}_std"] = float(np.std(values))
        out[f"{name}_p99"] = float(np.percentile(values, quantile))
    return out
