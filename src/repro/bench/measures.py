"""Declarative measurements extracted from analysis results.

A :class:`Measure` binds one named metric to one analysis of a testbench: a
callable receives the :class:`MeasureContext` (every analysis result, the
built circuits and the design point) and returns a float.  The factories
below cover the standard analog figures of merit -- gains, bandwidth, phase
margin, PSRR, supply current, slew, settling, overshoot, temperature
coefficient -- and any bench can add bespoke measures as plain callables
(bound methods of a problem pickle fine).

Units follow the repo's reporting conventions: currents in uA, GBW in MHz,
slew in V/us, settling in us, TC in ppm/degC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError


class MeasurementError(ReproError):
    """Raised by a measure to declare the design dead (pessimised metrics)."""


@dataclass
class MeasureContext:
    """Everything a measurement can see: results, circuits, design point."""

    design: dict[str, float]
    circuits: dict[str, object]
    results: dict[str, object]

    def result(self, analysis: str):
        if analysis not in self.results:
            raise MeasurementError(
                f"measure references unknown analysis {analysis!r}; "
                f"available: {sorted(self.results)}")
        return self.results[analysis]

    def circuit(self, key: str = "main"):
        if key not in self.circuits:
            raise MeasurementError(
                f"measure references unbuilt circuit {key!r}; "
                f"available: {sorted(self.circuits)}")
        return self.circuits[key]


@dataclass(frozen=True)
class Measure:
    """One named metric extracted from a simulated testbench.

    Attributes
    ----------
    name:
        Metric key in the returned metrics dictionary.
    fn:
        ``(MeasureContext) -> float``.
    require_finite:
        When set, a non-finite value marks the whole simulation as failed
        (the testbench returns the problem's pessimised metrics) -- used for
        gate metrics like DC gain whose non-finiteness means a dead circuit.
    """

    name: str
    fn: Callable[[MeasureContext], float] = field(repr=False, default=None)
    require_finite: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("measure needs a non-empty name")
        if self.fn is None:
            raise ValueError(f"measure {self.name!r} needs a callable")


# --------------------------------------------------------------------- #
# AC measures                                                            #
# --------------------------------------------------------------------- #
def gain_db(analysis: str = "ac", node: str = "out", name: str = "gain",
            require_finite: bool = True) -> Measure:
    """Low-frequency gain in dB (finite-gated by default: NaN = dead design)."""
    return Measure(name, lambda ctx: float(ctx.result(analysis).dc_gain_db(node)),
                   require_finite=require_finite)


def gbw_mhz(analysis: str = "ac", node: str = "out", name: str = "gbw") -> Measure:
    """Unity-gain frequency in MHz (0 when the response never crosses 0 dB)."""
    return Measure(name, lambda ctx: float(
        ctx.result(analysis).unity_gain_frequency(node) / 1e6))


def phase_margin_deg(analysis: str = "ac", node: str = "out",
                     name: str = "pm") -> Measure:
    return Measure(name, lambda ctx: float(
        ctx.result(analysis).phase_margin_degrees(node)))


def gain_at_db(frequency: float, analysis: str = "ac", node: str = "out",
               name: str = "gain_at") -> Measure:
    """Interpolated magnitude (dB) at one frequency."""
    return Measure(name, lambda ctx: float(
        ctx.result(analysis).gain_at(node, frequency)))


def psrr_db(frequency: float, analysis: str, node: str = "out",
            name: str = "psrr") -> Measure:
    """Power-supply rejection: minus the supply-to-node gain at ``frequency``.

    ``analysis`` names the supply-injection AC sweep explicitly (the circuit
    variant whose *supply* source carries ``ac=1``), so a bench can carry
    differential gain and PSRR side by side instead of both assuming the
    ``"ac"`` result key.
    """
    return Measure(name, lambda ctx: float(
        -ctx.result(analysis).gain_at(node, frequency)))


def cmrr_db(frequency: float, diff_analysis: str, cm_analysis: str,
            node: str = "out", name: str = "cmrr") -> Measure:
    """Common-mode rejection: differential minus common-mode gain (dB).

    The two analyses are AC sweeps of circuit variants whose input sources
    carry the differential and the common-mode excitation respectively;
    both gains are interpolated at the same spot ``frequency``.
    """
    def fn(ctx: MeasureContext) -> float:
        diff = ctx.result(diff_analysis).gain_at(node, frequency)
        common = ctx.result(cm_analysis).gain_at(node, frequency)
        return float(diff - common)
    return Measure(name, fn)


def bandwidth_3db_mhz(analysis: str = "ac", node: str = "out",
                      name: str = "bw") -> Measure:
    return Measure(name, lambda ctx: float(
        ctx.result(analysis).bandwidth_3db(node) / 1e6))


# --------------------------------------------------------------------- #
# loop-gain stability measures                                           #
# --------------------------------------------------------------------- #
def loop_gain_db(frequency: float, analysis: str, node: str = "out",
                 name: str = "loop_gain") -> Measure:
    """Loop-gain magnitude (dB) at one frequency of a loop-gain AC sweep."""
    return Measure(name, lambda ctx: float(
        ctx.result(analysis).gain_at(node, frequency)))


def gain_margin_db(analysis: str, node: str = "out",
                   name: str = "gm_db") -> Measure:
    """Gain margin of a loop-gain sweep: -|T| (dB) at the -180 deg crossing."""
    return Measure(name, lambda ctx: float(
        ctx.result(analysis).gain_margin_db(node)))


# --------------------------------------------------------------------- #
# noise measures                                                         #
# --------------------------------------------------------------------- #
def input_noise_nv_rthz(frequency: float, analysis: str = "noise",
                        name: str = "en_in") -> Measure:
    """Input-referred noise density at one frequency, in nV/sqrt(Hz)."""
    def fn(ctx: MeasureContext) -> float:
        result = ctx.result(analysis)
        try:
            return float(result.input_density(frequency) * 1e9)
        except ValueError as exc:
            raise MeasurementError(str(exc)) from exc
    return Measure(name, fn)


def output_noise_nv_rthz(frequency: float, analysis: str = "noise",
                         name: str = "en_out") -> Measure:
    """Output noise density at one frequency, in nV/sqrt(Hz)."""
    return Measure(name, lambda ctx: float(
        ctx.result(analysis).output_density(frequency) * 1e9))


def integrated_noise_uvrms(analysis: str = "noise",
                           f_low: float | None = None,
                           f_high: float | None = None,
                           input_referred: bool = False,
                           name: str = "vnoise") -> Measure:
    """Total rms noise over a band, in uVrms (output-referred by default)."""
    def fn(ctx: MeasureContext) -> float:
        result = ctx.result(analysis)
        try:
            if input_referred:
                total = result.integrated_input_noise(f_low, f_high)
            else:
                total = result.integrated_output_noise(f_low, f_high)
        except ValueError as exc:
            raise MeasurementError(str(exc)) from exc
        return float(total * 1e6)
    return Measure(name, fn)


# --------------------------------------------------------------------- #
# operating-point measures                                               #
# --------------------------------------------------------------------- #
def supply_current_ua(analysis: str = "op", source: str = "VDD",
                      circuit: str = "main", name: str = "i_total") -> Measure:
    """Magnitude of a source's branch current at the bias point, in uA."""
    def fn(ctx: MeasureContext) -> float:
        op = ctx.result(analysis)
        return float(abs(ctx.circuit(circuit).device(source)
                         .branch_current(op.voltages)) * 1e6)
    return Measure(name, fn)


def node_dc(node: str, analysis: str = "op", name: str | None = None) -> Measure:
    """DC voltage of one node at the bias point."""
    return Measure(name or f"v_{node}",
                   lambda ctx: float(ctx.result(analysis).voltage(node)))


# --------------------------------------------------------------------- #
# transient measures                                                     #
# --------------------------------------------------------------------- #
def slew_v_per_us(analysis: str = "tran", node: str = "out",
                  t_start: float = 0.0, name: str = "slew") -> Measure:
    return Measure(name, lambda ctx: float(
        ctx.result(analysis).slew_rate(node, t_start=t_start) * 1e-6))


def overshoot_pct(analysis: str = "tran", node: str = "out",
                  t_start: float = 0.0, name: str = "overshoot") -> Measure:
    return Measure(name, lambda ctx: float(
        ctx.result(analysis).overshoot_percent(node, t_start=t_start)))


def settling_time_us(analysis: str = "tran", node: str = "out",
                     tolerance: float = 0.01, t_start: float = 0.0,
                     cap: float | None = None,
                     name: str = "t_settle") -> Measure:
    """Settling time in us; a never-settling response reports ``cap`` seconds.

    ``cap`` (typically ``t_stop - t_start``) keeps the metric finite so
    surrogates stay trainable on designs that never enter the band.
    """
    import numpy as np

    def fn(ctx: MeasureContext) -> float:
        settle = ctx.result(analysis).settling_time(node, tolerance=tolerance,
                                                    t_start=t_start)
        if not np.isfinite(settle) and cap is not None:
            settle = cap
        return float(settle * 1e6)
    return Measure(name, fn)


# --------------------------------------------------------------------- #
# sweep measures                                                         #
# --------------------------------------------------------------------- #
def tc_ppm(analysis: str = "tsweep", name: str = "tc") -> Measure:
    """Box-method temperature coefficient of a temperature-sweep observation."""
    from repro.spice.sweep import temperature_coefficient_ppm

    def fn(ctx: MeasureContext) -> float:
        sweep = ctx.result(analysis)
        return float(temperature_coefficient_ppm(sweep.values, sweep.observed))
    return Measure(name, fn)
