"""Declarative testbenches: the simulation-side counterpart of ``repro.study``.

``repro.study`` gave the optimization side one declarative front door; this
package does the same for the simulation side:

* :class:`Testbench` -- a circuit builder (or several netlist variants of
  one design) plus named, declarative analyses
  (:class:`OPSpec`/:class:`ACSpec`/:class:`TranSpec`/:class:`DCSweepSpec`/
  :class:`TempSweepSpec`), validity :class:`Check` predicates and
  :class:`Measure` definitions bound to those analyses;
* :class:`Simulator` -- the execution session: builds each circuit once,
  solves each ``(circuit, temperature)`` operating point once and shares it
  across every dependent analysis, and returns one typed :class:`SimResult`;
* PVT corners -- :class:`CornerSpec` process/temperature/supply conditions,
  :func:`apply_corner` deriving per-corner technology cards, and
  :class:`CornerSweep` fanning a bench across corners through the same
  execution backends as the batched evaluation engine, with
  :func:`worst_case_metrics` folding the per-corner results into the
  robust-sizing worst case.

The circuit problems in :mod:`repro.circuits` declare their testbenches with
this vocabulary (see ``CircuitSizingProblem.testbench``); their metrics at
the nominal corner are bit-identical to the legacy imperative paths, which
the equivalence suite in ``tests/test_bench.py`` enforces.
"""

from repro.bench.aggregate import sense_reduce, sigma_metrics, worst_is_low
from repro.bench.analyses import (
    ACSpec,
    AnalysisSpec,
    DCSweepSpec,
    NoiseSpec,
    OPSpec,
    SweepResult,
    TempSweepSpec,
    TranSpec,
)
from repro.bench.corners import (
    CornerFailure,
    CornerSpec,
    CornerSweep,
    apply_corner,
    nominal_corner,
    standard_corners,
    worst_case_metrics,
)
from repro.bench.measures import (
    Measure,
    MeasureContext,
    MeasurementError,
    bandwidth_3db_mhz,
    cmrr_db,
    gain_at_db,
    gain_db,
    gain_margin_db,
    gbw_mhz,
    input_noise_nv_rthz,
    integrated_noise_uvrms,
    loop_gain_db,
    node_dc,
    output_noise_nv_rthz,
    overshoot_pct,
    phase_margin_deg,
    psrr_db,
    settling_time_us,
    slew_v_per_us,
    supply_current_ua,
    tc_ppm,
)
from repro.bench.batch import BatchJobError, BatchSimulator
from repro.bench.simulator import Simulator
from repro.bench.testbench import Check, SimResult, Testbench

__all__ = [
    "AnalysisSpec",
    "OPSpec",
    "ACSpec",
    "TranSpec",
    "NoiseSpec",
    "DCSweepSpec",
    "TempSweepSpec",
    "SweepResult",
    "Measure",
    "MeasureContext",
    "MeasurementError",
    "Check",
    "SimResult",
    "Testbench",
    "Simulator",
    "BatchSimulator",
    "BatchJobError",
    "CornerSpec",
    "CornerSweep",
    "CornerFailure",
    "nominal_corner",
    "standard_corners",
    "apply_corner",
    "worst_case_metrics",
    "sigma_metrics",
    "sense_reduce",
    "worst_is_low",
    "gain_db",
    "gbw_mhz",
    "phase_margin_deg",
    "gain_at_db",
    "psrr_db",
    "cmrr_db",
    "loop_gain_db",
    "gain_margin_db",
    "input_noise_nv_rthz",
    "output_noise_nv_rthz",
    "integrated_noise_uvrms",
    "bandwidth_3db_mhz",
    "supply_current_ua",
    "node_dc",
    "slew_v_per_us",
    "overshoot_pct",
    "settling_time_us",
    "tc_ppm",
]
