"""PVT corners: declarative process/voltage/temperature variants of a bench.

A :class:`CornerSpec` names one (process, temperature, supply) condition; the
process letters scale the :class:`~repro.pdk.Technology` device models (see
:func:`apply_corner`), the supply scales ``vdd`` and the temperature retargets
every analysis of the testbench.  :class:`CornerSweep` fans per-corner
simulations through the same pluggable execution backends the batched
:class:`~repro.engine.EvaluationEngine` uses, so a five-corner evaluation of
one design overlaps on thread/process backends exactly like a five-design
batch would.

:func:`~repro.bench.aggregate.worst_case_metrics` (re-exported here) folds
per-corner metric dictionaries into the one robust-sizing view: each
constrained metric takes its worst value across corners w.r.t. the
constraint sense, and the objective takes its worst value w.r.t. the
optimisation direction -- a design is only as good as its worst corner.
The sense-aware reduce itself lives in :mod:`repro.bench.aggregate`, shared
with the Monte Carlo sigma aggregation so the two robustness layers cannot
drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.aggregate import worst_case_metrics  # noqa: F401  (re-export)
from repro.engine.backends import BackendOwner, ExecutionBackend
from repro.pdk import Technology

#: Per-letter process factors: (kp scale, vth shift in volts).  "s" (slow)
#: silicon has lower mobility and a higher threshold magnitude; "f" (fast)
#: the opposite.  The spread is in the range foundries quote for 3-sigma
#: global corners on mature nodes.
_PROCESS_FACTORS = {
    "t": (1.00, 0.00),
    "s": (0.85, +0.03),
    "f": (1.15, -0.03),
}


@dataclass(frozen=True)
class CornerSpec:
    """One PVT condition.

    Attributes
    ----------
    name:
        Corner label used in reports and cache tokens.
    process:
        Two process letters, NMOS then PMOS: ``"tt"``, ``"ss"``, ``"ff"``,
        ``"sf"`` or ``"fs"``.
    temperature:
        Analysis temperature in Celsius.
    vdd_scale:
        Multiplier on the technology's nominal supply.
    """

    name: str
    process: str = "tt"
    temperature: float = 27.0
    vdd_scale: float = 1.0

    def __post_init__(self) -> None:
        if len(self.process) != 2 or any(c not in _PROCESS_FACTORS
                                         for c in self.process):
            raise ValueError(
                f"process must be two of {sorted(_PROCESS_FACTORS)} "
                f"(e.g. 'tt', 'ss', 'sf'), got {self.process!r}")
        if self.vdd_scale <= 0.0:
            raise ValueError(f"vdd_scale must be positive, got {self.vdd_scale}")

    @property
    def is_nominal(self) -> bool:
        return (self.process == "tt" and self.temperature == 27.0
                and self.vdd_scale == 1.0)

    def describe(self) -> str:
        return (f"{self.name}({self.process}, {self.temperature:g}C, "
                f"{self.vdd_scale:g}*vdd)")

    @classmethod
    def from_dict(cls, data: dict) -> "CornerSpec":
        """Build from plain data (what StudySpec ``problem_options`` carries)."""
        return cls(**data)


def nominal_corner() -> CornerSpec:
    return CornerSpec("nominal")


def standard_corners() -> tuple[CornerSpec, ...]:
    """The five-corner PVT set used by the ``*_corners`` sizing problems.

    Nominal plus the four worst-case combinations of silicon speed,
    automotive temperature extremes and a +-10% supply: slow silicon is
    paired with a low supply (weakest drive) and fast silicon with a high
    one (worst leakage/stability), at both temperature extremes.
    """
    return (
        nominal_corner(),
        CornerSpec("ss_cold_low", "ss", -40.0, 0.9),
        CornerSpec("ss_hot_low", "ss", 125.0, 0.9),
        CornerSpec("ff_cold_high", "ff", -40.0, 1.1),
        CornerSpec("ff_hot_high", "ff", 125.0, 1.1),
    )


def apply_corner(technology: Technology, corner: CornerSpec) -> Technology:
    """Derive the corner's technology card from the nominal one."""
    nmos_kp, nmos_vth = _PROCESS_FACTORS[corner.process[0]]
    pmos_kp, pmos_vth = _PROCESS_FACTORS[corner.process[1]]
    return technology.with_corner(
        nmos_kp_scale=nmos_kp, nmos_vth_shift=nmos_vth,
        pmos_kp_scale=pmos_kp, pmos_vth_shift=pmos_vth,
        vdd_scale=corner.vdd_scale, corner=corner.process)


# --------------------------------------------------------------------- #
# backend fan-out                                                        #
# --------------------------------------------------------------------- #
@dataclass
class CornerFailure:
    """Picklable marker for a corner simulation that raised."""

    corner: str
    message: str


def _simulate_corner_task(task):
    """Worker entry point: one ``(corner name, problem, design)`` simulation.

    Top-level and total like :func:`repro.engine.evaluate_design_task`: a
    raising simulation comes back as a :class:`CornerFailure` instead of
    poisoning the surrounding backend ``map``.
    """
    corner_name, problem, design = task
    try:
        return problem.simulate(design)
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return CornerFailure(corner_name, f"{type(exc).__name__}: {exc}")


class CornerSweep(BackendOwner):
    """Fan one design across per-corner problem variants through a backend.

    Backend lifecycle (lazy race-safe resolution, ``with`` support, loud
    :class:`ResourceWarning` on a leaked owned pool, pickling that drops the
    live pool) comes from :class:`~repro.engine.backends.BackendOwner`.

    Parameters
    ----------
    corners:
        The :class:`CornerSpec` conditions, nominal first by convention.
    backend:
        Backend name (``"serial"``/``"thread"``/``"process"``), instance or
        ``None`` for the environment default -- the same resolution rules as
        :class:`~repro.engine.EvaluationEngine`.  Inside an engine worker the
        default resolves to serial, so corner fan-out composes with design
        fan-out without spawning pools of pools.
    max_workers:
        Worker count for pooled backends created from a name.
    """

    def __init__(self, corners: tuple[CornerSpec, ...] | list[CornerSpec],
                 backend: str | ExecutionBackend | None = None,
                 max_workers: int | None = None):
        super().__init__(backend, max_workers=max_workers)
        self.corners = tuple(corners)
        if not self.corners:
            raise ValueError("CornerSweep needs at least one corner")
        names = [corner.name for corner in self.corners]
        if len(set(names)) != len(names):
            raise ValueError(f"corner names must be unique, got {names}")

    def run(self, problems, design: dict[str, float]
            ) -> list[dict[str, float] | CornerFailure]:
        """Simulate ``design`` on each per-corner problem, in corner order.

        On a :class:`~repro.engine.backends.BatchedBackend` the per-corner
        benches (same topology, different technology cards, temperatures and
        supplies) are solved in one stacked session through
        :func:`repro.circuits.base.simulate_checked_batch`, bit-identical to
        the serial fan-out; otherwise each corner is one ``backend.map`` task.
        """
        if len(problems) != len(self.corners):
            raise ValueError(f"expected {len(self.corners)} per-corner "
                             f"problems, got {len(problems)}")
        if (getattr(self.backend, "batched", False)
                and all(getattr(problem, "supports_batch_simulation", False)
                        for problem in problems)):
            from repro.circuits.base import simulate_checked_batch
            jobs = [(problem, design) for problem in problems]
            outcomes: list = []
            for corner, result in zip(self.corners,
                                      simulate_checked_batch(jobs)):
                if isinstance(result, tuple):
                    outcomes.append(result[0])
                else:
                    outcomes.append(CornerFailure(corner.name, result.message))
            return outcomes
        tasks = [(corner.name, problem, design)
                 for corner, problem in zip(self.corners, problems)]
        return list(self.backend.map(_simulate_corner_task, tasks))

    def __enter__(self) -> "CornerSweep":
        return self
