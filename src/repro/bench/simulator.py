"""The simulator session: executes a testbench with operating-point reuse.

One :class:`Simulator` run takes a :class:`~repro.bench.Testbench` and a
design point, builds each referenced circuit once, executes the analyses in
order and extracts the measures into one metric dictionary.  The session
memoises operating points by ``(circuit, temperature, transient)``, so a
bench with several analyses around the same bias pays for exactly one Newton
solve -- the hot-path win over the legacy imperative testbenches, which
re-solved the bias per analysis (and per rebuilt circuit).

Failure semantics mirror the legacy testbenches: a non-converged bias, a
diverging transient, a singular sweep, a failed check or a non-finite gated
measure all yield ``SimResult(ok=False, failure=...)`` -- the caller (usually
:meth:`repro.circuits.base.CircuitSizingProblem.simulate`) maps that to the
problem's pessimised metrics so optimizers still learn from dead designs.
"""

from __future__ import annotations

import numpy as np

from repro import telemetry
from repro.bench.analyses import (
    ACSpec,
    AnalysisSpec,
    DCSweepSpec,
    NoiseSpec,
    OPSpec,
    SweepResult,
    TempSweepSpec,
    TranSpec,
)
from repro.bench.measures import MeasureContext, MeasurementError
from repro.bench.testbench import SimResult, Testbench
from repro.errors import ConvergenceError
from repro.spice.ac import ac_analysis
from repro.spice.noise import noise_analysis
from repro.spice.dc import OperatingPoint, dc_operating_point
from repro.spice.sweep import dc_sweep, temperature_sweep
from repro.spice.transient import transient_analysis, transient_operating_point


class Simulator:
    """One testbench-execution session.

    Parameters
    ----------
    reuse_op:
        When set (default) operating points are memoised per
        ``(circuit, temperature, transient)`` and shared across analyses;
        disabling re-solves the bias for every consumer, which exists to
        quantify the reuse speedup in benchmarks and tests.

    Counters (reset per :meth:`run`) are reported in ``SimResult.stats``.
    """

    def __init__(self, reuse_op: bool = True):
        self.reuse_op = bool(reuse_op)
        self.n_op_solves = 0
        self.n_op_reused = 0
        self.n_circuits_built = 0

    # ------------------------------------------------------------------ #
    # session state helpers                                               #
    # ------------------------------------------------------------------ #
    def _circuit(self, bench: Testbench, design: dict[str, float],
                 circuits: dict, key: str):
        if key not in circuits:
            circuits[key] = bench.builders[key](design)
            self.n_circuits_built += 1
        return circuits[key]

    def _operating_point(self, bench: Testbench, design: dict[str, float],
                         circuits: dict, ops: dict, spec: AnalysisSpec,
                         transient: bool) -> OperatingPoint:
        """Solve or fetch the bias for one analysis' circuit and temperature."""
        temperature = spec.resolved_temperature(bench.temperature)
        key = (spec.circuit, float(temperature), bool(transient))
        if self.reuse_op and key in ops:
            self.n_op_reused += 1
            return ops[key]
        circuit = self._circuit(bench, design, circuits, spec.circuit)
        solve = transient_operating_point if transient else dc_operating_point
        op = solve(circuit, temperature=temperature)
        self.n_op_solves += 1
        ops[key] = op
        return op

    def _resolve_op(self, bench: Testbench, design: dict[str, float],
                    circuits: dict, ops: dict, results: dict,
                    op_specs: dict[str, OPSpec],
                    spec: AnalysisSpec, transient: bool) -> OperatingPoint:
        """The bias an AC/transient analysis linearises around."""
        referenced = getattr(spec, "op", None)
        if referenced is not None:
            if self.reuse_op:
                self.n_op_reused += 1
                return results[referenced]
            # Naive mode: honour the reference's circuit/temperature but pay
            # for a fresh Newton solve, like the legacy per-analysis path.
            ref = op_specs[referenced]
            return self._operating_point(bench, design, circuits, ops, ref,
                                         transient=ref.transient)
        return self._operating_point(bench, design, circuits, ops, spec, transient)

    # ------------------------------------------------------------------ #
    # execution                                                           #
    # ------------------------------------------------------------------ #
    def run(self, bench: Testbench, design: dict[str, float]) -> SimResult:
        """Execute ``bench`` for one named design point."""
        with telemetry.span("bench.run", bench=bench.name):
            result = self._run(bench, design)
        if telemetry.enabled():
            telemetry.inc("repro_bench_runs_total")
            if not result.ok:
                telemetry.inc("repro_bench_failures_total")
            telemetry.inc("repro_op_solves_total", self.n_op_solves)
            telemetry.inc("repro_op_reused_total", self.n_op_reused)
        return result

    def _run(self, bench: Testbench, design: dict[str, float]) -> SimResult:
        self.n_op_solves = self.n_op_reused = self.n_circuits_built = 0
        circuits: dict[str, object] = {}
        ops: dict[tuple, OperatingPoint] = {}
        results: dict[str, object] = {}
        op_specs = {spec.name: spec for spec in bench.analyses
                    if isinstance(spec, OPSpec)}

        for spec in bench.analyses:
            temperature = spec.resolved_temperature(bench.temperature)
            if isinstance(spec, OPSpec):
                op = self._operating_point(bench, design, circuits, ops, spec,
                                           transient=spec.transient)
                if not op.converged:
                    return self._failed(f"{spec.name}: operating point of "
                                        f"{bench.name!r} did not converge", results)
                results[spec.name] = op
            elif isinstance(spec, ACSpec):
                op = self._resolve_op(bench, design, circuits, ops, results,
                                      op_specs, spec, transient=False)
                if not op.converged:
                    return self._failed(f"{spec.name}: bias for AC analysis "
                                        "did not converge", results)
                circuit = self._circuit(bench, design, circuits, spec.circuit)
                results[spec.name] = ac_analysis(circuit, op, spec.frequencies,
                                                 observe=list(spec.observe))
            elif isinstance(spec, NoiseSpec):
                op = self._resolve_op(bench, design, circuits, ops, results,
                                      op_specs, spec, transient=False)
                if not op.converged:
                    return self._failed(f"{spec.name}: bias for noise analysis "
                                        "did not converge", results)
                circuit = self._circuit(bench, design, circuits, spec.circuit)
                try:
                    results[spec.name] = noise_analysis(
                        circuit, op, spec.frequencies, output=spec.output)
                except (np.linalg.LinAlgError, KeyError, ValueError) as exc:
                    return self._failed(f"{spec.name}: {exc}", results)
            elif isinstance(spec, TranSpec):
                op = self._resolve_op(bench, design, circuits, ops, results,
                                      op_specs, spec, transient=True)
                if not op.converged:
                    return self._failed(f"{spec.name}: transient initial "
                                        "condition did not converge", results)
                circuit = self._circuit(bench, design, circuits, spec.circuit)
                try:
                    results[spec.name] = transient_analysis(
                        circuit, spec.t_stop, observe=list(spec.observe),
                        operating_point=op, reltol=spec.reltol,
                        abstol=spec.abstol)
                except ConvergenceError as exc:
                    return self._failed(f"{spec.name}: {exc}", results)
            elif isinstance(spec, DCSweepSpec):
                circuit = self._circuit(bench, design, circuits, spec.circuit)
                try:
                    values, observed = dc_sweep(
                        circuit, spec.device, spec.attribute, spec.values,
                        observe=spec.observe, temperature=temperature)
                except (np.linalg.LinAlgError, KeyError, ValueError) as exc:
                    return self._failed(f"{spec.name}: {exc}", results)
                self.n_op_solves += len(values)
                results[spec.name] = SweepResult(values=values, observed=observed)
            elif isinstance(spec, TempSweepSpec):
                circuit = self._circuit(bench, design, circuits, spec.circuit)
                try:
                    temps, observed, points = temperature_sweep(
                        circuit, spec.temperatures, spec.observe)
                except (np.linalg.LinAlgError, KeyError, ValueError) as exc:
                    return self._failed(f"{spec.name}: {exc}", results)
                self.n_op_solves += len(points)
                if not all(p.converged for p in points):
                    return self._failed(f"{spec.name}: a sweep point did not "
                                        "converge", results)
                if not np.all(np.isfinite(observed)):
                    return self._failed(f"{spec.name}: non-finite sweep "
                                        "observation", results)
                results[spec.name] = SweepResult(values=temps, observed=observed,
                                                 points=points)
            else:  # pragma: no cover - guarded by Testbench validation
                raise TypeError(f"unknown analysis spec {type(spec).__name__}")

        context = MeasureContext(design=dict(design), circuits=circuits,
                                 results=results)
        for check in bench.checks:
            try:
                alive = check.fn(context)
            except MeasurementError as exc:
                return self._failed(f"check {check.description!r}: {exc}", results)
            if not alive:
                return self._failed(f"check failed: {check.description}", results)

        metrics: dict[str, float] = {}
        for measure in bench.measures:
            try:
                value = float(measure.fn(context))
            except MeasurementError as exc:
                return self._failed(f"measure {measure.name!r}: {exc}", results)
            if measure.require_finite and not np.isfinite(value):
                return self._failed(f"measure {measure.name!r} is not finite",
                                    results)
            metrics[measure.name] = value
        return SimResult(ok=True, metrics=metrics, analyses=results,
                         stats=self._stats())

    # ------------------------------------------------------------------ #
    # bookkeeping                                                         #
    # ------------------------------------------------------------------ #
    def _stats(self) -> dict[str, int]:
        return {"n_op_solves": self.n_op_solves,
                "n_op_reused": self.n_op_reused,
                "n_circuits_built": self.n_circuits_built}

    def _failed(self, reason: str, results: dict) -> SimResult:
        return SimResult(ok=False, failure=reason, analyses=results,
                         stats=self._stats())
