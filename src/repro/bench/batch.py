"""Batched testbench execution: one simulator session over many designs.

:class:`BatchSimulator` runs *structurally identical* testbench jobs --
same analysis specs, typically the same :class:`~repro.bench.Testbench`
applied to many design points or technology variants -- by grouping the
expensive solves across jobs:

* every operating-point solve of a given analysis position becomes one
  :func:`repro.spice.dc.dc_operating_point_batch` call over the jobs that
  still need it (per-job corner temperatures ride along as the batch's
  ``(B,)`` temperature vector);
* AC analyses become one :func:`repro.spice.ac.ac_analysis_batch` stacked
  solve;
* transient analyses become one
  :func:`repro.spice.transient.transient_analysis_batch` run -- every job
  keeps its own serial adaptive-timestep controller while the per-step
  Newton solves batch across all in-flight jobs;
* sweeps (data-dependent stepping over scalar parameters) run per job with
  the exact serial code.

Everything else -- operating-point memoisation keys, failure messages,
check/measure evaluation, stats counters -- mirrors
:class:`repro.bench.simulator.Simulator` per job, and the batched solvers
are bit-identical to their serial counterparts, so each job's
:class:`~repro.bench.testbench.SimResult` matches a serial
``Simulator().run(bench, design)`` exactly.

A job whose execution raises outside the simulator's modelled failure modes
(builder bugs, bad measure code, ...) yields a :class:`BatchJobError`
carrying the exception's type name and message instead of poisoning the
rest of the batch; callers translate it back into their serial error
handling (see :func:`repro.circuits.base.simulate_checked_batch`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import telemetry
from repro.bench.analyses import (
    ACSpec,
    DCSweepSpec,
    NoiseSpec,
    OPSpec,
    SweepResult,
    TempSweepSpec,
    TranSpec,
)
from repro.bench.measures import MeasureContext, MeasurementError
from repro.bench.testbench import SimResult, Testbench
from repro.errors import ConvergenceError, NetlistError
from repro.spice.ac import ac_analysis, ac_analysis_batch
from repro.spice.dc import dc_operating_point, dc_operating_point_batch
from repro.spice.noise import noise_analysis
from repro.spice.sweep import dc_sweep, temperature_sweep
from repro.spice.transient import transient_analysis, transient_analysis_batch

__test__ = False


@dataclass
class BatchJobError:
    """An unmodelled exception that killed one job of a batch.

    ``kind`` is the exception's type name and ``message`` the full
    ``"TypeName: text"`` string -- the same shape the engine's task-failure
    bookkeeping uses, so batched and pooled execution classify identically.
    """

    kind: str
    message: str


def _job_error(exc: Exception) -> BatchJobError:
    return BatchJobError(type(exc).__name__, f"{type(exc).__name__}: {exc}")


class _Job:
    """Per-job session state (the batch analogue of one Simulator run)."""

    __slots__ = ("bench", "design", "circuits", "ops", "results", "metrics",
                 "failure", "error", "n_op_solves", "n_op_reused",
                 "n_circuits_built")

    def __init__(self, bench: Testbench, design: dict[str, float]):
        self.bench = bench
        self.design = design
        self.circuits: dict[str, object] = {}
        self.ops: dict[tuple, object] = {}
        self.results: dict[str, object] = {}
        self.metrics: dict[str, float] = {}
        self.failure: str | None = None
        self.error: BatchJobError | None = None
        self.n_op_solves = 0
        self.n_op_reused = 0
        self.n_circuits_built = 0

    @property
    def alive(self) -> bool:
        return self.failure is None and self.error is None

    def stats(self) -> dict[str, int]:
        return {"n_op_solves": self.n_op_solves,
                "n_op_reused": self.n_op_reused,
                "n_circuits_built": self.n_circuits_built}


class BatchSimulator:
    """Execute many structurally identical testbench jobs as one batch."""

    def run(self, jobs) -> list[SimResult | BatchJobError]:
        """Run ``jobs`` -- an iterable of ``(bench, design)`` pairs.

        Returns one entry per job, in order: the job's :class:`SimResult`
        (bit-identical to a serial ``Simulator().run``) or a
        :class:`BatchJobError` when the job raised outside the simulator's
        modelled failure modes.
        """
        states = [_Job(bench, dict(design)) for bench, design in jobs]
        if not states:
            return []
        self._validate(states)
        reference = states[0].bench
        with telemetry.span("bench.run_batch", bench=reference.name,
                            batch=len(states)):
            for position, spec in enumerate(reference.analyses):
                if isinstance(spec, OPSpec):
                    self._run_op(states, position, spec.transient)
                elif isinstance(spec, ACSpec):
                    self._run_ac(states, position)
                elif isinstance(spec, NoiseSpec):
                    self._run_noise(states, position)
                elif isinstance(spec, TranSpec):
                    self._run_tran(states, position)
                else:
                    self._run_serial(states, position)
            self._run_measures(states)
        if telemetry.enabled():
            telemetry.inc("repro_bench_runs_total", len(states))
            failed = sum(1 for job in states if not job.alive)
            if failed:
                telemetry.inc("repro_bench_failures_total", failed)
            telemetry.inc("repro_op_solves_total",
                          sum(job.n_op_solves for job in states))
            telemetry.inc("repro_op_reused_total",
                          sum(job.n_op_reused for job in states))
        output: list[SimResult | BatchJobError] = []
        for job in states:
            if job.error is not None:
                output.append(job.error)
            elif job.failure is not None:
                output.append(SimResult(ok=False, failure=job.failure,
                                        analyses=job.results,
                                        stats=job.stats()))
            else:
                output.append(SimResult(ok=True, metrics=job.metrics,
                                        analyses=job.results,
                                        stats=job.stats()))
        return output

    # ------------------------------------------------------------------ #
    # structure validation                                                 #
    # ------------------------------------------------------------------ #
    def _validate(self, states: list[_Job]) -> None:
        reference = states[0].bench
        for job in states[1:]:
            bench = job.bench
            if len(bench.analyses) != len(reference.analyses):
                raise ValueError("batched jobs need structurally identical "
                                 "testbenches (analysis counts differ)")
            for spec, ref in zip(bench.analyses, reference.analyses):
                if (type(spec) is not type(ref) or spec.name != ref.name
                        or spec.circuit != ref.circuit
                        or getattr(spec, "op", None) != getattr(ref, "op", None)
                        or getattr(spec, "transient", None) != getattr(ref, "transient", None)):
                    raise ValueError(
                        f"batched jobs need structurally identical "
                        f"testbenches (analysis {ref.name!r} differs)")
                if isinstance(ref, ACSpec) and (
                        not np.array_equal(spec.frequencies, ref.frequencies)
                        or tuple(spec.observe) != tuple(ref.observe)):
                    raise ValueError(
                        f"batched jobs need identical AC frequency grids "
                        f"and observed nodes (analysis {ref.name!r})")
                if isinstance(ref, NoiseSpec) and (
                        not np.array_equal(spec.frequencies, ref.frequencies)
                        or spec.output != ref.output):
                    raise ValueError(
                        f"batched jobs need identical noise frequency grids "
                        f"and output nodes (analysis {ref.name!r})")
                if isinstance(ref, TranSpec) and (
                        spec.t_stop != ref.t_stop
                        or spec.reltol != ref.reltol
                        or spec.abstol != ref.abstol
                        or tuple(spec.observe) != tuple(ref.observe)):
                    raise ValueError(
                        f"batched jobs need identical transient windows, "
                        f"tolerances and observed nodes "
                        f"(analysis {ref.name!r})")
            if ([m.name for m in bench.measures]
                    != [m.name for m in reference.measures]):
                raise ValueError("batched jobs need identical measure sets")

    # ------------------------------------------------------------------ #
    # per-job state helpers                                               #
    # ------------------------------------------------------------------ #
    def _circuit(self, job: _Job, key: str):
        if key not in job.circuits:
            job.circuits[key] = job.bench.builders[key](job.design)
            job.n_circuits_built += 1
        return job.circuits[key]

    def _group_operating_points(self, pairs, transient: bool) -> list:
        """Memoised operating points for ``pairs`` of ``(job, spec)``.

        Missing biases are solved as *one* batched Newton run (per-job
        temperatures become the batch temperature vector); memo hits mirror
        the serial session counters.  Returns one op (or ``None`` on error)
        per pair.
        """
        resolved = [None] * len(pairs)
        to_solve = []
        for slot, (job, spec) in enumerate(pairs):
            temperature = spec.resolved_temperature(job.bench.temperature)
            key = (spec.circuit, float(temperature), bool(transient))
            if key in job.ops:
                job.n_op_reused += 1
                resolved[slot] = job.ops[key]
                continue
            try:
                circuit = self._circuit(job, spec.circuit)
            except Exception as exc:
                job.error = _job_error(exc)
                continue
            to_solve.append((slot, job, key, circuit, temperature))
        if not to_solve:
            return resolved

        circuits = [entry[3] for entry in to_solve]
        temperatures = np.array([entry[4] for entry in to_solve], dtype=float)
        overridden = []
        if transient:
            # Mirror transient_operating_point: hold every waveform source
            # at its t = 0 value for the initial-condition solve.
            for circuit in circuits:
                for device in circuit.devices:
                    waveform = getattr(device, "waveform", None)
                    if waveform is not None:
                        overridden.append((device, device.dc))
                        device.dc = waveform.value_at(0.0)
        try:
            try:
                ops = dc_operating_point_batch(circuits,
                                               temperature=temperatures)
            except (NetlistError, ValueError):
                # Design-dependent topologies cannot share a batch; solve
                # them serially (identical results, just without stacking).
                ops = []
                for (_, job, _, circuit, temperature) in to_solve:
                    try:
                        ops.append(dc_operating_point(
                            circuit, temperature=temperature))
                    except Exception as exc:
                        job.error = _job_error(exc)
                        ops.append(None)
            except Exception as exc:
                error = _job_error(exc)
                for (_, job, *_rest) in to_solve:
                    if job.error is None:
                        job.error = error
                ops = [None] * len(to_solve)
        finally:
            for device, dc in overridden:
                device.dc = dc
        for (slot, job, key, _, _), op in zip(to_solve, ops):
            if op is None:
                continue
            job.ops[key] = op
            job.n_op_solves += 1
            resolved[slot] = op
        return resolved

    def _resolve_ops(self, pairs, transient: bool) -> list:
        """The bias each AC/transient analysis linearises around."""
        resolved = [None] * len(pairs)
        implicit = []
        for slot, (job, spec) in enumerate(pairs):
            if spec.op is not None:
                job.n_op_reused += 1
                resolved[slot] = job.results[spec.op]
            else:
                implicit.append((slot, job, spec))
        if implicit:
            solved = self._group_operating_points(
                [(job, spec) for _, job, spec in implicit], transient)
            for (slot, *_rest), op in zip(implicit, solved):
                resolved[slot] = op
        return resolved

    # ------------------------------------------------------------------ #
    # analysis execution                                                   #
    # ------------------------------------------------------------------ #
    def _alive_pairs(self, states: list[_Job], position: int):
        return [(job, job.bench.analyses[position]) for job in states
                if job.alive]

    def _run_op(self, states: list[_Job], position: int,
                transient: bool) -> None:
        pairs = self._alive_pairs(states, position)
        ops = self._group_operating_points(pairs, transient)
        for (job, spec), op in zip(pairs, ops):
            if op is None:
                continue
            if not op.converged:
                job.failure = (f"{spec.name}: operating point of "
                               f"{job.bench.name!r} did not converge")
                continue
            job.results[spec.name] = op

    def _run_ac(self, states: list[_Job], position: int) -> None:
        pairs = self._alive_pairs(states, position)
        ops = self._resolve_ops(pairs, transient=False)
        ready = []
        for (job, spec), op in zip(pairs, ops):
            if op is None:
                continue
            if not op.converged:
                job.failure = (f"{spec.name}: bias for AC analysis "
                               "did not converge")
                continue
            try:
                circuit = self._circuit(job, spec.circuit)
            except Exception as exc:
                job.error = _job_error(exc)
                continue
            ready.append((job, spec, circuit, op))
        if not ready:
            return
        reference_spec = ready[0][1]
        try:
            analyses = ac_analysis_batch(
                [entry[2] for entry in ready], [entry[3] for entry in ready],
                reference_spec.frequencies,
                observe=list(reference_spec.observe))
        except Exception:
            # Heterogeneous topologies (or a stacked-path surprise): run the
            # serial analysis per job, capturing failures individually.
            analyses = []
            for job, spec, circuit, op in ready:
                try:
                    analyses.append(ac_analysis(circuit, op, spec.frequencies,
                                                observe=list(spec.observe)))
                except Exception as exc:
                    job.error = _job_error(exc)
                    analyses.append(None)
        for (job, spec, _, _), analysis in zip(ready, analyses):
            if analysis is not None:
                job.results[spec.name] = analysis

    def _run_noise(self, states: list[_Job], position: int) -> None:
        """Noise analyses: batched bias resolution, serial adjoint sweeps.

        The bias solves still group into one batched Newton run; the adjoint
        sweep itself runs the exact serial :func:`noise_analysis` per job
        (its stacked solve already vectorizes over the frequency axis), so
        batched results are trivially bit-identical to serial sessions.
        """
        pairs = self._alive_pairs(states, position)
        ops = self._resolve_ops(pairs, transient=False)
        for (job, spec), op in zip(pairs, ops):
            if op is None:
                continue
            if not op.converged:
                job.failure = (f"{spec.name}: bias for noise analysis "
                               "did not converge")
                continue
            try:
                circuit = self._circuit(job, spec.circuit)
            except Exception as exc:
                job.error = _job_error(exc)
                continue
            try:
                job.results[spec.name] = noise_analysis(
                    circuit, op, spec.frequencies, output=spec.output)
            except (np.linalg.LinAlgError, KeyError, ValueError) as exc:
                job.failure = f"{spec.name}: {exc}"
            except Exception as exc:
                job.error = _job_error(exc)

    def _run_tran(self, states: list[_Job], position: int) -> None:
        pairs = self._alive_pairs(states, position)
        ops = self._resolve_ops(pairs, transient=True)
        ready = []
        for (job, spec), op in zip(pairs, ops):
            if op is None:
                continue  # error already recorded during the bias solve
            if not op.converged:
                job.failure = (f"{spec.name}: transient initial "
                               "condition did not converge")
                continue
            try:
                circuit = self._circuit(job, spec.circuit)
            except Exception as exc:
                job.error = _job_error(exc)
                continue
            ready.append((job, spec, circuit, op))
        if not ready:
            return
        reference_spec = ready[0][1]
        try:
            outcomes = transient_analysis_batch(
                [entry[2] for entry in ready], reference_spec.t_stop,
                observe=list(reference_spec.observe),
                operating_points=[entry[3] for entry in ready],
                reltol=reference_spec.reltol, abstol=reference_spec.abstol,
                return_errors=True)
        except (NetlistError, ValueError):
            # Heterogeneous topologies cannot share a batch: run the serial
            # analysis per job, capturing failures individually.
            for job, spec, circuit, op in ready:
                try:
                    job.results[spec.name] = transient_analysis(
                        circuit, spec.t_stop, observe=list(spec.observe),
                        operating_point=op, reltol=spec.reltol,
                        abstol=spec.abstol)
                except ConvergenceError as exc:
                    job.failure = f"{spec.name}: {exc}"
                except Exception as exc:
                    job.error = _job_error(exc)
            return
        for (job, spec, _, _), outcome in zip(ready, outcomes):
            if isinstance(outcome, ConvergenceError):
                # The serial driver turns controller give-ups into job
                # failures; other exceptions are unmodelled errors.
                job.failure = f"{spec.name}: {outcome}"
            elif isinstance(outcome, Exception):
                job.error = _job_error(outcome)
            else:
                job.results[spec.name] = outcome

    def _run_serial(self, states: list[_Job], position: int) -> None:
        """Sweep analyses: the exact serial path, per job."""
        pairs = self._alive_pairs(states, position)
        for job, spec in pairs:
            if not job.alive:
                continue
            try:
                self._run_one_serial(job, spec)
            except Exception as exc:
                job.error = _job_error(exc)

    def _run_one_serial(self, job: _Job, spec) -> None:
        temperature = spec.resolved_temperature(job.bench.temperature)
        if isinstance(spec, DCSweepSpec):
            circuit = self._circuit(job, spec.circuit)
            try:
                values, observed = dc_sweep(
                    circuit, spec.device, spec.attribute, spec.values,
                    observe=spec.observe, temperature=temperature)
            except (np.linalg.LinAlgError, KeyError, ValueError) as exc:
                job.failure = f"{spec.name}: {exc}"
                return
            job.n_op_solves += len(values)
            job.results[spec.name] = SweepResult(values=values,
                                                 observed=observed)
        elif isinstance(spec, TempSweepSpec):
            circuit = self._circuit(job, spec.circuit)
            try:
                temps, observed, points = temperature_sweep(
                    circuit, spec.temperatures, spec.observe)
            except (np.linalg.LinAlgError, KeyError, ValueError) as exc:
                job.failure = f"{spec.name}: {exc}"
                return
            job.n_op_solves += len(points)
            if not all(p.converged for p in points):
                job.failure = f"{spec.name}: a sweep point did not converge"
                return
            if not np.all(np.isfinite(observed)):
                job.failure = f"{spec.name}: non-finite sweep observation"
                return
            job.results[spec.name] = SweepResult(values=temps,
                                                 observed=observed,
                                                 points=points)
        else:  # pragma: no cover - guarded by Testbench validation
            raise TypeError(f"unknown analysis spec {type(spec).__name__}")

    # ------------------------------------------------------------------ #
    # checks and measures                                                  #
    # ------------------------------------------------------------------ #
    def _run_measures(self, states: list[_Job]) -> None:
        for job in states:
            if not job.alive:
                continue
            try:
                self._run_job_measures(job)
            except Exception as exc:
                job.error = _job_error(exc)

    def _run_job_measures(self, job: _Job) -> None:
        context = MeasureContext(design=dict(job.design),
                                 circuits=job.circuits, results=job.results)
        for check in job.bench.checks:
            try:
                alive = check.fn(context)
            except MeasurementError as exc:
                job.failure = f"check {check.description!r}: {exc}"
                return
            if not alive:
                job.failure = f"check failed: {check.description}"
                return
        for measure in job.bench.measures:
            try:
                value = float(measure.fn(context))
            except MeasurementError as exc:
                job.failure = f"measure {measure.name!r}: {exc}"
                return
            if measure.require_finite and not np.isfinite(value):
                job.failure = f"measure {measure.name!r} is not finite"
                return
            job.metrics[measure.name] = value
