"""Declarative analysis specifications executed by the bench simulator.

An :class:`AnalysisSpec` names one simulation pass over one of a testbench's
circuits -- an operating point, an AC sweep, a transient run, a DC sweep or a
temperature sweep -- as plain data.  The :class:`~repro.bench.Simulator`
session executes the specs in order, memoising operating points so every
analysis that depends on the same ``(circuit, temperature)`` bias shares one
Newton solve instead of re-solving it per analysis.

Temperature is a first-class per-analysis field: ``temperature=None`` (the
default) inherits the testbench default, and any analysis can pin its own
value -- this is how PVT corner sweeps retarget a whole bench to a corner
temperature without touching the specs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.spice.dc import OperatingPoint


@dataclass(frozen=True)
class AnalysisSpec:
    """Base class: one named analysis bound to one of the bench's circuits.

    Attributes
    ----------
    name:
        Unique key of this analysis within its testbench; measures reference
        analyses by this name.
    circuit:
        Key of the circuit builder the analysis runs on (a testbench can own
        several variants of one netlist, e.g. open-loop and feedback).
    temperature:
        Analysis temperature in Celsius; ``None`` inherits the testbench
        default (nominally 27).
    """

    name: str
    circuit: str = "main"
    temperature: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("analysis needs a non-empty name")

    def resolved_temperature(self, default: float) -> float:
        return default if self.temperature is None else float(self.temperature)


@dataclass(frozen=True)
class OPSpec(AnalysisSpec):
    """DC operating point (``transient=True`` holds waveform sources at t=0).

    The solved :class:`~repro.spice.OperatingPoint` is registered both under
    the analysis name and under the simulator's implicit
    ``(circuit, temperature, transient)`` key, so later analyses on the same
    bias reuse it instead of re-solving.
    """

    transient: bool = False


@dataclass(frozen=True)
class ACSpec(AnalysisSpec):
    """Complex small-signal frequency sweep.

    Attributes
    ----------
    frequencies:
        Analysis frequencies in hertz (required).
    observe:
        Node names to record.
    op:
        Name of the :class:`OPSpec` whose solution linearises the circuit;
        ``None`` reuses (or solves once) the implicit operating point of this
        analysis' own ``(circuit, temperature)``.  Referencing an OP solved
        on a *different* circuit key is allowed as long as device names match
        -- the standard recipe for open-loop AC around a closed-loop bias.
    """

    frequencies: np.ndarray | None = None
    observe: tuple[str, ...] = ()
    op: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.frequencies is None:
            raise ValueError(f"AC analysis {self.name!r} needs frequencies")
        if not self.observe:
            raise ValueError(f"AC analysis {self.name!r} needs observe nodes")


@dataclass(frozen=True)
class NoiseSpec(AnalysisSpec):
    """Small-signal noise sweep (adjoint solve of the linearised AC system).

    Attributes
    ----------
    frequencies:
        Analysis frequencies in hertz, strictly positive (required).
    output:
        Output node whose noise voltage is observed (required).
    op:
        Name of the :class:`OPSpec` supplying the bias, with the same
        cross-circuit reuse rules as :class:`ACSpec`.

    The input-referred spectrum divides by the forward gain of the
    circuit's own declared AC excitation, so a bench wanting input-referred
    measures runs the noise analysis on a circuit variant whose input
    source sets ``ac=1``.
    """

    frequencies: np.ndarray | None = None
    output: str = ""
    op: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.frequencies is None or len(self.frequencies) == 0:
            raise ValueError(f"noise analysis {self.name!r} needs frequencies")
        if np.any(np.asarray(self.frequencies) <= 0.0):
            raise ValueError(
                f"noise analysis {self.name!r} needs positive frequencies")
        if not self.output:
            raise ValueError(f"noise analysis {self.name!r} needs an output node")


@dataclass(frozen=True)
class TranSpec(AnalysisSpec):
    """Adaptive-timestep transient run from the transient operating point."""

    t_stop: float = 0.0
    observe: tuple[str, ...] = ()
    reltol: float = 1e-4
    abstol: float = 1e-6
    op: str | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.t_stop <= 0.0:
            raise ValueError(f"transient analysis {self.name!r} needs t_stop > 0")
        if not self.observe:
            raise ValueError(f"transient analysis {self.name!r} needs observe nodes")


@dataclass(frozen=True)
class DCSweepSpec(AnalysisSpec):
    """Sweep one device attribute and record one node (restores the value)."""

    device: str = ""
    attribute: str = "dc"
    values: np.ndarray | None = None
    observe: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.device or self.values is None or not self.observe:
            raise ValueError(
                f"DC sweep {self.name!r} needs device, values and observe")


@dataclass(frozen=True)
class TempSweepSpec(AnalysisSpec):
    """Operating-point sweep across temperature, recording one node."""

    temperatures: np.ndarray | None = None
    observe: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.temperatures is None or not self.observe:
            raise ValueError(
                f"temperature sweep {self.name!r} needs temperatures and observe")


@dataclass
class SweepResult:
    """Outcome of a DC or temperature sweep.

    ``points`` carries the per-value operating points for temperature sweeps
    (the bandgap testbench reads branch currents from the mid-sweep point);
    DC sweeps record voltages only.
    """

    values: np.ndarray
    observed: np.ndarray
    points: list[OperatingPoint] = field(default_factory=list)
