"""The two synthetic technology nodes used throughout the evaluation.

Parameter values are in the range of published textbook/openly documented
numbers for generic 180 nm and 40 nm CMOS.  They are not any foundry's data;
what matters for reproducing the paper is the *relative* behaviour between
the nodes (supply, intrinsic gain, speed), which these cards preserve.
"""

from __future__ import annotations

from repro.pdk.technology import Technology
from repro.pdk.variation import MismatchCard
from repro.spice.devices.mosfet import MosfetModel, NoiseCard


def make_180nm() -> Technology:
    """Generic 180 nm CMOS: 1.8 V supply, high intrinsic gain, slower devices."""
    # Long-channel thermal factor (gamma ~ 2/3) with flicker coefficients
    # placing the 1/f corner near 100 kHz for a typical 10u/1u device at
    # 50 uA; PMOS flicker is the customary ~4x lower (buried channel).
    nmos = MosfetModel(
        polarity="nmos",
        vth0=0.45,
        kp=300e-6,
        lambda_per_um=0.08,
        cox=8.5e-3,
        cgdo=3.0e-10,
        vth_tc=-1.0e-3,
        noise=NoiseCard(gamma=2.0 / 3.0, kf=1.0e-30, af=1.0),
    )
    pmos = MosfetModel(
        polarity="pmos",
        vth0=0.45,
        kp=100e-6,
        lambda_per_um=0.10,
        cox=8.5e-3,
        cgdo=3.0e-10,
        vth_tc=-1.2e-3,
        noise=NoiseCard(gamma=2.0 / 3.0, kf=2.5e-31, af=1.0),
    )
    return Technology(
        name="180nm",
        vdd=1.8,
        nmos=nmos,
        pmos=pmos,
        min_length=0.18e-6,
        max_length=2.0e-6,
        min_width=0.5e-6,
        max_width=200e-6,
        # Pelgrom coefficients in the published 180 nm range: AVT ~ 3.5/4
        # mV*um, current-factor mismatch ~ 1 %*um.
        nmos_mismatch=MismatchCard(avt=3.5e-9, abeta=1.0e-8),
        pmos_mismatch=MismatchCard(avt=4.0e-9, abeta=1.0e-8),
    )


def make_40nm() -> Technology:
    """Generic 40 nm CMOS: 1.1 V supply, faster but much lower intrinsic gain."""
    # Short-channel devices run hotter thermally (gamma > 1) and, at these
    # areas, with markedly higher flicker density per device.
    nmos = MosfetModel(
        polarity="nmos",
        vth0=0.35,
        kp=520e-6,
        lambda_per_um=0.30,
        cox=1.5e-2,
        cgdo=2.0e-10,
        vth_tc=-0.8e-3,
        noise=NoiseCard(gamma=1.1, kf=2.0e-30, af=1.0),
    )
    pmos = MosfetModel(
        polarity="pmos",
        vth0=0.35,
        kp=220e-6,
        lambda_per_um=0.35,
        cox=1.5e-2,
        cgdo=2.0e-10,
        vth_tc=-1.0e-3,
        noise=NoiseCard(gamma=1.0, kf=5.0e-31, af=1.0),
    )
    return Technology(
        name="40nm",
        vdd=1.1,
        nmos=nmos,
        pmos=pmos,
        min_length=0.04e-6,
        max_length=0.5e-6,
        min_width=0.12e-6,
        max_width=50e-6,
        # Thinner oxide lowers AVT per area, but relative current-factor
        # mismatch worsens at small geometry.
        nmos_mismatch=MismatchCard(avt=2.0e-9, abeta=1.5e-8),
        pmos_mismatch=MismatchCard(avt=2.2e-9, abeta=1.5e-8),
    )


TECHNOLOGIES = {
    "180nm": make_180nm,
    "40nm": make_40nm,
}


def get_technology(name: str) -> Technology:
    """Look up a technology card by name (``"180nm"`` or ``"40nm"``)."""
    key = name.lower()
    if key not in TECHNOLOGIES:
        raise KeyError(f"unknown technology {name!r}; available: {sorted(TECHNOLOGIES)}")
    return TECHNOLOGIES[key]()
