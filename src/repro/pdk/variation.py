"""Pelgrom-style local device variation: mismatch cards and samples.

Global process spread is handled by the PVT corner layer
(:mod:`repro.bench.corners`): one scale/shift applied to *every* device of a
polarity.  Local mismatch is the statistical counterpart -- each transistor
gets its own random threshold and current-factor deviation, with a standard
deviation that shrinks with gate area following Pelgrom's law:

    sigma(Vth)        = avt  / sqrt(W * L)
    sigma(beta)/beta  = abeta / sqrt(W * L)

A :class:`MismatchCard` stores the per-polarity Pelgrom coefficients on the
technology card; a :class:`VariationSample` stores one drawn outcome as
*standard-normal z-scores per named device* -- deliberately area-free, so the
same sample describes the same silicon lottery for every design point and the
physical shifts are computed at netlist-build time from each device's actual
geometry (:func:`apply_variation`).

``Technology.with_variation(sample)`` derives a card carrying the sample,
mirroring ``with_corner``: the derived card keeps its ``name`` (design spaces
are keyed on the node name) while its ``fingerprint`` encodes the z-scores,
so per-sample simulation results can never share design-cache entries.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

#: Hard floor on the current-factor scale: a many-sigma beta draw must weaken
#: the device, never flip or null its polarity.
_MIN_BETA_SCALE = 0.05


@dataclass(frozen=True)
class MismatchCard:
    """Pelgrom mismatch coefficients of one device polarity.

    Attributes
    ----------
    avt:
        Threshold-voltage area coefficient in V*m (the familiar mV*um number
        times 1e-9): ``sigma_vth = avt / sqrt(W*L)`` with W and L in metres.
    abeta:
        Relative current-factor area coefficient in m (percent*um over 1e8):
        ``sigma_beta / beta = abeta / sqrt(W*L)``.
    """

    avt: float
    abeta: float

    def __post_init__(self) -> None:
        if self.avt < 0.0 or self.abeta < 0.0:
            raise ValueError(
                f"mismatch coefficients must be non-negative, got "
                f"avt={self.avt}, abeta={self.abeta}")

    def sigma_vth(self, width: float, length: float) -> float:
        """Threshold standard deviation (V) for a ``width x length`` device."""
        return self.avt / max(width * length, 1e-18) ** 0.5

    def sigma_beta(self, width: float, length: float) -> float:
        """Relative current-factor standard deviation for one device."""
        return self.abeta / max(width * length, 1e-18) ** 0.5


@dataclass(frozen=True)
class DeviceVariation:
    """Standard-normal mismatch draw of one named device.

    ``vth_z`` and ``beta_z`` are z-scores; the physical shift is scaled by
    the device's Pelgrom sigma (a function of its W*L) when the variation is
    applied to a built netlist, so one sample is meaningful across the whole
    design space.
    """

    device: str
    vth_z: float
    beta_z: float


@dataclass(frozen=True)
class VariationSample:
    """One Monte Carlo mismatch outcome: a z-score per matched device.

    Frozen and built from plain floats so it hashes into
    :attr:`~repro.pdk.Technology.fingerprint` via ``astuple`` like every
    other card parameter, and pickles cheaply to backend workers.

    Attributes
    ----------
    index:
        Position of this sample within its sampler stream (stable across
        serial/thread/process execution and checkpoint/resume; reports and
        per-sample records are keyed on it).
    devices:
        Per-device draws, sorted by device name.
    """

    index: int
    devices: tuple[DeviceVariation, ...]

    def __post_init__(self) -> None:
        names = [d.device for d in self.devices]
        if names != sorted(names):
            raise ValueError("device variations must be sorted by name")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate device names in sample: {names}")

    @classmethod
    def from_zscores(cls, index: int, device_names, vth_z, beta_z,
                     ) -> "VariationSample":
        """Assemble a sample from parallel name / z-score sequences."""
        draws = tuple(
            DeviceVariation(name, float(v), float(b))
            for name, v, b in sorted(zip(device_names, vth_z, beta_z)))
        return cls(index=int(index), devices=draws)

    @property
    def device_names(self) -> tuple[str, ...]:
        return tuple(d.device for d in self.devices)

    def describe(self) -> dict[str, object]:
        return {"index": self.index,
                "devices": {d.device: (d.vth_z, d.beta_z)
                            for d in self.devices}}


def nominal_sample(device_names) -> VariationSample:
    """The all-zeros sample: every device exactly at its card value."""
    zeros = [0.0] * len(tuple(device_names))
    return VariationSample.from_zscores(-1, tuple(device_names), zeros, zeros)


def apply_variation(circuit, technology) -> None:
    """Perturb the MOSFETs of a freshly built ``circuit`` in place.

    For every device named in ``technology.variation``, the threshold shifts
    by ``vth_z * sigma_vth(W, L)`` (magnitude convention, like
    ``with_corner``) and the current factor scales by
    ``1 + beta_z * sigma_beta(W, L)``, each sigma from the polarity's
    :class:`MismatchCard` and the device's own geometry.  Devices absent from
    the sample -- and non-MOSFET devices -- are untouched.

    Mutating in place is safe because circuit problems build a fresh netlist
    per simulation (see ``CircuitSizingProblem.bench``); the shared
    :class:`~repro.spice.devices.mosfet.MosfetModel` instances themselves are
    frozen, so a perturbed device gets a private replaced model.
    """
    from repro.spice.devices.mosfet import Mosfet

    sample = technology.variation
    if sample is None:
        return
    draws = {d.device: d for d in sample.devices}
    for device in circuit.devices:
        draw = draws.get(device.name)
        if draw is None or not isinstance(device, Mosfet):
            continue
        card = technology.mismatch_card(device.model.polarity)
        sigma_vth = card.sigma_vth(device.width, device.length)
        sigma_beta = card.sigma_beta(device.width, device.length)
        scale = max(1.0 + draw.beta_z * sigma_beta, _MIN_BETA_SCALE)
        device.model = replace(device.model,
                               vth0=device.model.vth0 + draw.vth_z * sigma_vth,
                               kp=device.model.kp * scale)
