"""Technology card: everything a testbench needs to know about a node."""

from __future__ import annotations

from dataclasses import dataclass

from repro.spice.devices.mosfet import MosfetModel


@dataclass(frozen=True)
class Technology:
    """A synthetic process node description.

    Attributes
    ----------
    name:
        Node identifier, e.g. ``"180nm"``.
    vdd:
        Nominal supply voltage (V).
    nmos / pmos:
        Level-1 device models.
    min_length / max_length:
        Allowed transistor channel lengths (m).
    min_width / max_width:
        Allowed transistor widths (m).
    """

    name: str
    vdd: float
    nmos: MosfetModel
    pmos: MosfetModel
    min_length: float
    max_length: float
    min_width: float
    max_width: float

    @property
    def common_mode(self) -> float:
        """Default input common-mode voltage used by the op-amp testbenches."""
        return 0.5 * self.vdd

    def clamp_length(self, length: float) -> float:
        return min(max(length, self.min_length), self.max_length)

    def clamp_width(self, width: float) -> float:
        return min(max(width, self.min_width), self.max_width)

    def describe(self) -> dict[str, float | str]:
        return {
            "name": self.name,
            "vdd": self.vdd,
            "nmos_vth": self.nmos.vth0,
            "pmos_vth": self.pmos.vth0,
            "nmos_kp": self.nmos.kp,
            "pmos_kp": self.pmos.kp,
            "min_length_nm": self.min_length * 1e9,
        }
