"""Technology card: everything a testbench needs to know about a node."""

from __future__ import annotations

import hashlib
from dataclasses import astuple, dataclass, replace

from repro.spice.devices.mosfet import MosfetModel


@dataclass(frozen=True)
class Technology:
    """A synthetic process node description.

    Attributes
    ----------
    name:
        Node identifier, e.g. ``"180nm"``.
    vdd:
        Nominal supply voltage (V).
    nmos / pmos:
        Level-1 device models.
    min_length / max_length:
        Allowed transistor channel lengths (m).
    min_width / max_width:
        Allowed transistor widths (m).
    corner:
        Process-corner label (``"tt"`` for the nominal card).  Derived corner
        cards (see :meth:`with_corner`) keep ``name`` unchanged -- design
        spaces and gain targets are keyed on the node name -- and record the
        corner here, so :attr:`fingerprint` still tells the cards apart.
    """

    name: str
    vdd: float
    nmos: MosfetModel
    pmos: MosfetModel
    min_length: float
    max_length: float
    min_width: float
    max_width: float
    corner: str = "tt"

    @property
    def common_mode(self) -> float:
        """Default input common-mode voltage used by the op-amp testbenches."""
        return 0.5 * self.vdd

    def clamp_length(self, length: float) -> float:
        return min(max(length, self.min_length), self.max_length)

    def clamp_width(self, width: float) -> float:
        return min(max(width, self.min_width), self.max_width)

    # ------------------------------------------------------------------ #
    # process corners                                                      #
    # ------------------------------------------------------------------ #
    def with_corner(self, *, nmos_kp_scale: float = 1.0,
                    nmos_vth_shift: float = 0.0,
                    pmos_kp_scale: float = 1.0,
                    pmos_vth_shift: float = 0.0,
                    vdd_scale: float = 1.0,
                    corner: str = "tt") -> "Technology":
        """A derived card with scaled device models and supply.

        ``kp`` scales multiplicatively (slow silicon has lower mobility) and
        ``vth0`` shifts additively in its magnitude convention (slow silicon
        has a higher threshold for both polarities).  Geometry limits -- and
        therefore the design space -- are unchanged, so nominal and corner
        cards size the same variables.
        """
        nmos = replace(self.nmos, kp=self.nmos.kp * nmos_kp_scale,
                       vth0=self.nmos.vth0 + nmos_vth_shift)
        pmos = replace(self.pmos, kp=self.pmos.kp * pmos_kp_scale,
                       vth0=self.pmos.vth0 + pmos_vth_shift)
        return replace(self, vdd=self.vdd * vdd_scale, nmos=nmos, pmos=pmos,
                       corner=corner)

    @property
    def fingerprint(self) -> str:
        """Digest of every card parameter (device models included).

        Two cards with the same ``name`` but different silicon -- e.g. the
        nominal node and an ``ss`` corner derived from it -- must never share
        design-cache entries; the circuit problems fold this digest into
        their cache tokens.
        """
        return hashlib.sha1(repr(astuple(self)).encode()).hexdigest()[:16]

    def describe(self) -> dict[str, float | str]:
        return {
            "name": self.name,
            "vdd": self.vdd,
            "nmos_vth": self.nmos.vth0,
            "pmos_vth": self.pmos.vth0,
            "nmos_kp": self.nmos.kp,
            "pmos_kp": self.pmos.kp,
            "min_length_nm": self.min_length * 1e9,
        }
