"""Technology card: everything a testbench needs to know about a node."""

from __future__ import annotations

import hashlib
from dataclasses import astuple, dataclass, replace

from repro.pdk.variation import MismatchCard, VariationSample
from repro.spice.devices.mosfet import MosfetModel, NoiseCard

#: Conservative generic Pelgrom coefficients used when a card does not set
#: its own (roughly mature-node textbook numbers: 4 mV*um and 1.5 %*um).
DEFAULT_MISMATCH = MismatchCard(avt=4.0e-9, abeta=1.5e-8)


@dataclass(frozen=True)
class Technology:
    """A synthetic process node description.

    Attributes
    ----------
    name:
        Node identifier, e.g. ``"180nm"``.
    vdd:
        Nominal supply voltage (V).
    nmos / pmos:
        Level-1 device models.
    min_length / max_length:
        Allowed transistor channel lengths (m).
    min_width / max_width:
        Allowed transistor widths (m).
    corner:
        Process-corner label (``"tt"`` for the nominal card).  Derived corner
        cards (see :meth:`with_corner`) keep ``name`` unchanged -- design
        spaces and gain targets are keyed on the node name -- and record the
        corner here, so :attr:`fingerprint` still tells the cards apart.
    nmos_mismatch / pmos_mismatch:
        Pelgrom local-mismatch coefficients per polarity (see
        :mod:`repro.pdk.variation`).
    variation:
        The local-mismatch sample applied to this card, or ``None`` for the
        statistically nominal card.  Like ``corner``, a set sample keeps
        ``name`` unchanged and only distinguishes the card through
        :attr:`fingerprint`.
    """

    name: str
    vdd: float
    nmos: MosfetModel
    pmos: MosfetModel
    min_length: float
    max_length: float
    min_width: float
    max_width: float
    corner: str = "tt"
    nmos_mismatch: MismatchCard = DEFAULT_MISMATCH
    pmos_mismatch: MismatchCard = DEFAULT_MISMATCH
    variation: VariationSample | None = None

    @property
    def common_mode(self) -> float:
        """Default input common-mode voltage used by the op-amp testbenches."""
        return 0.5 * self.vdd

    def clamp_length(self, length: float) -> float:
        return min(max(length, self.min_length), self.max_length)

    def clamp_width(self, width: float) -> float:
        return min(max(width, self.min_width), self.max_width)

    # ------------------------------------------------------------------ #
    # process corners                                                      #
    # ------------------------------------------------------------------ #
    def with_corner(self, *, nmos_kp_scale: float = 1.0,
                    nmos_vth_shift: float = 0.0,
                    pmos_kp_scale: float = 1.0,
                    pmos_vth_shift: float = 0.0,
                    vdd_scale: float = 1.0,
                    corner: str = "tt") -> "Technology":
        """A derived card with scaled device models and supply.

        ``kp`` scales multiplicatively (slow silicon has lower mobility) and
        ``vth0`` shifts additively in its magnitude convention (slow silicon
        has a higher threshold for both polarities).  Geometry limits -- and
        therefore the design space -- are unchanged, so nominal and corner
        cards size the same variables.
        """
        nmos = replace(self.nmos, kp=self.nmos.kp * nmos_kp_scale,
                       vth0=self.nmos.vth0 + nmos_vth_shift)
        pmos = replace(self.pmos, kp=self.pmos.kp * pmos_kp_scale,
                       vth0=self.pmos.vth0 + pmos_vth_shift)
        return replace(self, vdd=self.vdd * vdd_scale, nmos=nmos, pmos=pmos,
                       corner=corner)

    # ------------------------------------------------------------------ #
    # local mismatch                                                       #
    # ------------------------------------------------------------------ #
    def with_variation(self, sample: VariationSample | None) -> "Technology":
        """A derived card carrying one local-mismatch sample.

        The statistical counterpart of :meth:`with_corner`: device models and
        geometry limits stay nominal (the per-device shifts depend on each
        transistor's sized geometry, so they are applied at netlist-build
        time by :func:`repro.pdk.variation.apply_variation`), while the
        sample's z-scores enter :attr:`fingerprint` so no two samples -- and
        no sample and the nominal card -- ever share design-cache entries.
        """
        return replace(self, variation=sample)

    def mismatch_card(self, polarity: str) -> MismatchCard:
        """The Pelgrom coefficients of one polarity (``"nmos"``/``"pmos"``)."""
        if polarity == "nmos":
            return self.nmos_mismatch
        if polarity == "pmos":
            return self.pmos_mismatch
        raise ValueError(f"polarity must be 'nmos' or 'pmos', got {polarity!r}")

    def noise_card(self, polarity: str) -> NoiseCard:
        """The thermal/flicker noise card of one polarity.

        The card lives on the nested :class:`MosfetModel`, so derived
        corner/variation cards -- which ``replace`` the models -- carry it
        along and :attr:`fingerprint` hashes it with every other parameter.
        """
        if polarity == "nmos":
            return self.nmos.noise
        if polarity == "pmos":
            return self.pmos.noise
        raise ValueError(f"polarity must be 'nmos' or 'pmos', got {polarity!r}")

    @property
    def fingerprint(self) -> str:
        """Digest of every card parameter (device models included).

        Two cards with the same ``name`` but different silicon -- e.g. the
        nominal node and an ``ss`` corner derived from it -- must never share
        design-cache entries; the circuit problems fold this digest into
        their cache tokens.
        """
        return hashlib.sha1(repr(astuple(self)).encode()).hexdigest()[:16]

    def describe(self) -> dict[str, float | str]:
        return {
            "name": self.name,
            "vdd": self.vdd,
            "nmos_vth": self.nmos.vth0,
            "pmos_vth": self.pmos.vth0,
            "nmos_kp": self.nmos.kp,
            "pmos_kp": self.pmos.kp,
            "min_length_nm": self.min_length * 1e9,
        }
