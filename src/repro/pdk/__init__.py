"""Synthetic process design kits (PDKs).

The paper sizes circuits in proprietary 180 nm and 40 nm PDKs.  Offline, this
package provides open, synthetic-but-physically-sensible technology cards
with the qualitative differences that matter for transfer learning: the 40 nm
node has a lower supply, lower threshold, higher transconductance per area,
much stronger channel-length modulation (lower intrinsic gain) and smaller
allowed geometries.
"""

from repro.pdk.technology import Technology
from repro.pdk.nodes import TECHNOLOGIES, get_technology, make_180nm, make_40nm
from repro.spice.devices.mosfet import NoiseCard
from repro.pdk.variation import (
    DeviceVariation,
    MismatchCard,
    VariationSample,
    apply_variation,
    nominal_sample,
)

__all__ = [
    "Technology",
    "make_180nm",
    "make_40nm",
    "get_technology",
    "TECHNOLOGIES",
    "MismatchCard",
    "NoiseCard",
    "DeviceVariation",
    "VariationSample",
    "apply_variation",
    "nominal_sample",
]
