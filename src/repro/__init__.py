"""KATO: Knowledge Alignment And Transfer for Transistor Sizing.

A full reproduction of the DAC 2024 paper "KATO: Knowledge Alignment And
Transfer for Transistor Sizing Of Different Design and Technology".

The package is organised bottom-up:

* :mod:`repro.autodiff` -- reverse-mode automatic differentiation on numpy.
* :mod:`repro.nn` / :mod:`repro.optim` -- neural-network layers and optimizers.
* :mod:`repro.kernels` / :mod:`repro.gp` -- GP kernels (including the Neural
  Kernel of the paper) and exact Gaussian-process regression.
* :mod:`repro.moo` / :mod:`repro.acquisition` / :mod:`repro.bo` -- NSGA-II,
  acquisition functions and Bayesian-optimization engines (MACE and the
  modified constrained MACE).
* :mod:`repro.spice` / :mod:`repro.pdk` / :mod:`repro.circuits` -- an
  MNA-based analog circuit simulator, synthetic 180 nm / 40 nm technology
  cards and the three sizing problems used in the paper's evaluation.
* :mod:`repro.core` -- the KATO contribution: KAT-GP, NeukGP and Selective
  Transfer Learning (Algorithm 1).
* :mod:`repro.baselines` -- MESMOC, USeMOC, TLMBO and human-expert designs.
* :mod:`repro.engine` -- the batched evaluation engine: pluggable
  serial/thread/process execution backends, a content-hash design cache and
  failure isolation for every ``evaluate_batch`` in the library.
* :mod:`repro.mc` -- Monte Carlo mismatch & yield: Pelgrom variation cards
  on the technology nodes, seeded stream-splittable samplers, and
  engine-parallel Wilson-interval yield estimation with adaptive stopping
  behind the ``*_yield`` sizing problems.
* :mod:`repro.study` -- the unified Study API: the optimizer registry,
  declarative :class:`~repro.study.StudySpec` run specifications, the
  :class:`~repro.study.Study` driver (callbacks, JSONL checkpoint/resume)
  and the ``python -m repro`` command line.
* :mod:`repro.experiments` -- harnesses regenerating every table and figure.
"""

from repro.version import __version__

__all__ = ["__version__"]
