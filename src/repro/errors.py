"""Exception hierarchy shared across the KATO reproduction package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ShapeError(ReproError):
    """An array argument has an incompatible shape."""


class NotFittedError(ReproError):
    """A model method requiring a fitted model was called before ``fit``."""


class ConvergenceError(ReproError):
    """An iterative numerical procedure failed to converge."""


class NetlistError(ReproError):
    """A circuit netlist is malformed (unknown node, duplicate device, ...)."""


class SimulationError(ReproError):
    """A circuit simulation could not be completed."""


class DesignSpaceError(ReproError):
    """A design-space definition or a candidate point is invalid."""


class OptimizationError(ReproError):
    """A Bayesian-optimization loop was configured or driven incorrectly."""
