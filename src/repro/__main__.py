"""``python -m repro``: the study command line (see :mod:`repro.study.cli`)."""

import sys

from repro.study.cli import main

if __name__ == "__main__":
    sys.exit(main())
