"""Non-GP surrogate models (random forest for the SMAC-RF baseline)."""

from repro.surrogates.random_forest import DecisionTreeRegressor, RandomForestRegressor

__all__ = ["DecisionTreeRegressor", "RandomForestRegressor"]
