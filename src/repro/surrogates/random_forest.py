"""Regression trees and random forests.

The paper compares against SMAC-RF, whose defining component is a
random-forest surrogate with predictive uncertainty taken from the spread of
per-tree predictions.  scikit-learn is not available offline, so this module
provides a compact CART implementation sufficient for that baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import NotFittedError
from repro.utils.random import RandomState, as_rng
from repro.utils.validation import check_matrix, check_vector


@dataclass
class _Node:
    """A tree node; leaves store a prediction, internal nodes a split."""

    prediction: float
    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class DecisionTreeRegressor:
    """CART regression tree with variance-reduction splits.

    Parameters
    ----------
    max_depth:
        Maximum tree depth.
    min_samples_split / min_samples_leaf:
        Pre-pruning controls.
    max_features:
        Number of features considered per split (``None`` = all); random
        forests pass a subset size here.
    """

    def __init__(self, max_depth: int = 12, min_samples_split: int = 4,
                 min_samples_leaf: int = 2, max_features: int | None = None,
                 rng: RandomState = None):
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.rng = as_rng(rng)
        self._root: _Node | None = None
        self.n_features_: int | None = None

    def fit(self, x, y) -> "DecisionTreeRegressor":
        x = check_matrix(x, "x")
        y = check_vector(y, "y")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        self.n_features_ = x.shape[1]
        self._root = self._build(x, y, depth=0)
        return self

    def _best_split(self, x: np.ndarray, y: np.ndarray) -> tuple[int, float, float] | None:
        n, d = x.shape
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = self.rng.choice(d, size=self.max_features, replace=False)
        parent_sse = float(np.sum((y - y.mean()) ** 2))
        best: tuple[int, float, float] | None = None
        best_gain = 1e-12
        for feature in features:
            order = np.argsort(x[:, feature], kind="stable")
            xs, ys = x[order, feature], y[order]
            # Candidate thresholds: midpoints between distinct consecutive values.
            cum = np.cumsum(ys)
            cum_sq = np.cumsum(ys**2)
            total, total_sq = cum[-1], cum_sq[-1]
            for split_index in range(self.min_samples_leaf,
                                     n - self.min_samples_leaf + 1):
                if split_index >= n:
                    break
                if xs[split_index - 1] == xs[split_index]:
                    continue
                left_n = split_index
                right_n = n - split_index
                left_sum, left_sq = cum[split_index - 1], cum_sq[split_index - 1]
                right_sum, right_sq = total - left_sum, total_sq - left_sq
                left_sse = left_sq - left_sum**2 / left_n
                right_sse = right_sq - right_sum**2 / right_n
                gain = parent_sse - (left_sse + right_sse)
                if gain > best_gain:
                    best_gain = gain
                    threshold = 0.5 * (xs[split_index - 1] + xs[split_index])
                    best = (int(feature), float(threshold), float(gain))
        return best

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(prediction=float(y.mean()))
        if (depth >= self.max_depth or y.shape[0] < self.min_samples_split
                or np.all(y == y[0])):
            return node
        split = self._best_split(x, y)
        if split is None:
            return node
        feature, threshold, _ = split
        mask = x[:, feature] <= threshold
        if mask.sum() < self.min_samples_leaf or (~mask).sum() < self.min_samples_leaf:
            return node
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, x) -> np.ndarray:
        if self._root is None:
            raise NotFittedError("DecisionTreeRegressor must be fitted before prediction")
        x = check_matrix(x, "x", n_cols=self.n_features_)
        out = np.empty(x.shape[0])
        for index, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[index] = node.prediction
        return out


class RandomForestRegressor:
    """Bagged regression trees with empirical predictive variance.

    ``predict`` returns ``(mean, variance)`` so the forest is a drop-in
    surrogate for the acquisition functions in :mod:`repro.acquisition`.
    """

    def __init__(self, n_trees: int = 32, max_depth: int = 12,
                 min_samples_leaf: int = 2, max_features: str | int | None = "sqrt",
                 rng: RandomState = None):
        if n_trees < 1:
            raise ValueError("n_trees must be at least 1")
        self.n_trees = int(n_trees)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_features = max_features
        self.rng = as_rng(rng)
        self.trees_: list[DecisionTreeRegressor] = []
        self.n_features_: int | None = None

    def _resolve_max_features(self, d: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        if self.max_features == "third":
            return max(1, d // 3)
        return min(int(self.max_features), d)

    def fit(self, x, y) -> "RandomForestRegressor":
        x = check_matrix(x, "x")
        y = check_vector(y, "y")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        self.n_features_ = x.shape[1]
        n = x.shape[0]
        max_features = self._resolve_max_features(x.shape[1])
        self.trees_ = []
        for _ in range(self.n_trees):
            indices = self.rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=self.rng,
            )
            tree.fit(x[indices], y[indices])
            self.trees_.append(tree)
        return self

    def predict(self, x) -> tuple[np.ndarray, np.ndarray]:
        if not self.trees_:
            raise NotFittedError("RandomForestRegressor must be fitted before prediction")
        x = check_matrix(x, "x", n_cols=self.n_features_)
        per_tree = np.stack([tree.predict(x) for tree in self.trees_], axis=0)
        mean = per_tree.mean(axis=0)
        variance = per_tree.var(axis=0) + 1e-9
        return mean, variance
