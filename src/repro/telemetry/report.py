"""Pretty-printed summary of a metrics snapshot for local runs."""

from __future__ import annotations


def _bar(fraction: float, width: int = 20) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def render_report(snapshot: dict) -> str:
    """An aligned plain-text table of every counter and histogram."""
    counters = snapshot.get("counters") or {}
    histograms = snapshot.get("histograms") or {}
    lines = ["telemetry report", "================"]
    if not counters and not histograms:
        lines.append("(no metrics recorded)")
        return "\n".join(lines)
    if counters:
        width = max(len(name) for name in counters)
        lines.append("")
        lines.append("counters")
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]}")
    for name in sorted(histograms):
        data = histograms[name]
        count = int(data.get("count", 0))
        total = float(data.get("sum", 0.0))
        mean = total / count if count else float("nan")
        lines.append("")
        lines.append(f"{name}  (count={count}, mean={mean:.4g})")
        if not count:
            continue
        bounds = list(data.get("bounds", [])) + [float("inf")]
        for bound, bucket in zip(bounds, data.get("counts", [])):
            label = "+Inf" if bound == float("inf") else format(bound, "g")
            lines.append(f"  <= {label:>8}  {_bar(bucket / count)}  {bucket}")
    return "\n".join(lines)
