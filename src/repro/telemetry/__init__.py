"""Zero-overhead-when-disabled instrumentation: spans, counters, histograms.

The telemetry layer spans solver -> engine -> study -> service.  It is off
by default; enable it with the ``REPRO_TELEMETRY`` environment variable
(``1``/``true``/``yes``/``on``), the ``--telemetry`` CLI flag, or
:func:`enable`.  The contract with the rest of the codebase:

* **Disabled is free.**  Hot paths gate every telemetry action on
  :func:`enabled` (one module-level bool read) and never do per-iteration
  work; the overhead guard in ``benchmarks/test_bench_telemetry.py`` holds
  the instrumented B=64 DC batch within 2% of a stubbed-out baseline.
* **Values are untouched.**  Telemetry observes numbers the solvers
  already computed; :class:`SolveStats` rides on results as
  ``compare=False`` metadata excluded from cache keys, so every
  bit-identity suite passes with telemetry on and off.
* **Snapshots are plain dicts.**  :func:`snapshot` output is JSON-ready,
  merges by addition (:func:`merge_snapshots`), persists in the service
  store's ``metrics`` table, and renders to Prometheus text or a local
  report table.
"""

from __future__ import annotations

import os

from repro.telemetry.registry import (
    FRACTION_BUCKETS,
    ITERATION_BUCKETS,
    SECONDS_BUCKETS,
    Counter,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    prometheus_text,
)
from repro.telemetry.report import render_report
from repro.telemetry.spans import NULL_SPAN, NullSpan, Span, TraceBuffer
from repro.telemetry.stats import SolveStats

__all__ = [
    "Counter", "Histogram", "MetricsRegistry", "SolveStats", "Span",
    "NullSpan", "TraceBuffer", "enabled", "enable", "disable", "span",
    "inc", "observe", "record_solve", "snapshot", "reset", "export_trace",
    "merge_snapshots", "prometheus_text", "report", "registry", "trace",
    "ITERATION_BUCKETS", "SECONDS_BUCKETS", "FRACTION_BUCKETS",
]

_TRUTHY = ("1", "true", "yes", "on")

_ENABLED = os.environ.get("REPRO_TELEMETRY", "").strip().lower() in _TRUTHY

#: The process-local registry every instrumented component feeds.
registry = MetricsRegistry()
#: The process-local span buffer behind :func:`span` / :func:`export_trace`.
trace = TraceBuffer()


def enabled() -> bool:
    """Whether telemetry capture is on for this process."""
    return _ENABLED


def enable() -> None:
    """Turn telemetry on and export ``REPRO_TELEMETRY`` to child processes."""
    global _ENABLED
    _ENABLED = True
    os.environ["REPRO_TELEMETRY"] = "1"


def disable() -> None:
    global _ENABLED
    _ENABLED = False
    os.environ.pop("REPRO_TELEMETRY", None)


def span(name: str, **args):
    """A timed context manager; the shared no-op span when disabled."""
    if not _ENABLED:
        return NULL_SPAN
    return Span(name, args, trace)


def inc(name: str, amount: int = 1) -> None:
    if _ENABLED:
        registry.inc(name, amount)


def observe(name: str, value: float,
            bounds: tuple = ITERATION_BUCKETS) -> None:
    if _ENABLED:
        registry.observe(name, value, bounds)


def record_solve(stats: SolveStats) -> None:
    """Feed one solve's :class:`SolveStats` into the registry (if enabled)."""
    if not _ENABLED:
        return
    registry.inc("repro_solves_total")
    registry.inc("repro_newton_iterations_total", int(stats.iterations))
    if not stats.converged:
        registry.inc("repro_solve_failures_total")
    if stats.rescue_entered:
        registry.inc("repro_rescue_entries_total")
    if stats.damping_clamps:
        registry.inc("repro_damping_clamps_total", int(stats.damping_clamps))
    registry.observe("repro_solve_iterations", stats.iterations,
                     ITERATION_BUCKETS)
    if stats.analysis == "transient":
        registry.inc("repro_tran_accepted_steps_total", int(stats.n_accepted))
        registry.inc("repro_tran_rejected_steps_total", int(stats.n_rejected))
    # Batch-level fields (occupancy, pattern reuse) are recorded once per
    # batch by the batch drivers, not per design -- stats carry them only
    # as per-result metadata.


def snapshot() -> dict:
    return registry.snapshot()


def reset() -> None:
    """Clear the registry and the span buffer (tests, fresh runs)."""
    registry.reset()
    trace.clear()


def export_trace(path) -> int:
    """Write the buffered spans as a Perfetto-compatible JSON trace."""
    return trace.export(path)


def report() -> str:
    """A human-readable table of the current registry contents."""
    return render_report(registry.snapshot())
