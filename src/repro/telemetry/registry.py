"""Process-local metrics registry: counters and fixed-bucket histograms.

The registry is the aggregation point of the telemetry layer: solver,
engine, study and service code increment named counters and observe
histogram samples; snapshots of the whole registry travel as plain JSON
dicts (to the service ``metrics`` table, across worker processes, and out
of the ``/api/metrics`` endpoint) and merge by simple addition.

Everything here is cheap but not free -- callers on hot paths must gate
on :func:`repro.telemetry.enabled` so a disabled run never pays for it.
"""

from __future__ import annotations

from bisect import bisect_left
import threading

#: Newton-iterations-per-solve style distributions.
ITERATION_BUCKETS = (2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)
#: Wall-clock durations in seconds (spans, queue latency).
SECONDS_BUCKETS = (0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0)
#: Fractions in [0, 1] (batch convergence-mask occupancy, hit rates).
FRACTION_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0)

_SNAPSHOT_VERSION = 1


class Counter:
    """A monotonically increasing named integer."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bound histogram with Prometheus ``le`` bucket semantics.

    ``counts[i]`` holds observations ``<= bounds[i]`` (exclusive of the
    previous bound); ``counts[-1]`` is the ``+Inf`` overflow bucket.
    Counts are stored per-bucket and cumulated only at exposition time.
    """

    __slots__ = ("name", "bounds", "counts", "sum", "count", "_lock")

    def __init__(self, name: str, bounds: tuple[float, ...],
                 lock: threading.Lock):
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


class MetricsRegistry:
    """Thread-safe named counters and histograms with snapshot/merge."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- creation / access --------------------------------------------- #
    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name, self._lock)
            return counter

    def histogram(self, name: str,
                  bounds: tuple[float, ...] = ITERATION_BUCKETS) -> Histogram:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram(
                    name, bounds, self._lock)
            return histogram

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float,
                bounds: tuple[float, ...] = ITERATION_BUCKETS) -> None:
        self.histogram(name, bounds).observe(value)

    # -- snapshot / merge ----------------------------------------------- #
    def snapshot(self) -> dict:
        """A JSON-serialisable copy of every counter and histogram."""
        with self._lock:
            counters = {name: counter.value
                        for name, counter in self._counters.items()}
            histograms = {
                name: {"bounds": list(histogram.bounds),
                       "counts": list(histogram.counts),
                       "sum": histogram.sum,
                       "count": histogram.count}
                for name, histogram in self._histograms.items()}
        return {"version": _SNAPSHOT_VERSION, "counters": counters,
                "histograms": histograms}

    def merge(self, snapshot: dict) -> None:
        """Add a :meth:`snapshot`-shaped dict into this registry."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(int(value))
        for name, data in (snapshot.get("histograms") or {}).items():
            bounds = tuple(float(b) for b in data.get("bounds", ()))
            histogram = self.histogram(name, bounds or ITERATION_BUCKETS)
            counts = [int(c) for c in data.get("counts", ())]
            if len(counts) != len(histogram.counts):
                continue  # incompatible bounds; drop rather than corrupt
            with self._lock:
                for i, c in enumerate(counts):
                    histogram.counts[i] += c
                histogram.sum += float(data.get("sum", 0.0))
                histogram.count += int(data.get("count", 0))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._histograms.clear()


def merge_snapshots(snapshots) -> dict:
    """Merge an iterable of snapshot dicts into one (pure function)."""
    merged = MetricsRegistry()
    for snapshot in snapshots:
        if snapshot:
            merged.merge(snapshot)
    return merged.snapshot()


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: dict) -> str:
    """Render a snapshot in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in sorted(snapshot.get("counters") or {}):
        value = snapshot["counters"][name]
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_number(value)}")
    for name in sorted(snapshot.get("histograms") or {}):
        data = snapshot["histograms"][name]
        lines.append(f"# TYPE {name} histogram")
        cumulative = 0
        for bound, count in zip(data["bounds"], data["counts"]):
            cumulative += count
            lines.append(f'{name}_bucket{{le="{format(bound, "g")}"}} '
                         f"{cumulative}")
        cumulative += data["counts"][-1]
        lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{name}_sum {_format_number(data['sum'])}")
        lines.append(f"{name}_count {data['count']}")
    return "\n".join(lines) + "\n"
