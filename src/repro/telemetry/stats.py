"""The structured per-solve statistics record attached to solver results.

A :class:`SolveStats` travels on :class:`~repro.spice.dc.OperatingPoint`
and :class:`~repro.spice.transient.TransientResult` as pure metadata: it is
excluded from dataclass equality (``compare=False`` at the attachment
site), never hashed into cache keys (those hash only design bytes), and
never compared by the bit-identity suites.  The cheap always-on fields
(iteration counts, residuals, ladder depth) are built from values the
solvers already compute; the optional ``residual_trajectory`` is only
collected when telemetry is enabled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import math


@dataclass
class SolveStats:
    """Counters and residual data from one DC or transient solve."""

    analysis: str = "dc"
    converged: bool = True
    #: Total Newton iterations across every ladder step walked.
    iterations: int = 0
    #: Newton iterations spent at each gmin step, in ladder order.
    iterations_per_gmin: tuple = ()
    #: Number of gmin ladder steps walked (primary + rescue).
    gmin_steps: int = 0
    #: Whether the failed-solve rescue ladder was entered.
    rescue_entered: bool = False
    #: Newton updates clipped by the damping limiter.
    damping_clamps: int = 0
    #: max|delta| at the iteration the solve stopped (NaN if never computed).
    final_residual: float = math.nan
    #: gmin in effect when the solve stopped (0 for an undamped direct solve).
    final_gmin: float = 0.0
    #: Per-iteration max|delta| values; only collected when telemetry is on.
    residual_trajectory: tuple = ()
    # -- transient-only ------------------------------------------------- #
    n_accepted: int = 0
    n_rejected: int = 0
    dt_min: float = math.nan
    dt_max: float = math.nan
    # -- batch-only ----------------------------------------------------- #
    batch_size: int = 1
    #: Mean fraction of the batch still active per Newton iteration.
    batch_occupancy: float = math.nan
    #: Sparse stamper assemblies that reused the locked sparsity pattern.
    pattern_reuse_hits: int = 0

    def failure_detail(self) -> str:
        """The per-design fragment embedded in ConvergenceError messages.

        Serial and batched solvers compute residual and gmin through
        bit-identical arithmetic, so this string is identical on both
        paths -- the failure-message bit-identity tests rely on that.
        """
        return (f"after {self.iterations} Newton iterations "
                f"(residual={self.final_residual:.3e}, "
                f"gmin={self.final_gmin:.0e})")

    def as_dict(self) -> dict:
        """A compact JSON-ready view (NaNs and empty sequences dropped)."""
        out: dict = {"analysis": self.analysis, "converged": self.converged,
                     "iterations": self.iterations}
        if self.iterations_per_gmin:
            out["iterations_per_gmin"] = list(self.iterations_per_gmin)
        if self.gmin_steps:
            out["gmin_steps"] = self.gmin_steps
        if self.rescue_entered:
            out["rescue_entered"] = True
        if self.damping_clamps:
            out["damping_clamps"] = self.damping_clamps
        if not math.isnan(self.final_residual):
            out["final_residual"] = self.final_residual
        if self.final_gmin:
            out["final_gmin"] = self.final_gmin
        if self.residual_trajectory:
            out["residual_trajectory"] = list(self.residual_trajectory)
        if self.analysis == "transient":
            out["n_accepted"] = self.n_accepted
            out["n_rejected"] = self.n_rejected
            if not math.isnan(self.dt_min):
                out["dt_min"] = self.dt_min
            if not math.isnan(self.dt_max):
                out["dt_max"] = self.dt_max
        if self.batch_size > 1:
            out["batch_size"] = self.batch_size
            if not math.isnan(self.batch_occupancy):
                out["batch_occupancy"] = self.batch_occupancy
            if self.pattern_reuse_hits:
                out["pattern_reuse_hits"] = self.pattern_reuse_hits
        return out
