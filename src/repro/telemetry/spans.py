"""Thread-local nested spans with Perfetto-compatible trace export.

A span brackets one unit of work (study batch, design evaluation, analysis,
solve).  Spans nest per thread -- the exporter emits Chrome/Perfetto
"complete" (``ph: "X"``) events keyed by pid/tid, so the trace viewer
reconstructs the nesting from time containment without explicit parent
links.  The buffer is bounded: beyond :data:`MAX_EVENTS` new events are
counted as dropped instead of growing without limit.

Use :func:`repro.telemetry.span` (which returns a shared null span when
telemetry is disabled) rather than instantiating :class:`Span` directly.
"""

from __future__ import annotations

import json
import os
import threading
import time

#: Hard cap on buffered trace events per process.
MAX_EVENTS = 200_000


class TraceBuffer:
    """A bounded, thread-safe buffer of Chrome-trace events."""

    def __init__(self, max_events: int = MAX_EVENTS):
        self._lock = threading.Lock()
        self._events: list[dict] = []
        self.max_events = int(max_events)
        self.dropped = 0

    def add(self, event: dict) -> None:
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return
            self._events.append(event)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def events(self) -> list[dict]:
        with self._lock:
            return list(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    def export(self, path) -> int:
        """Write a Perfetto/Chrome-trace JSON file; returns event count."""
        events = self.events()
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        if self.dropped:
            payload["metadata"] = {"dropped_events": self.dropped}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(events)


class _ThreadState(threading.local):
    def __init__(self):
        self.stack: list[str] = []


_THREAD = _ThreadState()


class Span:
    """One timed, named region; use as a context manager."""

    __slots__ = ("name", "args", "buffer", "_start_ns")

    def __init__(self, name: str, args: dict, buffer: TraceBuffer):
        self.name = name
        self.args = args
        self.buffer = buffer
        self._start_ns = 0

    def __enter__(self) -> "Span":
        _THREAD.stack.append(self.name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration_ns = time.perf_counter_ns() - self._start_ns
        _THREAD.stack.pop()
        event = {"name": self.name, "ph": "X",
                 "ts": self._start_ns / 1000.0,
                 "dur": duration_ns / 1000.0,
                 "pid": os.getpid(), "tid": threading.get_ident()}
        if self.args:
            event["args"] = self.args
        self.buffer.add(event)
        return False


class NullSpan:
    """The disabled-mode span: a reusable no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = NullSpan()


def current_depth() -> int:
    """Nesting depth of the calling thread's open spans (for tests)."""
    return len(_THREAD.stack)
