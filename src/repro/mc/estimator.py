"""Yield estimation: Wilson confidence intervals and adaptive stopping.

Pass/fail Monte Carlo yields a binomial proportion; the Wilson score
interval is the standard choice for it because -- unlike the naive normal
("Wald") interval -- it stays inside ``[0, 1]``, never collapses to zero
width at 0% or 100% observed yield, and keeps close-to-nominal coverage at
the small sample counts adaptive stopping aims for.

:class:`YieldEstimator` accumulates pass/fail counts and answers the one
question the adaptive loop asks after each batch: *is the interval already
tight enough to stop?*  Stopping is monotone-safe by construction: the loop
only ever stops at a batch boundary where the freshly computed half-width is
at or below the target, so the *reported* interval of a ``ci_target`` stop
can never be wider than the configuration promised.
"""

from __future__ import annotations

from dataclasses import dataclass

from scipy.special import ndtri


def normal_quantile(confidence: float) -> float:
    """Two-sided standard-normal quantile for a confidence level."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    return float(ndtri(0.5 + 0.5 * confidence))


def wilson_interval(successes: int, trials: int,
                    confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns the vacuous ``(0, 1)`` for zero trials, so callers can treat
    "no data yet" uniformly as "maximally uncertain".
    """
    if successes < 0 or trials < 0 or successes > trials:
        raise ValueError(f"need 0 <= successes <= trials, "
                         f"got {successes}/{trials}")
    if trials == 0:
        return (0.0, 1.0)
    z = normal_quantile(confidence)
    n = float(trials)
    p = successes / n
    z2_n = z * z / n
    denom = 1.0 + z2_n
    center = (p + 0.5 * z2_n) / denom
    half = z * ((p * (1.0 - p) + 0.25 * z2_n) / n) ** 0.5 / denom
    return (max(0.0, center - half), min(1.0, center + half))


@dataclass(frozen=True)
class YieldEstimate:
    """One snapshot of the running yield estimate.

    ``value`` is the raw sample proportion (what converges to the true
    yield); the Wilson bounds quantify its uncertainty at ``confidence``.
    """

    n_samples: int
    n_pass: int
    value: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def half_width(self) -> float:
        """Half the Wilson interval width -- the adaptive-stopping criterion."""
        return 0.5 * (self.ci_high - self.ci_low)

    def as_metrics(self, prefix: str = "yield") -> dict[str, float]:
        """Flat float dict merged into a problem's metric dictionary."""
        return {
            prefix: float(self.value),
            f"{prefix}_ci_low": float(self.ci_low),
            f"{prefix}_ci_high": float(self.ci_high),
        }


class YieldEstimator:
    """Accumulate pass/fail outcomes into a Wilson-interval yield estimate."""

    def __init__(self, confidence: float = 0.95):
        self.confidence = float(confidence)
        normal_quantile(self.confidence)  # validate eagerly
        self.n_samples = 0
        self.n_pass = 0

    def add(self, n_pass: int, n_samples: int) -> None:
        """Record one batch of outcomes."""
        if n_pass < 0 or n_samples < 0 or n_pass > n_samples:
            raise ValueError(f"need 0 <= n_pass <= n_samples, "
                             f"got {n_pass}/{n_samples}")
        self.n_pass += int(n_pass)
        self.n_samples += int(n_samples)

    def update(self, passed: bool) -> None:
        """Record a single outcome."""
        self.add(1 if passed else 0, 1)

    def estimate(self) -> YieldEstimate:
        low, high = wilson_interval(self.n_pass, self.n_samples,
                                    self.confidence)
        value = (self.n_pass / self.n_samples) if self.n_samples else 0.0
        return YieldEstimate(n_samples=self.n_samples, n_pass=self.n_pass,
                             value=float(value), ci_low=low, ci_high=high,
                             confidence=self.confidence)

    def reached(self, ci_half_width: float | None) -> bool:
        """Whether the interval is tight enough for the given target."""
        if ci_half_width is None:
            return False
        return self.estimate().half_width <= float(ci_half_width)
