"""Seeded, stream-splittable mismatch samplers.

A sampler turns ``(seed, sample index)`` into a
:class:`~repro.pdk.VariationSample` -- one standard-normal z-score per
(device, parameter) -- through one of three designs:

* ``normal`` -- independent pseudo-random draws; the reference estimator.
* ``lhs`` -- Latin-hypercube stratification, reusing the same unit-cube
  machinery as :meth:`repro.bo.DesignSpace.latin_hypercube`.
* ``sobol`` -- a scrambled Sobol sequence (variance reduction for smooth
  yield surfaces), via :func:`repro.bo.design_space.sobol_unit`.

Determinism is the load-bearing property: the whole ``(n_max, dim)`` z-score
block is a pure function of the seed, materialised lazily *once* in the
coordinating process and only ever sliced by index.  However the adaptive
loop batches its draws, whichever serial/thread/process backend executes
them, and wherever a checkpointed study resumes, sample ``i`` is always the
same silicon -- which is what makes yield estimates bit-identical across all
of those axes (and lets per-sample cache tokens mean anything at all).

Samplers are *stream-splittable*: :meth:`MismatchSampler.split` derives
independent child streams (one per repetition, shard or worker island) from
the parent seed via ``numpy.random.SeedSequence`` spawning, so concurrent
studies never share or overlap draws.
"""

from __future__ import annotations

import numpy as np
from scipy.special import ndtri

from repro.bo.design_space import latin_hypercube_unit, sobol_unit
from repro.pdk import VariationSample
from repro.utils.random import spawn_seed_ints
from repro.utils.validation import suggestion_hint

#: Uniform draws are clipped inside the open interval before the inverse
#: normal CDF, so a scrambled point landing exactly on a cell edge cannot
#: produce an infinite z-score.
_UNIT_EPS = 1e-12


class MismatchSampler:
    """Base class: deterministic per-device z-score streams.

    Parameters
    ----------
    device_names:
        The matched devices; two mismatch parameters (vth, beta) are drawn
        per device.  Stored sorted so the column layout is stable whatever
        order the caller enumerated the netlist in.
    seed:
        Stream seed.  Equal seeds (and equal device sets) give bit-identical
        streams; :meth:`split` derives non-overlapping child seeds.
    n_max:
        Stream length: the largest sample index that may be requested.
        Fixed up front because stratified designs (LHS) depend on the total
        count -- growing a stream would silently change *every* draw.
    """

    name = "base"

    def __init__(self, device_names, seed: int = 0, n_max: int = 2048):
        self.device_names = tuple(sorted(device_names))
        if not self.device_names:
            raise ValueError("sampler needs at least one device name")
        self.seed = int(seed)
        if n_max < 1:
            raise ValueError(f"n_max must be >= 1, got {n_max}")
        self.n_max = int(n_max)
        self._zscores: np.ndarray | None = None

    @property
    def dim(self) -> int:
        """Mismatch dimensions: vth and beta per device."""
        return 2 * len(self.device_names)

    def _generate(self) -> np.ndarray:
        """The full ``(n_max, dim)`` z-score block (pure function of seed)."""
        raise NotImplementedError

    @property
    def zscores(self) -> np.ndarray:
        if self._zscores is None:
            z = np.asarray(self._generate(), dtype=float)
            if z.shape != (self.n_max, self.dim):
                raise ValueError(f"sampler produced shape {z.shape}, "
                                 f"expected {(self.n_max, self.dim)}")
            z.setflags(write=False)
            self._zscores = z
        return self._zscores

    def take(self, start: int, count: int) -> list[VariationSample]:
        """Samples ``start .. start+count-1`` of this stream, by index."""
        if start < 0 or count < 0 or start + count > self.n_max:
            raise ValueError(
                f"requested samples [{start}, {start + count}) outside the "
                f"stream length {self.n_max}")
        d = len(self.device_names)
        block = self.zscores[start:start + count]
        return [VariationSample.from_zscores(start + i, self.device_names,
                                             row[:d], row[d:])
                for i, row in enumerate(block)]

    def split(self, count: int) -> list["MismatchSampler"]:
        """``count`` independent same-design child streams."""
        return [type(self)(self.device_names, seed=child, n_max=self.n_max)
                for child in spawn_seed_ints(self.seed, count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}(devices={len(self.device_names)}, "
                f"seed={self.seed}, n_max={self.n_max})")


class NormalSampler(MismatchSampler):
    """Independent standard-normal draws (plain Monte Carlo)."""

    name = "normal"

    def _generate(self) -> np.ndarray:
        rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        return rng.standard_normal((self.n_max, self.dim))


class LatinHypercubeSampler(MismatchSampler):
    """Latin-hypercube stratified normals.

    Stratification is over the whole ``n_max`` stream; an adaptively stopped
    prefix keeps the determinism guarantee but only approximates the
    stratified variance reduction.
    """

    name = "lhs"

    def _generate(self) -> np.ndarray:
        rng = np.random.default_rng(np.random.SeedSequence(self.seed))
        u = latin_hypercube_unit(self.n_max, self.dim, rng)
        return ndtri(np.clip(u, _UNIT_EPS, 1.0 - _UNIT_EPS))


class SobolSampler(MismatchSampler):
    """Scrambled-Sobol quasi-random normals."""

    name = "sobol"

    def _generate(self) -> np.ndarray:
        u = sobol_unit(self.n_max, self.dim, seed=self.seed)
        return ndtri(np.clip(u, _UNIT_EPS, 1.0 - _UNIT_EPS))


_SAMPLERS: dict[str, type[MismatchSampler]] = {
    NormalSampler.name: NormalSampler,
    LatinHypercubeSampler.name: LatinHypercubeSampler,
    "latin_hypercube": LatinHypercubeSampler,
    SobolSampler.name: SobolSampler,
}


def available_samplers() -> list[str]:
    """Names accepted by :func:`make_sampler`."""
    return sorted(_SAMPLERS)


def make_sampler(name: str, device_names, seed: int = 0,
                 n_max: int = 2048) -> MismatchSampler:
    """Instantiate a sampler by registry name."""
    key = str(name).lower()
    if key not in _SAMPLERS:
        raise ValueError(f"unknown sampler {name!r}"
                         f"{suggestion_hint(key, _SAMPLERS)}; "
                         f"available: {available_samplers()}")
    return _SAMPLERS[key](device_names, seed=seed, n_max=n_max)
