"""Monte Carlo mismatch and yield: the statistical robustness layer.

PVT corners (:mod:`repro.bench.corners`) cover *global* process spread with
a handful of deterministic conditions; this package covers *local* device
mismatch -- the dominant yield killer for matched analog circuits -- with
seeded Monte Carlo over the Pelgrom variation cards in :mod:`repro.pdk`:

* :mod:`repro.mc.samplers` -- deterministic, stream-splittable
  Normal / Latin-hypercube / Sobol z-score streams over the matched devices;
* :mod:`repro.mc.estimator` -- Wilson-interval yield estimation and the
  adaptive-stopping criterion;
* :mod:`repro.mc.runner` -- :class:`MonteCarloRunner`, fanning sample
  batches through the engine's serial/thread/process execution backends
  with per-sample cache identities and bit-identical results on all of them.

The ``*_yield`` sizing problems in :mod:`repro.circuits.montecarlo` wrap
this machinery into drop-in optimization problems (objective s.t. yield >=
target) consumable by every optimizer, the Study API and the CLI.
"""

from repro.mc.estimator import (
    YieldEstimate,
    YieldEstimator,
    normal_quantile,
    wilson_interval,
)
from repro.mc.runner import (
    MonteCarloConfig,
    MonteCarloResult,
    MonteCarloRunner,
    SampleFailure,
    classify_pass,
)
from repro.mc.samplers import (
    LatinHypercubeSampler,
    MismatchSampler,
    NormalSampler,
    SobolSampler,
    available_samplers,
    make_sampler,
)

__all__ = [
    "MismatchSampler",
    "NormalSampler",
    "LatinHypercubeSampler",
    "SobolSampler",
    "available_samplers",
    "make_sampler",
    "YieldEstimate",
    "YieldEstimator",
    "wilson_interval",
    "normal_quantile",
    "MonteCarloConfig",
    "MonteCarloResult",
    "MonteCarloRunner",
    "SampleFailure",
    "classify_pass",
]
