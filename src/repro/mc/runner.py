"""The Monte Carlo mismatch runner: sample fan-out with adaptive stopping.

:class:`MonteCarloRunner` is the statistical counterpart of
:class:`~repro.bench.CornerSweep`: where the corner sweep fans one design
across a handful of deterministic PVT conditions, the runner fans it across
*sampled* local-mismatch outcomes -- each one a derived
:class:`~repro.pdk.Technology` card carrying a
:class:`~repro.pdk.VariationSample` -- through the same pluggable
serial/thread/process execution backends as the batched evaluation engine.

Per batch, every sample's simulation is classified pass/fail against the
wrapped problem's constraints and folded into a running Wilson-interval
yield estimate (:mod:`repro.mc.estimator`); the loop stops as soon as the
interval is tighter than the configured target (never before ``n_min``
samples) or when ``n_max`` is exhausted.  Cheap designs -- deeply feasible
or hopelessly dead, where a few dozen samples already pin the yield near 1
or 0 -- cost ~``n_min`` simulations, while marginal designs earn the full
budget.

Determinism: samples are materialised by index in the coordinating process
(:mod:`repro.mc.samplers`), backends return results in input order, and all
aggregation is sequential over that order -- so a yield estimate is
bit-identical across serial, thread and process execution and across a
checkpoint/resume of the surrounding study.  Every sample's derived card has
its own :attr:`~repro.pdk.Technology.fingerprint` (the z-scores are hashed
in), so per-sample simulations can never collide in a shared design cache.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields

from repro.engine.backends import BackendOwner, ExecutionBackend
from repro.mc.estimator import YieldEstimate, YieldEstimator
from repro.mc.samplers import available_samplers, make_sampler
from repro.pdk import VariationSample


@dataclass(frozen=True)
class MonteCarloConfig:
    """Declarative Monte Carlo setup (JSON-plain, cache-token friendly).

    Attributes
    ----------
    n_max:
        Sample budget per design (also the sampler stream length).
    n_min:
        Samples always run before adaptive stopping may trigger; guards
        against stopping on the spuriously tight intervals of tiny counts.
    batch_size:
        Samples dispatched per backend ``map`` call -- the adaptive-stopping
        granularity, and the unit parallelised across workers.
    sampler:
        Sampler registry name (``"normal"``, ``"lhs"``, ``"sobol"``).
    seed:
        Sampler stream seed.  Every design evaluated by one runner sees the
        *same* sample stream (common random numbers), so design-to-design
        yield differences reflect the designs, not sampling noise.
    confidence:
        Confidence level of the Wilson interval.
    ci_half_width:
        Adaptive-stopping target: stop once the interval half-width is at or
        below this.  ``None`` disables stopping -- every design runs the
        full ``n_max`` (what throughput benchmarks and variance studies want).
    """

    n_max: int = 256
    n_min: int = 32
    batch_size: int = 32
    sampler: str = "normal"
    seed: int = 0
    confidence: float = 0.95
    ci_half_width: float | None = 0.05

    def __post_init__(self) -> None:
        if self.n_max < 1:
            raise ValueError(f"n_max must be >= 1, got {self.n_max}")
        if not 1 <= self.n_min <= self.n_max:
            raise ValueError(f"need 1 <= n_min <= n_max, got n_min={self.n_min} "
                             f"with n_max={self.n_max}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if str(self.sampler).lower() not in available_samplers():
            raise ValueError(f"unknown sampler {self.sampler!r}; "
                             f"available: {available_samplers()}")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1), "
                             f"got {self.confidence}")
        if self.ci_half_width is not None and not 0.0 < self.ci_half_width < 0.5:
            raise ValueError(f"ci_half_width must be in (0, 0.5) or null, "
                             f"got {self.ci_half_width}")

    @classmethod
    def from_dict(cls, data: dict) -> "MonteCarloConfig":
        """Build from plain data (what ``problem_options`` carries)."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown Monte Carlo config fields {unknown}; "
                             f"known: {sorted(known)}")
        return cls(**data)

    def to_dict(self) -> dict:
        return asdict(self)

    def describe(self) -> str:
        """Stable one-line identity, folded into problem cache tokens.

        Every field that can change a reported metric appears -- including
        ``confidence`` even with stopping disabled, since it still shapes
        the ``yield_ci_low``/``yield_ci_high`` values.
        """
        target = ("none" if self.ci_half_width is None
                  else f"{self.ci_half_width:g}")
        return (f"mc({self.sampler}, seed={self.seed}, n={self.n_min}.."
                f"{self.n_max}/{self.batch_size}, "
                f"ci={target}@{self.confidence:g})")


@dataclass
class SampleFailure:
    """Picklable marker for a mismatch-sample simulation that raised."""

    index: int
    message: str


def _simulate_sample_task(task):
    """Worker entry point: one ``(problem, design, sample)`` simulation.

    Top-level and total, like the engine's ``evaluate_design_task``: the
    varied problem is derived *inside* the worker (cheap -- a shallow copy
    carrying a derived technology card), and a raising simulation comes back
    as a :class:`SampleFailure` instead of poisoning the batch ``map``.
    """
    problem, design, sample = task
    try:
        return problem.with_variation(sample).simulate(design)
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        return SampleFailure(sample.index, f"{type(exc).__name__}: {exc}")


@dataclass
class MonteCarloResult:
    """One design's Monte Carlo verdict.

    Attributes
    ----------
    estimate:
        Final Wilson-interval yield estimate.
    stopped_by:
        ``"ci_target"`` when adaptive stopping fired (its interval is then
        guaranteed no wider than the configured target) or ``"n_max"`` when
        the budget ran out first.
    n_failures:
        Samples whose simulation *raised* (they count as yield failures and
        contribute the problem's pessimised metrics to the statistics).
    per_sample:
        Metric dictionary per executed sample, in sample order.
    samples:
        The executed :class:`~repro.pdk.VariationSample` draws, aligned with
        ``per_sample``.
    fingerprints:
        Per-sample derived-technology fingerprints (the cache identities the
        varied simulations ran under), aligned with ``per_sample``.
    """

    estimate: YieldEstimate
    stopped_by: str
    n_failures: int = 0
    per_sample: list[dict[str, float]] = field(default_factory=list)
    samples: list[VariationSample] = field(default_factory=list)
    fingerprints: list[str] = field(default_factory=list)

    @property
    def n_samples(self) -> int:
        return self.estimate.n_samples

    @property
    def yield_value(self) -> float:
        return self.estimate.value


def classify_pass(metrics: dict[str, float], constraints) -> bool:
    """Spec compliance of one sample: every constraint met, finitely.

    A non-finite constrained metric is a failure, not an accident: NaN
    compares false against thresholds in a sense-dependent way, and a dead
    sample must never count toward yield.
    """
    for constraint in constraints:
        value = metrics[constraint.name]
        if not math.isfinite(value) or not constraint.satisfied(value):
            return False
    return True


class MonteCarloRunner(BackendOwner):
    """Fan mismatch samples of one design through an execution backend.

    Backend lifecycle (laziness, ``with`` support, leak warnings, pickling)
    comes from :class:`~repro.engine.backends.BackendOwner`; see
    :class:`~repro.bench.CornerSweep` for the corner-side twin.

    Parameters
    ----------
    config:
        :class:`MonteCarloConfig` (or a plain dict of its fields).
    backend:
        Backend name, instance or ``None`` for the environment default.
        Inside an engine worker the default resolves to serial, so sample
        fan-out composes with design fan-out without pools of pools.
    max_workers:
        Worker count for pooled backends created from a name.
    """

    def __init__(self, config: MonteCarloConfig | dict | None = None,
                 backend: str | ExecutionBackend | None = None,
                 max_workers: int | None = None):
        super().__init__(backend, max_workers=max_workers)
        if config is None:
            config = MonteCarloConfig()
        elif isinstance(config, dict):
            config = MonteCarloConfig.from_dict(config)
        self.config = config
        # Sampler streams are pure functions of (config, device set), so the
        # materialised z-score block is built once per device set instead of
        # per design evaluation.  Concurrent simulate() calls may race to
        # build it; both build the identical block, so last-write-wins is
        # harmless.  Dropped on pickling to keep worker payloads small.
        self._samplers: dict[tuple[str, ...], object] = {}

    def __enter__(self) -> "MonteCarloRunner":
        return self

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["_samplers"] = {}
        return state

    def run(self, problem, design: dict[str, float],
            device_names=None) -> MonteCarloResult:
        """Estimate the mismatch yield of ``design`` on ``problem``.

        ``problem`` must be a :class:`~repro.circuits.CircuitSizingProblem`
        (it provides ``with_variation`` and, when ``device_names`` is not
        given, ``mismatch_device_names``).
        """
        if isinstance(getattr(problem, "_runner", None), MonteCarloRunner):
            # A yield wrapper delegates simulation to its *base* problem, so
            # varying the wrapper would silently ignore every sample (and
            # nest a full MC run inside each one).
            raise ValueError(
                f"{problem.name} is itself a Monte Carlo yield problem; run "
                "the runner on its .base_problem instead")
        config = self.config
        if device_names is None:
            device_names = problem.mismatch_device_names()
        key = tuple(sorted(device_names))
        sampler = self._samplers.get(key)
        if sampler is None:
            sampler = make_sampler(config.sampler, device_names,
                                   seed=config.seed, n_max=config.n_max)
            self._samplers[key] = sampler
        estimator = YieldEstimator(config.confidence)
        failed_metrics = problem.failed_metrics()
        base_tech = problem.technology
        per_sample: list[dict[str, float]] = []
        samples: list[VariationSample] = []
        fingerprints: list[str] = []
        n_failures = 0
        stopped_by = "n_max"

        while estimator.n_samples < config.n_max:
            count = min(config.batch_size,
                        config.n_max - estimator.n_samples)
            batch = sampler.take(estimator.n_samples, count)
            outcomes = self._dispatch(problem, design, batch)
            for sample, outcome in zip(batch, outcomes):
                if isinstance(outcome, SampleFailure):
                    n_failures += 1
                    passed, metrics = False, dict(failed_metrics)
                else:
                    metrics = outcome
                    passed = classify_pass(metrics, problem.constraints)
                estimator.update(passed)
                per_sample.append(metrics)
                samples.append(sample)
                fingerprints.append(
                    base_tech.with_variation(sample).fingerprint)
            if (estimator.n_samples >= config.n_min
                    and estimator.reached(config.ci_half_width)):
                stopped_by = "ci_target"
                break

        return MonteCarloResult(estimate=estimator.estimate(),
                                stopped_by=stopped_by,
                                n_failures=n_failures,
                                per_sample=per_sample,
                                samples=samples,
                                fingerprints=fingerprints)

    def _dispatch(self, problem, design: dict[str, float], batch):
        """Simulate one sample batch: stacked when the backend allows it.

        On a :class:`~repro.engine.backends.BatchedBackend` the varied
        per-sample clones are derived in the coordinator and their benches
        solved in one vectorised session
        (:func:`repro.circuits.base.simulate_checked_batch`) -- bit-identical
        to the serial path, since each sample still sees its own perturbed
        netlist.  Otherwise samples ship to ``backend.map`` one task each.
        Returns, per sample, a metric dictionary or a :class:`SampleFailure`.
        """
        if (getattr(self.backend, "batched", False)
                and getattr(problem, "supports_batch_simulation", False)):
            from repro.circuits.base import simulate_checked_batch
            jobs = []
            outcomes: list = []
            for sample in batch:
                try:
                    jobs.append((problem.with_variation(sample), design))
                    outcomes.append(None)
                except Exception as exc:  # noqa: BLE001 - mirror task path
                    outcomes.append(SampleFailure(
                        sample.index, f"{type(exc).__name__}: {exc}"))
            results = iter(simulate_checked_batch(jobs))
            for position, sample in enumerate(batch):
                if outcomes[position] is not None:
                    continue
                result = next(results)
                if isinstance(result, tuple):
                    outcomes[position] = result[0]
                else:
                    outcomes[position] = SampleFailure(sample.index,
                                                       result.message)
            return outcomes
        tasks = [(problem, design, sample) for sample in batch]
        return self.backend.map(_simulate_sample_task, tasks)
