"""Adam optimizer (Kingma & Ba, 2015) over :class:`repro.nn.Parameter` lists."""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor


class Adam:
    """Adam with optional gradient clipping.

    Used to maximise the GP marginal likelihood with respect to kernel,
    encoder and decoder parameters, mirroring the paper's PyTorch training.
    """

    def __init__(self, parameters: list[Tensor], lr: float = 0.01,
                 betas: tuple[float, float] = (0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0, grad_clip: float | None = None):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= betas[0] < 1.0 or not 0.0 <= betas[1] < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.parameters = list(parameters)
        self.lr = float(lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.grad_clip = grad_clip
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._step = 0

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one Adam update using the currently accumulated gradients."""
        self._step += 1
        bias1 = 1.0 - self.beta1 ** self._step
        bias2 = 1.0 - self.beta2 ** self._step
        for index, param in enumerate(self.parameters):
            grad = param.grad
            if grad is None:
                continue
            grad = np.asarray(grad, dtype=float)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.grad_clip is not None:
                norm = np.linalg.norm(grad)
                if norm > self.grad_clip:
                    grad = grad * (self.grad_clip / (norm + 1e-12))
            self._m[index] = self.beta1 * self._m[index] + (1 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1 - self.beta2) * grad**2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            param.data = param.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
