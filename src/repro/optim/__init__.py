"""Gradient-based optimizers for GP hyper-parameters and network weights."""

from repro.optim.adam import Adam
from repro.optim.sgd import SGD
from repro.optim.lbfgs import minimize_lbfgs
from repro.optim.trainer import train_module

__all__ = ["Adam", "SGD", "minimize_lbfgs", "train_module"]
