"""Generic training loop shared by GP-likelihood and network training."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autodiff import Tensor
from repro.nn.module import Module
from repro.optim.adam import Adam


def train_module(module: Module, loss_fn: Callable[[], Tensor],
                 n_iters: int = 100, lr: float = 0.05,
                 tol: float = 1e-7, patience: int = 25,
                 grad_clip: float | None = 10.0,
                 verbose: bool = False) -> list[float]:
    """Minimise ``loss_fn()`` over the parameters of ``module`` with Adam.

    The loss function closes over the module (and data) and returns a scalar
    :class:`Tensor`; this is the pattern used for GP negative log marginal
    likelihood and KAT-GP alignment training.

    Returns the loss history.  Training stops early when the best loss has
    not improved by ``tol`` for ``patience`` consecutive iterations, or when
    a non-finite loss is encountered (the last finite parameters are kept).
    """
    optimizer = Adam(module.parameters(), lr=lr, grad_clip=grad_clip)
    history: list[float] = []
    best_loss = np.inf
    best_state = module.state_dict()
    stall = 0
    for iteration in range(int(n_iters)):
        optimizer.zero_grad()
        loss = loss_fn()
        value = float(loss.data)
        if not np.isfinite(value):
            module.load_state_dict(best_state)
            break
        history.append(value)
        if value < best_loss - tol:
            best_loss = value
            best_state = module.state_dict()
            stall = 0
        else:
            stall += 1
            if stall >= patience:
                break
        loss.backward()
        optimizer.step()
        if verbose and iteration % 20 == 0:  # pragma: no cover - logging only
            print(f"[train] iter={iteration} loss={value:.6f}")
    # Keep the best parameters seen rather than the last iterate.
    if history and history[-1] > best_loss:
        module.load_state_dict(best_state)
    return history
