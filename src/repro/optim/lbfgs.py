"""Thin wrapper around scipy's L-BFGS-B for acquisition maximisation.

The paper optimizes acquisition functions with "gradient descent methods,
e.g. L-BFGS-B".  Acquisition functions here are cheap numpy functions, so we
use finite-difference gradients through scipy unless an analytic gradient is
supplied.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy.optimize import minimize

from repro.utils.random import RandomState, as_rng


def minimize_lbfgs(func: Callable[[np.ndarray], float],
                   bounds: np.ndarray,
                   x0: np.ndarray | None = None,
                   n_restarts: int = 4,
                   rng: RandomState = None,
                   jac: Callable[[np.ndarray], np.ndarray] | None = None,
                   maxiter: int = 200) -> tuple[np.ndarray, float]:
    """Minimise ``func`` inside box ``bounds`` with multi-start L-BFGS-B.

    Parameters
    ----------
    func:
        Objective to minimise (negate an acquisition to maximise it).
    bounds:
        ``(d, 2)`` array of lower/upper bounds.
    x0:
        Optional explicit initial point added to the random restarts.
    n_restarts:
        Number of random restarts.

    Returns
    -------
    (x_best, f_best)
    """
    bounds = np.asarray(bounds, dtype=float)
    if bounds.ndim != 2 or bounds.shape[1] != 2:
        raise ValueError(f"bounds must have shape (d, 2), got {bounds.shape}")
    rng = as_rng(rng)
    dim = bounds.shape[0]
    starts = list(rng.uniform(bounds[:, 0], bounds[:, 1], size=(max(n_restarts, 1), dim)))
    if x0 is not None:
        starts.insert(0, np.clip(np.asarray(x0, dtype=float), bounds[:, 0], bounds[:, 1]))

    best_x: np.ndarray | None = None
    best_f = np.inf
    for start in starts:
        result = minimize(
            func, start, jac=jac, method="L-BFGS-B",
            bounds=[(low, high) for low, high in bounds],
            options={"maxiter": maxiter},
        )
        if np.isfinite(result.fun) and result.fun < best_f:
            best_f = float(result.fun)
            best_x = np.asarray(result.x, dtype=float)
    if best_x is None:
        # All restarts failed (e.g. objective returned NaN everywhere);
        # fall back to the best random start evaluation.
        values = np.asarray([func(s) for s in starts], dtype=float)
        if np.all(np.isnan(values)):
            index = 0
        else:
            index = int(np.nanargmin(values))
        best_x, best_f = starts[index], float(values[index])
    return best_x, best_f
