"""Plain stochastic gradient descent with optional momentum."""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor


class SGD:
    """Gradient descent with classical momentum.

    Provided mostly for testing and ablation against :class:`repro.optim.Adam`.
    """

    def __init__(self, parameters: list[Tensor], lr: float = 0.01,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.parameters = list(parameters)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        for index, param in enumerate(self.parameters):
            grad = param.grad
            if grad is None:
                continue
            grad = np.asarray(grad, dtype=float)
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            self._velocity[index] = self.momentum * self._velocity[index] - self.lr * grad
            param.data = param.data + self._velocity[index]
