"""SMAC-style Bayesian optimization with a random-forest surrogate.

This is the SMAC-RF baseline of the paper's Fig. 4.  The algorithmic core of
SMAC is retained: a random-forest surrogate whose per-tree spread provides
predictive uncertainty, expected improvement as the acquisition, and a
candidate pool mixing global random samples with local perturbations of the
incumbent ("local search" in SMAC terms).
"""

from __future__ import annotations

import numpy as np

from repro.acquisition.functions import expected_improvement
from repro.bo.base import BaseOptimizer
from repro.bo.problem import OptimizationProblem
from repro.study.registry import register_optimizer
from repro.surrogates import RandomForestRegressor
from repro.utils.random import RandomState


def _build_smac_rf(cls, problem, rng, context):
    return cls(problem, rng=rng, **context.constructor_kwargs(batch_size=4))


@register_optimizer("smac_rf", aliases=("smac",), builder=_build_smac_rf,
                    description="SMAC-style BO with a random-forest surrogate")
class SMACRF(BaseOptimizer):
    """Random-forest surrogate + EI with local/global candidate pools."""

    name = "smac_rf"

    def __init__(self, problem: OptimizationProblem, batch_size: int = 1,
                 rng: RandomState = None, n_trees: int = 32,
                 n_candidates: int = 1024, local_fraction: float = 0.5,
                 local_scale: float = 0.05):
        super().__init__(problem, batch_size=batch_size, rng=rng)
        self.n_trees = int(n_trees)
        self.n_candidates = int(n_candidates)
        self.local_fraction = float(local_fraction)
        self.local_scale = float(local_scale)

    def _fit_surrogate(self) -> RandomForestRegressor:
        x_unit, y = self._training_data()
        forest = RandomForestRegressor(n_trees=self.n_trees, rng=self.rng)
        forest.fit(x_unit, y)
        return forest

    def _candidate_pool(self) -> np.ndarray:
        dim = self.problem.design_space.dim
        n_local = int(self.n_candidates * self.local_fraction)
        n_global = self.n_candidates - n_local
        pool = [self.rng.uniform(size=(n_global, dim))]
        best_index = self.history.best_index(constrained=False)
        if best_index is not None and n_local > 0:
            incumbent = self.problem.design_space.to_unit(
                self.history.x[best_index].reshape(1, -1))[0]
            noise = self.rng.normal(scale=self.local_scale, size=(n_local, dim))
            pool.append(np.clip(incumbent + noise, 0.0, 1.0))
        return np.vstack(pool)

    def propose(self) -> np.ndarray:
        forest = self._fit_surrogate()
        best = self.incumbent(constrained=False)
        candidates = self._candidate_pool()
        mean, variance = forest.predict(candidates)
        scores = expected_improvement(mean, variance, best,
                                      minimize=self.problem.minimize)
        order = np.argsort(-scores)
        return candidates[order[: self.batch_size]]
