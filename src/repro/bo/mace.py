"""MACE: batch BO via a multi-objective acquisition ensemble (unconstrained).

Implements Lyu et al. (ICML 2018): candidates are drawn from the NSGA-II
Pareto front of {UCB, EI, PI}, so a whole batch of diverse, well-motivated
designs can be simulated in parallel.  This is the "MACE" baseline of the
paper's FOM experiments and the acquisition machinery KATO builds on.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.acquisition import MACEObjectives
from repro.bo.base import BaseOptimizer
from repro.bo.problem import OptimizationProblem
from repro.gp import GPRegression
from repro.kernels import Kernel, RBFKernel
from repro.moo import NSGA2
from repro.study.registry import register_optimizer
from repro.utils.random import RandomState


def select_batch_from_pareto(pareto_x: np.ndarray, batch_size: int, rng) -> np.ndarray:
    """Pick ``batch_size`` diverse points from a Pareto set.

    When the front is larger than the batch, a random subset is drawn (as in
    the MACE paper); when smaller, points are repeated with small jitter so a
    full batch is always returned.
    """
    n = pareto_x.shape[0]
    if n >= batch_size:
        indices = rng.choice(n, size=batch_size, replace=False)
        return pareto_x[indices]
    extra_indices = rng.choice(n, size=batch_size - n, replace=True)
    jitter = rng.normal(scale=0.01, size=(batch_size - n, pareto_x.shape[1]))
    extra = np.clip(pareto_x[extra_indices] + jitter, 0.0, 1.0)
    return np.vstack([pareto_x, extra])


def _build_mace(cls, problem, rng, context):
    """Build "mace" for either problem family, as the paper's figures do.

    On unconstrained (FOM) problems this is plain MACE; on constrained
    problems it is the original six-objective constrained MACE
    (``ConstrainedMACE(variant="full")``), exactly as the retired
    ``build_fom_optimizer`` / ``build_constrained_optimizer`` factories
    dispatched the shared "mace" name.
    """
    quick = context.quick
    kwargs = context.constructor_kwargs(
        batch_size=4,
        surrogate_train_iters=20 if quick else 50,
        pop_size=32 if quick else 64,
        n_generations=10 if quick else 30,
    )
    if getattr(problem, "n_constraints", 0) > 0:
        from repro.bo.constrained_mace import ConstrainedMACE
        kwargs.setdefault("variant", "full")
        return ConstrainedMACE(problem, rng=rng, **kwargs)
    return cls(problem, rng=rng, **kwargs)


@register_optimizer("mace", builder=_build_mace,
                    description="MACE acquisition-ensemble BO (six-objective "
                                "constrained variant on constrained problems)")
class MACE(BaseOptimizer):
    """Unconstrained MACE for FOM-style single-objective problems.

    Parameters
    ----------
    kernel_factory:
        Callable ``dim -> Kernel`` for the surrogate; defaults to ARD RBF.
        KATO passes the Neural Kernel here.
    pop_size / n_generations:
        NSGA-II budget for the acquisition Pareto search.
    """

    name = "mace"

    def __init__(self, problem: OptimizationProblem, batch_size: int = 4,
                 rng: RandomState = None,
                 kernel_factory: Callable[[int], Kernel] | None = None,
                 surrogate_train_iters: int = 50,
                 pop_size: int = 64, n_generations: int = 30,
                 ucb_beta: float = 2.0):
        super().__init__(problem, batch_size=batch_size, rng=rng,
                         surrogate_train_iters=surrogate_train_iters)
        self.kernel_factory = kernel_factory or (lambda dim: RBFKernel(dim))
        self.pop_size = int(pop_size)
        self.n_generations = int(n_generations)
        self.ucb_beta = float(ucb_beta)

    def _fit_surrogate(self) -> GPRegression:
        x_unit, y = self._training_data()
        model = GPRegression(kernel=self.kernel_factory(x_unit.shape[1]))
        model.fit(x_unit, y, n_iters=self.surrogate_train_iters)
        return model

    def acquisition_pareto(self, model: GPRegression) -> np.ndarray:
        """Run NSGA-II on the acquisition ensemble; returns unit-cube Pareto set."""
        objectives = MACEObjectives(model, self.incumbent(constrained=False),
                                    minimize=self.problem.minimize, beta=self.ucb_beta)
        searcher = NSGA2(pop_size=self.pop_size, n_generations=self.n_generations,
                         rng=self.rng)
        x_unit, _ = self._training_data()
        result = searcher.minimize(objectives, self.problem.design_space.unit_bounds,
                                   initial_population=x_unit[-self.pop_size:])
        return result.pareto_x

    def propose(self) -> np.ndarray:
        model = self._fit_surrogate()
        pareto = self.acquisition_pareto(model)
        return select_batch_from_pareto(pareto, self.batch_size, self.rng)
