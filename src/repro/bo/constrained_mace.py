"""Constrained MACE, including KATO's modified three-objective variant.

Two acquisition ensembles are supported (paper section 3.3):

* ``variant="full"`` -- the original six-objective constrained MACE of
  Zhang et al. (TCAD 2021), used as the "MACE" baseline in Fig. 5;
* ``variant="modified"`` -- KATO's reduction to ``{UCB, PI, EI} x PF``
  (Eq. 13), which is what the KATO optimizer itself uses.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.acquisition import (
    ConstrainedMACEObjectives,
    ModifiedConstrainedMACEObjectives,
)
from repro.bo.base import BaseOptimizer
from repro.bo.mace import select_batch_from_pareto
from repro.bo.problem import OptimizationProblem
from repro.errors import OptimizationError
from repro.gp import GPRegression, MultiOutputGP
from repro.kernels import Kernel, RBFKernel
from repro.moo import NSGA2
from repro.study.registry import register_optimizer
from repro.utils.random import RandomState


def _build_mace_modified(cls, problem, rng, context):
    quick = context.quick
    kwargs = context.constructor_kwargs(
        batch_size=4,
        surrogate_train_iters=20 if quick else 50,
        pop_size=32 if quick else 64,
        n_generations=10 if quick else 30,
    )
    kwargs.setdefault("variant", "modified")
    return cls(problem, rng=rng, **kwargs)


@register_optimizer("mace_modified", aliases=("modified_mace",),
                    builder=_build_mace_modified, supports_unconstrained=False,
                    description="KATO's modified three-objective constrained "
                                "MACE (Eq. 13)")
class ConstrainedMACE(BaseOptimizer):
    """Batch constrained BO with an acquisition-ensemble Pareto search.

    Parameters
    ----------
    variant:
        ``"modified"`` (KATO's three-objective ensemble, the default) or
        ``"full"`` (the original six-objective ensemble).
    kernel_factory:
        Callable ``dim -> Kernel`` used for the objective *and* each
        constraint surrogate.
    """

    name = "constrained_mace"

    def __init__(self, problem: OptimizationProblem, batch_size: int = 4,
                 rng: RandomState = None, variant: str = "modified",
                 kernel_factory: Callable[[int], Kernel] | None = None,
                 surrogate_train_iters: int = 50,
                 pop_size: int = 64, n_generations: int = 30,
                 ucb_beta: float = 2.0):
        super().__init__(problem, batch_size=batch_size, rng=rng,
                         surrogate_train_iters=surrogate_train_iters)
        if problem.n_constraints == 0:
            raise OptimizationError(
                "ConstrainedMACE requires a problem with constraints; "
                "use MACE for unconstrained problems")
        if variant not in ("modified", "full"):
            raise OptimizationError(f"unknown variant {variant!r}")
        self.variant = variant
        self.kernel_factory = kernel_factory or (lambda dim: RBFKernel(dim))
        self.pop_size = int(pop_size)
        self.n_generations = int(n_generations)
        self.ucb_beta = float(ucb_beta)

    # ------------------------------------------------------------------ #
    # surrogates                                                          #
    # ------------------------------------------------------------------ #
    def fit_surrogates(self) -> tuple[GPRegression, MultiOutputGP]:
        """Fit the objective GP and the per-constraint multi-output GP."""
        x_unit, y = self._training_data()
        objective_model = GPRegression(kernel=self.kernel_factory(x_unit.shape[1]))
        objective_model.fit(x_unit, y, n_iters=self.surrogate_train_iters)
        constraint_model = MultiOutputGP(kernel_factory=self.kernel_factory)
        constraint_model.fit(x_unit, self._constraint_data(),
                             n_iters=self.surrogate_train_iters)
        return objective_model, constraint_model

    def _make_ensemble(self, objective_model, constraint_model):
        best = self.incumbent()
        kwargs = dict(
            objective_model=objective_model,
            constraint_model=constraint_model,
            best=best,
            thresholds=self.problem.constraint_thresholds,
            senses=self.problem.constraint_senses,
            minimize=self.problem.minimize,
            beta=self.ucb_beta,
        )
        if self.variant == "modified":
            return ModifiedConstrainedMACEObjectives(**kwargs)
        return ConstrainedMACEObjectives(**kwargs)

    def acquisition_pareto(self, objective_model, constraint_model) -> np.ndarray:
        """NSGA-II Pareto set (unit cube) of the configured acquisition ensemble."""
        ensemble = self._make_ensemble(objective_model, constraint_model)
        searcher = NSGA2(pop_size=self.pop_size, n_generations=self.n_generations,
                         rng=self.rng)
        x_unit, _ = self._training_data()
        result = searcher.minimize(ensemble, self.problem.design_space.unit_bounds,
                                   initial_population=x_unit[-self.pop_size:])
        return result.pareto_x

    def propose(self) -> np.ndarray:
        objective_model, constraint_model = self.fit_surrogates()
        pareto = self.acquisition_pareto(objective_model, constraint_model)
        return select_batch_from_pareto(pareto, self.batch_size, self.rng)
