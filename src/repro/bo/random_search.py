"""Random search baseline (RS in the paper's Fig. 4)."""

from __future__ import annotations

import numpy as np

from repro.bo.base import BaseOptimizer
from repro.bo.problem import OptimizationProblem
from repro.study.registry import register_optimizer
from repro.utils.random import RandomState


def _build_random_search(cls, problem, rng, context):
    return cls(problem, rng=rng, **context.constructor_kwargs(batch_size=4))


@register_optimizer("random_search", aliases=("rs", "random"),
                    builder=_build_random_search,
                    description="Uniform random sampling baseline (RS)")
class RandomSearch(BaseOptimizer):
    """Uniform random sampling of the design space.

    The paper uses RS for the FOM experiments and points out that it is not
    applicable to the constrained setup (feasible designs are ~2.3% of random
    samples); this class still works there, it just rarely finds feasible
    points -- which is the behaviour the figures rely on.
    """

    name = "random_search"

    def __init__(self, problem: OptimizationProblem, batch_size: int = 1,
                 rng: RandomState = None):
        super().__init__(problem, batch_size=batch_size, rng=rng)

    def propose(self) -> np.ndarray:
        return self.problem.design_space.sample_unit(self.batch_size, rng=self.rng)
