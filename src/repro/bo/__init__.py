"""Bayesian-optimization engines.

* :class:`DesignSpace` -- named, bounded (optionally log-scaled) design
  variables mapped to the unit cube that every optimizer works in.
* :class:`OptimizationProblem` / :class:`Constraint` -- the black-box
  interface the circuit testbenches implement.
* :class:`OptimizationHistory` -- per-simulation records and best-so-far
  curves (the x-axis of every figure in the paper).
* Optimizers: random search, single-objective GP-EI, SMAC-RF,
  MACE (FOM), constrained MACE (six objectives) and KATO's modified
  constrained MACE (three objectives, paper Eq. 13).
"""

from repro.bo.design_space import DesignSpace, DesignVariable
from repro.bo.problem import Constraint, EvaluatedDesign, OptimizationProblem
from repro.bo.history import OptimizationHistory
from repro.bo.base import BaseOptimizer, SingleObjectiveBO
from repro.bo.random_search import RandomSearch
from repro.bo.smac_rf import SMACRF
from repro.bo.mace import MACE
from repro.bo.constrained_mace import ConstrainedMACE

__all__ = [
    "DesignSpace",
    "DesignVariable",
    "Constraint",
    "EvaluatedDesign",
    "OptimizationProblem",
    "OptimizationHistory",
    "BaseOptimizer",
    "SingleObjectiveBO",
    "RandomSearch",
    "SMACRF",
    "MACE",
    "ConstrainedMACE",
]
