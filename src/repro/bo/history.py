"""Optimization history: the per-simulation record behind every figure."""

from __future__ import annotations

import numpy as np

from repro.bo.problem import EvaluatedDesign, OptimizationProblem


class OptimizationHistory:
    """Records every simulated design in order and derives summary curves.

    The paper's figures plot "performance versus simulation budget"; this
    class produces exactly those curves (:meth:`best_curve`) for both FOM
    (unconstrained) and constrained runs, where infeasible designs do not
    improve the incumbent.
    """

    def __init__(self, problem: OptimizationProblem):
        self.problem = problem
        self.evaluations: list[EvaluatedDesign] = []

    # ------------------------------------------------------------------ #
    # recording                                                           #
    # ------------------------------------------------------------------ #
    def record(self, evaluation: EvaluatedDesign) -> None:
        self.evaluations.append(evaluation)

    def extend(self, evaluations: list[EvaluatedDesign]) -> None:
        self.evaluations.extend(evaluations)

    def __len__(self) -> int:
        return len(self.evaluations)

    @property
    def n_simulations(self) -> int:
        return len(self.evaluations)

    # ------------------------------------------------------------------ #
    # data access                                                         #
    # ------------------------------------------------------------------ #
    @property
    def x(self) -> np.ndarray:
        """Design matrix ``(n, d)`` in physical units."""
        if not self.evaluations:
            return np.empty((0, self.problem.design_space.dim))
        return np.array([e.x for e in self.evaluations], dtype=float)

    @property
    def objectives(self) -> np.ndarray:
        return np.array([e.objective for e in self.evaluations], dtype=float)

    @property
    def feasible(self) -> np.ndarray:
        return np.array([e.feasible for e in self.evaluations], dtype=bool)

    @property
    def violations(self) -> np.ndarray:
        return np.array([e.violation for e in self.evaluations], dtype=float)

    def metrics_matrix(self) -> np.ndarray:
        """All metrics, ``(n, n_metrics)``, in :attr:`OptimizationProblem.metric_names` order."""
        return self.problem.metrics_matrix(self.evaluations)

    # ------------------------------------------------------------------ #
    # summaries                                                           #
    # ------------------------------------------------------------------ #
    def best_index(self, constrained: bool = True) -> int | None:
        """Index of the best design (feasible-only when ``constrained``).

        Falls back to the minimum-violation design when nothing is feasible,
        which matches how practitioners read partially-failed runs.
        """
        if not self.evaluations:
            return None
        objectives = self.objectives
        if constrained:
            feasible = self.feasible
            if feasible.any():
                candidate_indices = np.nonzero(feasible)[0]
            else:
                violations = self.violations
                return int(np.argmin(violations))
        else:
            candidate_indices = np.arange(len(self.evaluations))
        values = objectives[candidate_indices]
        best_local = int(np.argmin(values)) if self.problem.minimize else int(np.argmax(values))
        return int(candidate_indices[best_local])

    def best(self, constrained: bool = True) -> EvaluatedDesign | None:
        index = self.best_index(constrained)
        return None if index is None else self.evaluations[index]

    def best_objective(self, constrained: bool = True) -> float:
        """Best objective so far (``problem.worst_objective`` when empty/infeasible)."""
        index = self.best_index(constrained)
        if index is None:
            return self.problem.worst_objective
        if constrained and not self.evaluations[index].feasible:
            return self.problem.worst_objective
        return self.evaluations[index].objective

    def best_curve(self, constrained: bool = True) -> np.ndarray:
        """Best-so-far objective after each simulation (the paper's x-axis)."""
        best = self.problem.worst_objective
        curve = np.empty(len(self.evaluations))
        for index, evaluation in enumerate(self.evaluations):
            eligible = evaluation.feasible or not constrained
            if eligible and self.problem.is_better(evaluation.objective, best):
                best = evaluation.objective
            curve[index] = best
        return curve

    def simulations_to_reach(self, target: float, constrained: bool = True) -> int | None:
        """Number of simulations needed to reach ``target`` (None if never)."""
        curve = self.best_curve(constrained)
        if self.problem.minimize:
            hits = np.nonzero(curve <= target)[0]
        else:
            hits = np.nonzero(curve >= target)[0]
        return int(hits[0]) + 1 if hits.size else None

    def summary(self) -> dict[str, object]:
        """Compact dictionary used by the experiment reports."""
        best = self.best(constrained=True)
        return {
            "problem": self.problem.name,
            "n_simulations": self.n_simulations,
            "n_feasible": int(self.feasible.sum()) if self.evaluations else 0,
            "best_objective": None if best is None else best.objective,
            "best_feasible": None if best is None else best.feasible,
            "best_metrics": None if best is None else dict(best.metrics),
        }
