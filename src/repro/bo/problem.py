"""Black-box problem interface implemented by the circuit testbenches.

A sizing task (paper Eq. 1) is: maximise or minimise one performance metric
subject to threshold constraints on the others.  ``OptimizationProblem``
captures exactly that, plus batch evaluation, feasibility checks and the
constraint-violation measure used in reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bo.design_space import DesignSpace
from repro.utils.validation import check_matrix


@dataclass(frozen=True)
class Constraint:
    """A threshold constraint on one named metric.

    ``sense='ge'`` means the metric must be at least ``threshold``
    (e.g. Gain > 60 dB); ``sense='le'`` means at most (e.g. I_total < 6 uA).
    """

    name: str
    threshold: float
    sense: str = "ge"

    def __post_init__(self) -> None:
        if self.sense not in ("ge", "le"):
            raise ValueError(f"sense must be 'ge' or 'le', got {self.sense!r}")

    def satisfied(self, value: float, tolerance: float = 0.0) -> bool:
        if self.sense == "ge":
            return bool(value >= self.threshold - tolerance)
        return bool(value <= self.threshold + tolerance)

    def violation(self, value: float) -> float:
        """Non-negative violation magnitude (0 when satisfied)."""
        if self.sense == "ge":
            return float(max(0.0, self.threshold - value))
        return float(max(0.0, value - self.threshold))


@dataclass
class EvaluatedDesign:
    """One simulated design: inputs, all metrics and feasibility."""

    x: np.ndarray
    metrics: dict[str, float]
    objective: float
    feasible: bool
    violation: float = 0.0
    tag: str = ""
    extra: dict[str, float] = field(default_factory=dict)


class OptimizationProblem:
    """Base class for constrained sizing problems.

    Subclasses provide :meth:`simulate` returning a metric dictionary; this
    base class provides the bookkeeping shared by every testbench.

    Parameters
    ----------
    name:
        Problem identifier used in reports (e.g. ``"two_stage_opamp_180nm"``).
    design_space:
        The physical design space.
    objective:
        Name of the metric to optimise.
    minimize:
        Whether the objective is minimised (True for current or TC).
    constraints:
        Threshold constraints on other metrics.
    """

    def __init__(self, name: str, design_space: DesignSpace, objective: str,
                 minimize: bool, constraints: list[Constraint]):
        self.name = name
        self.design_space = design_space
        self.objective = objective
        self.minimize = bool(minimize)
        self.constraints = list(constraints)

    # ------------------------------------------------------------------ #
    # metric layout                                                       #
    # ------------------------------------------------------------------ #
    @property
    def constraint_names(self) -> list[str]:
        return [c.name for c in self.constraints]

    @property
    def metric_names(self) -> list[str]:
        """Objective first, then constraint metrics, in a stable order."""
        return [self.objective, *self.constraint_names]

    @property
    def n_constraints(self) -> int:
        return len(self.constraints)

    @property
    def constraint_thresholds(self) -> np.ndarray:
        return np.array([c.threshold for c in self.constraints], dtype=float)

    @property
    def constraint_senses(self) -> list[str]:
        return [c.sense for c in self.constraints]

    # ------------------------------------------------------------------ #
    # evaluation                                                          #
    # ------------------------------------------------------------------ #
    def simulate(self, design: dict[str, float]) -> dict[str, float]:
        """Run the testbench for one named design point.  Subclasses override."""
        raise NotImplementedError

    def evaluate(self, x) -> EvaluatedDesign:
        """Evaluate one design vector (physical units)."""
        x = np.asarray(x, dtype=float).ravel()
        design = self.design_space.as_dict(self.design_space.clip(x.reshape(1, -1))[0])
        metrics = self.simulate(design)
        missing = [m for m in self.metric_names if m not in metrics]
        if missing:
            raise KeyError(f"simulate() did not return metrics {missing} for {self.name}")
        objective = float(metrics[self.objective])
        violation = float(sum(c.violation(metrics[c.name]) for c in self.constraints))
        feasible = all(c.satisfied(metrics[c.name]) for c in self.constraints)
        return EvaluatedDesign(x=x.copy(), metrics=dict(metrics), objective=objective,
                               feasible=feasible, violation=violation)

    def evaluate_batch(self, x) -> list[EvaluatedDesign]:
        """Evaluate a batch of design vectors (rows of ``x``)."""
        x = check_matrix(x, "x", n_cols=self.design_space.dim)
        return [self.evaluate(row) for row in x]

    def metrics_matrix(self, evaluations: list[EvaluatedDesign]) -> np.ndarray:
        """Stack evaluations into an ``(n, n_metrics)`` matrix (metric order)."""
        return np.array([[e.metrics[name] for name in self.metric_names]
                         for e in evaluations], dtype=float)

    def is_better(self, candidate: float, incumbent: float) -> bool:
        """Compare objective values according to the optimisation direction."""
        if self.minimize:
            return candidate < incumbent
        return candidate > incumbent

    @property
    def worst_objective(self) -> float:
        """A sentinel objective value worse than any achievable one."""
        return np.inf if self.minimize else -np.inf
