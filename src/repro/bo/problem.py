"""Black-box problem interface implemented by the circuit testbenches.

A sizing task (paper Eq. 1) is: maximise or minimise one performance metric
subject to threshold constraints on the others.  ``OptimizationProblem``
captures exactly that, plus batch evaluation, feasibility checks and the
constraint-violation measure used in reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bo.design_space import DesignSpace


@dataclass(frozen=True)
class Constraint:
    """A threshold constraint on one named metric.

    ``sense='ge'`` means the metric must be at least ``threshold``
    (e.g. Gain > 60 dB); ``sense='le'`` means at most (e.g. I_total < 6 uA).
    """

    name: str
    threshold: float
    sense: str = "ge"

    def __post_init__(self) -> None:
        if self.sense not in ("ge", "le"):
            raise ValueError(f"sense must be 'ge' or 'le', got {self.sense!r}")

    def satisfied(self, value: float, tolerance: float = 0.0) -> bool:
        if self.sense == "ge":
            return bool(value >= self.threshold - tolerance)
        return bool(value <= self.threshold + tolerance)

    def violation(self, value: float) -> float:
        """Non-negative violation magnitude (0 when satisfied)."""
        if self.sense == "ge":
            return float(max(0.0, self.threshold - value))
        return float(max(0.0, value - self.threshold))


@dataclass
class EvaluatedDesign:
    """One simulated design: inputs, all metrics and feasibility."""

    x: np.ndarray
    metrics: dict[str, float]
    objective: float
    feasible: bool
    violation: float = 0.0
    tag: str = ""
    extra: dict[str, float] = field(default_factory=dict)


class OptimizationProblem:
    """Base class for constrained sizing problems.

    Subclasses provide :meth:`simulate` returning a metric dictionary; this
    base class provides the bookkeeping shared by every testbench.

    Parameters
    ----------
    name:
        Problem identifier used in reports (e.g. ``"two_stage_opamp_180nm"``).
    design_space:
        The physical design space.
    objective:
        Name of the metric to optimise.
    minimize:
        Whether the objective is minimised (True for current or TC).
    constraints:
        Threshold constraints on other metrics.
    """

    #: Whether this problem can be simulated through the vectorised batch
    #: path (``repro.circuits.base.simulate_checked_batch``).  Testbench
    #: problems opt in -- every analysis kind they declare (operating
    #: points, AC sweeps and transient step responses alike) now runs
    #: through the stacked solvers; wrappers that fan out *internally*
    #: (corner sweeps, Monte Carlo yield) stay False -- their own fan-outs
    #: batch instead.
    supports_batch_simulation = False

    def __init__(self, name: str, design_space: DesignSpace, objective: str,
                 minimize: bool, constraints: list[Constraint]):
        self.name = name
        self.design_space = design_space
        self.objective = objective
        self.minimize = bool(minimize)
        self.constraints = list(constraints)
        self._engine = None

    def __getstate__(self) -> dict:
        # The attached engine may own thread/process pools, which cannot be
        # pickled; a worker receiving a problem rebuilds a default engine
        # lazily (always serial inside process-pool workers, so fanned-out
        # optimizers cannot recursively spawn pools of pools).
        state = self.__dict__.copy()
        state["_engine"] = None
        return state

    # ------------------------------------------------------------------ #
    # metric layout                                                       #
    # ------------------------------------------------------------------ #
    @property
    def constraint_names(self) -> list[str]:
        return [c.name for c in self.constraints]

    @property
    def metric_names(self) -> list[str]:
        """Objective first, then constraint metrics, in a stable order."""
        return [self.objective, *self.constraint_names]

    @property
    def n_constraints(self) -> int:
        return len(self.constraints)

    @property
    def constraint_thresholds(self) -> np.ndarray:
        return np.array([c.threshold for c in self.constraints], dtype=float)

    @property
    def constraint_senses(self) -> list[str]:
        return [c.sense for c in self.constraints]

    # ------------------------------------------------------------------ #
    # evaluation                                                          #
    # ------------------------------------------------------------------ #
    def simulate(self, design: dict[str, float]) -> dict[str, float]:
        """Run the testbench for one named design point.  Subclasses override."""
        raise NotImplementedError

    def evaluate(self, x) -> EvaluatedDesign:
        """Evaluate one design vector (physical units)."""
        x = np.asarray(x, dtype=float).ravel()
        design = self.design_space.as_dict(self.design_space.clip(x.reshape(1, -1))[0])
        metrics = self.simulate(design)
        return self.evaluation_from_metrics(x, metrics)

    def evaluation_from_metrics(self, x,
                                metrics: dict[str, float]) -> EvaluatedDesign:
        """Fold a metric dictionary into a full :class:`EvaluatedDesign`.

        The constraint bookkeeping of :meth:`evaluate`, split out so batched
        simulation paths (which obtain many metric dictionaries from one
        vectorised solve) produce records identical to the serial path.
        Raises :class:`KeyError` when ``metrics`` is missing a declared
        metric, exactly like :meth:`evaluate` would.
        """
        x = np.asarray(x, dtype=float).ravel()
        missing = [m for m in self.metric_names if m not in metrics]
        if missing:
            raise KeyError(f"simulate() did not return metrics {missing} for {self.name}")
        objective = float(metrics[self.objective])
        violation = float(sum(c.violation(metrics[c.name]) for c in self.constraints))
        feasible = all(c.satisfied(metrics[c.name]) for c in self.constraints)
        return EvaluatedDesign(x=x.copy(), metrics=dict(metrics), objective=objective,
                               feasible=feasible, violation=violation)

    def failed_metrics(self) -> dict[str, float]:
        """Metric values reported for designs whose evaluation failed.

        Subclasses override to provide problem-specific "very bad" values;
        the default pessimises every metric relative to its constraint.
        """
        metrics: dict[str, float] = {}
        large = 1e6
        metrics[self.objective] = large if self.minimize else -large
        for constraint in self.constraints:
            if constraint.sense == "ge":
                metrics[constraint.name] = constraint.threshold - large
            else:
                metrics[constraint.name] = constraint.threshold + large
        return metrics

    def failed_evaluation(self, x, tag: str = "failed") -> EvaluatedDesign:
        """A fully-populated record for a design whose simulation crashed.

        Used by the evaluation engine's failure isolation: the optimizers
        still learn "this region is bad" instead of the whole batch dying.
        """
        x = np.asarray(x, dtype=float).ravel()
        metrics = self.failed_metrics()
        # Keep the metric_names completeness invariant even when a subclass
        # reports extra metrics but did not override failed_metrics(): NaN is
        # honest ("never measured") and keeps metrics_matrix() indexable.
        for name in self.metric_names:
            metrics.setdefault(name, float("nan"))
        violation = float(sum(c.violation(metrics[c.name]) for c in self.constraints))
        feasible = all(c.satisfied(metrics[c.name]) for c in self.constraints)
        return EvaluatedDesign(x=x.copy(), metrics=metrics,
                               objective=float(metrics[self.objective]),
                               feasible=feasible, violation=violation, tag=tag)

    # ------------------------------------------------------------------ #
    # engine integration                                                  #
    # ------------------------------------------------------------------ #
    @property
    def cache_token(self) -> str:
        """Identity string mixed into design-cache keys.

        Must distinguish any two problem instances whose :meth:`simulate`
        could return different values for the same design.  The name is
        enough for deterministically-configured problems; subclasses with
        instance-specific state (e.g. randomly estimated normalisation
        ranges) must extend it so a shared cache never serves one instance's
        results to another.
        """
        return self.name

    @property
    def engine(self):
        """The :class:`repro.engine.EvaluationEngine` evaluating batches.

        Created lazily (serial backend, caching on) so plain problems work
        with zero configuration; replace it with :meth:`attach_engine` to opt
        into thread/process execution or a shared cache.
        """
        if getattr(self, "_engine", None) is None:
            from repro.engine import EvaluationEngine
            self._engine = EvaluationEngine(self)
        return self._engine

    def attach_engine(self, engine) -> None:
        """Install a configured engine (``None`` restores the lazy default)."""
        self._engine = engine

    def evaluate_batch(self, x) -> list[EvaluatedDesign]:
        """Evaluate a batch of design vectors (rows of ``x``).

        Routed through the attached :class:`~repro.engine.EvaluationEngine`,
        which validates the matrix and adds design-level caching, backend
        dispatch and failure isolation on top of row-by-row :meth:`evaluate`.
        """
        return self.engine.evaluate_batch(x)

    def close(self) -> None:
        """Release any auxiliary resources the problem owns (idempotent).

        The base problem owns none -- the attached engine is closed by its
        own ``close`` -- but wrappers that hold worker pools of their own
        (e.g. a PVT corner sweep's or a Monte Carlo runner's fan-out
        backend) override this.  Drivers like :class:`repro.study.Study`
        call it after a run, and every problem is a context manager
        (``with make_problem(...) as problem:``) so ad-hoc scripts have a
        release path that survives exceptions.
        """

    def __enter__(self) -> "OptimizationProblem":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def metrics_matrix(self, evaluations: list[EvaluatedDesign]) -> np.ndarray:
        """Stack evaluations into an ``(n, n_metrics)`` matrix (metric order)."""
        return np.array([[e.metrics[name] for name in self.metric_names]
                         for e in evaluations], dtype=float)

    def is_better(self, candidate: float, incumbent: float) -> bool:
        """Compare objective values according to the optimisation direction."""
        if self.minimize:
            return candidate < incumbent
        return candidate > incumbent

    @property
    def worst_objective(self) -> float:
        """A sentinel objective value worse than any achievable one."""
        return np.inf if self.minimize else -np.inf
