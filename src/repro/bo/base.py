"""Optimizer base class and a plain single-objective GP-EI optimizer."""

from __future__ import annotations

import numpy as np

from repro.acquisition import ExpectedImprovement
from repro.bo.history import OptimizationHistory
from repro.bo.problem import EvaluatedDesign, OptimizationProblem
from repro.errors import OptimizationError
from repro.gp import GPRegression
from repro.kernels import Kernel, RBFKernel
from repro.optim.lbfgs import minimize_lbfgs
from repro.study.registry import register_optimizer
from repro.utils.random import RandomState, as_rng


class BaseOptimizer:
    """Shared ask/tell loop for all sizing optimizers.

    Subclasses implement :meth:`propose` which returns a batch of unit-cube
    candidates given the current history; the base class owns the history,
    the initial random designs and the budgeted :meth:`optimize` loop.

    Parameters
    ----------
    problem:
        The black-box sizing problem.
    batch_size:
        Number of designs simulated per iteration (MACE-style batching).
    surrogate_train_iters:
        Adam iterations for surrogate hyper-parameter training per refit.
    """

    name = "base"

    def __init__(self, problem: OptimizationProblem, batch_size: int = 1,
                 rng: RandomState = None, surrogate_train_iters: int = 50):
        if batch_size < 1:
            raise OptimizationError("batch_size must be at least 1")
        self.problem = problem
        self.batch_size = int(batch_size)
        self.rng = as_rng(rng)
        self.surrogate_train_iters = int(surrogate_train_iters)
        self.history = OptimizationHistory(problem)

    # ------------------------------------------------------------------ #
    # data handling                                                       #
    # ------------------------------------------------------------------ #
    def initialize(self, n_init: int = 10,
                   initial_designs: np.ndarray | None = None,
                   initial_evaluations: list[EvaluatedDesign] | None = None) -> None:
        """Seed the history with random designs and/or provided evaluations.

        Random designs are only drawn to top the history up to ``n_init``;
        with ``n_init=0`` nothing is ever sampled, so passing
        ``initial_evaluations=[]`` together with ``n_init=0`` is an exact
        no-op (callers managing their own warm start rely on this).
        """
        if n_init < 0:
            raise OptimizationError(f"n_init must be non-negative, got {n_init}")
        if initial_evaluations is not None:
            self.history.extend(list(initial_evaluations))
        if initial_designs is not None:
            self.history.extend(self.problem.evaluate_batch(initial_designs))
        already = len(self.history)
        if already < n_init:
            designs = self.problem.design_space.sample(n_init - already, rng=self.rng)
            self.history.extend(self.problem.evaluate_batch(designs))

    def _training_data(self) -> tuple[np.ndarray, np.ndarray]:
        """Unit-cube inputs and objective values of everything simulated so far."""
        x_unit = self.problem.design_space.to_unit(self.history.x)
        return x_unit, self.history.objectives

    def _constraint_data(self) -> np.ndarray:
        """Constraint-metric matrix ``(n, n_constraints)`` of the history."""
        metrics = self.history.metrics_matrix()
        return metrics[:, 1:]

    def incumbent(self, constrained: bool | None = None) -> float:
        """Current best objective (feasible-only for constrained problems)."""
        constrained = self.problem.n_constraints > 0 if constrained is None else constrained
        best = self.history.best_objective(constrained=constrained)
        if np.isfinite(best):
            return best
        # No feasible design yet: fall back to the best raw objective so the
        # acquisition still has a reference level.
        return self.history.best_objective(constrained=False)

    # ------------------------------------------------------------------ #
    # optimization loop                                                   #
    # ------------------------------------------------------------------ #
    def propose(self) -> np.ndarray:
        """Return a ``(batch_size, d)`` matrix of unit-cube candidates."""
        raise NotImplementedError

    def step(self) -> list[EvaluatedDesign]:
        """One ask/evaluate/tell iteration; returns the new evaluations."""
        if len(self.history) == 0:
            raise OptimizationError("call initialize() before step()")
        unit_candidates = np.atleast_2d(self.propose())
        designs = self.problem.design_space.from_unit(unit_candidates)
        evaluations = self.problem.evaluate_batch(designs)
        self.history.extend(evaluations)
        return evaluations

    def optimize(self, n_simulations: int, n_init: int = 10,
                 initial_designs: np.ndarray | None = None,
                 initial_evaluations: list[EvaluatedDesign] | None = None,
                 callback=None) -> OptimizationHistory:
        """Run until ``n_simulations`` total simulations have been spent."""
        if len(self.history) == 0:
            self.initialize(n_init=min(n_init, n_simulations),
                            initial_designs=initial_designs,
                            initial_evaluations=initial_evaluations)
        if len(self.history) == 0 and n_simulations > 0:
            raise OptimizationError(
                "optimize() has no designs to start from: provide n_init > 0, "
                "initial_designs or non-empty initial_evaluations")
        while len(self.history) < n_simulations:
            self.step()
            if callback is not None:
                callback(self.history)
        return self.history


@register_optimizer("gp_ei", aliases=("bo", "gp"),
                    description="Vanilla GP + expected-improvement BO")
class SingleObjectiveBO(BaseOptimizer):
    """Vanilla GP + expected-improvement BO (sequential, batch via constant liar)."""

    name = "gp_ei"

    def __init__(self, problem: OptimizationProblem, kernel: Kernel | None = None,
                 batch_size: int = 1, rng: RandomState = None,
                 surrogate_train_iters: int = 50, acq_restarts: int = 5):
        super().__init__(problem, batch_size=batch_size, rng=rng,
                         surrogate_train_iters=surrogate_train_iters)
        self.kernel = kernel
        self.acq_restarts = int(acq_restarts)

    def _fit_surrogate(self) -> GPRegression:
        x_unit, y = self._training_data()
        kernel = self.kernel if self.kernel is not None else RBFKernel(x_unit.shape[1])
        model = GPRegression(kernel=kernel)
        model.fit(x_unit, y, n_iters=self.surrogate_train_iters)
        return model

    def propose(self) -> np.ndarray:
        model = self._fit_surrogate()
        best = self.incumbent(constrained=False)
        bounds = self.problem.design_space.unit_bounds
        proposals = []
        # Constant-liar batching: pretend each accepted candidate achieved the
        # incumbent so subsequent candidates spread out.
        lie_x, lie_y = [], []
        for _ in range(self.batch_size):
            acquisition = ExpectedImprovement(model, best, minimize=self.problem.minimize)

            def negative_acq(point: np.ndarray) -> float:
                return -float(acquisition(point.reshape(1, -1))[0])

            candidate, _ = minimize_lbfgs(negative_acq, bounds,
                                          n_restarts=self.acq_restarts, rng=self.rng)
            proposals.append(candidate)
            if self.batch_size > 1:
                lie_x.append(candidate)
                lie_y.append(best)
                x_unit, y = self._training_data()
                x_aug = np.vstack([x_unit, np.asarray(lie_x)])
                y_aug = np.concatenate([y, np.asarray(lie_y)])
                model = GPRegression(kernel=self.kernel if self.kernel is not None
                                     else RBFKernel(x_aug.shape[1]))
                model.fit(x_aug, y_aug, n_iters=max(10, self.surrogate_train_iters // 2))
        return np.asarray(proposals)
