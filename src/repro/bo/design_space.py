"""Design-space definition and unit-cube transforms.

Transistor-sizing design variables span wildly different ranges (transistor
lengths in nanometres, capacitors in picofarads, bias currents in
microamperes), so every variable can be marked logarithmic; optimizers always
operate on the unit cube and the design space handles the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DesignSpaceError
from repro.utils.random import RandomState, as_rng
from repro.utils.validation import check_matrix


# --------------------------------------------------------------------- #
# unit-cube sampling primitives                                           #
# --------------------------------------------------------------------- #
# Shared by DesignSpace (physical design sampling) and the Monte Carlo
# mismatch samplers (standard-normal z-scores via the inverse CDF), so the
# two subsystems cannot drift apart on stratification details.

def latin_hypercube_unit(n: int, dim: int, rng: RandomState = None) -> np.ndarray:
    """Latin-hypercube points on the unit cube, ``(n, dim)``.

    Each dimension is stratified into ``n`` equal bins with one point
    uniformly placed per bin, bins visited in an independent random order.
    """
    rng = as_rng(rng)
    n = int(n)
    u = np.empty((n, int(dim)))
    for j in range(u.shape[1]):
        permutation = rng.permutation(n)
        u[:, j] = (permutation + rng.uniform(size=n)) / n
    return u


def sobol_unit(n: int, dim: int, seed: int | None = None) -> np.ndarray:
    """Scrambled Sobol points on the unit cube, ``(n, dim)``.

    A power-of-two block is generated and the first ``n`` rows returned, so
    any prefix of one seeded sequence is reproducible regardless of how the
    caller batches its draws (what the adaptive Monte Carlo loop needs).
    """
    from scipy.stats import qmc
    n = int(n)
    if n < 1:
        raise DesignSpaceError(f"n must be >= 1, got {n}")
    block = 1 << max(int(n - 1).bit_length(), 0)
    try:
        sampler = qmc.Sobol(d=int(dim), scramble=True,
                            rng=np.random.default_rng(seed))
    except TypeError:  # scipy < 1.15 spelled the rng parameter "seed"
        sampler = qmc.Sobol(d=int(dim), scramble=True,
                            seed=np.random.default_rng(seed))
    return sampler.random(block)[:n]


@dataclass(frozen=True)
class DesignVariable:
    """A single named design variable.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"L_MN1"`` or ``"C0"``).
    lower / upper:
        Physical bounds in SI units.
    log_scale:
        When True the unit-cube mapping is logarithmic, which suits
        quantities spanning orders of magnitude.
    unit:
        Free-form unit string used in reports.
    """

    name: str
    lower: float
    upper: float
    log_scale: bool = False
    unit: str = ""

    def __post_init__(self) -> None:
        if not np.isfinite(self.lower) or not np.isfinite(self.upper):
            raise DesignSpaceError(f"bounds of {self.name!r} must be finite")
        if self.upper <= self.lower:
            raise DesignSpaceError(
                f"upper bound of {self.name!r} must exceed lower bound")
        if self.log_scale and self.lower <= 0:
            raise DesignSpaceError(
                f"log-scaled variable {self.name!r} requires positive bounds")


class DesignSpace:
    """An ordered collection of :class:`DesignVariable`.

    Provides the unit-cube <-> physical transforms, uniform and Latin
    hypercube sampling and bound clipping used by every optimizer.
    """

    def __init__(self, variables: list[DesignVariable]):
        if not variables:
            raise DesignSpaceError("a design space needs at least one variable")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise DesignSpaceError(f"duplicate variable names in {names}")
        self.variables = list(variables)

    # ------------------------------------------------------------------ #
    # basic queries                                                       #
    # ------------------------------------------------------------------ #
    @property
    def dim(self) -> int:
        return len(self.variables)

    @property
    def names(self) -> list[str]:
        return [v.name for v in self.variables]

    @property
    def bounds(self) -> np.ndarray:
        """Physical bounds as an ``(d, 2)`` array."""
        return np.array([[v.lower, v.upper] for v in self.variables], dtype=float)

    @property
    def unit_bounds(self) -> np.ndarray:
        """Unit-cube bounds ``(d, 2)`` -- what optimizers search over."""
        return np.column_stack([np.zeros(self.dim), np.ones(self.dim)])

    def __len__(self) -> int:
        return self.dim

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DesignSpace({', '.join(self.names)})"

    def index_of(self, name: str) -> int:
        try:
            return self.names.index(name)
        except ValueError as exc:
            raise DesignSpaceError(f"unknown design variable {name!r}") from exc

    # ------------------------------------------------------------------ #
    # transforms                                                          #
    # ------------------------------------------------------------------ #
    def to_unit(self, x) -> np.ndarray:
        """Map physical designs ``(n, d)`` to the unit cube."""
        x = check_matrix(x, "x", n_cols=self.dim)
        out = np.empty_like(x)
        for j, variable in enumerate(self.variables):
            if variable.log_scale:
                low, high = np.log(variable.lower), np.log(variable.upper)
                out[:, j] = (np.log(np.clip(x[:, j], variable.lower, variable.upper))
                             - low) / (high - low)
            else:
                out[:, j] = (x[:, j] - variable.lower) / (variable.upper - variable.lower)
        return np.clip(out, 0.0, 1.0)

    def from_unit(self, u) -> np.ndarray:
        """Map unit-cube points ``(n, d)`` to physical designs."""
        u = check_matrix(u, "u", n_cols=self.dim)
        u = np.clip(u, 0.0, 1.0)
        out = np.empty_like(u)
        for j, variable in enumerate(self.variables):
            if variable.log_scale:
                low, high = np.log(variable.lower), np.log(variable.upper)
                out[:, j] = np.exp(low + u[:, j] * (high - low))
            else:
                out[:, j] = variable.lower + u[:, j] * (variable.upper - variable.lower)
        return out

    def clip(self, x) -> np.ndarray:
        """Clip physical designs to the bounds."""
        x = check_matrix(x, "x", n_cols=self.dim)
        bounds = self.bounds
        return np.clip(x, bounds[:, 0], bounds[:, 1])

    def as_dict(self, x) -> dict[str, float]:
        """Convert a single physical design vector to a name->value mapping."""
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != self.dim:
            raise DesignSpaceError(
                f"design vector has {x.shape[0]} entries, expected {self.dim}")
        return {name: float(value) for name, value in zip(self.names, x)}

    def from_dict(self, values: dict[str, float]) -> np.ndarray:
        """Convert a name->value mapping to a design vector (missing keys error)."""
        missing = [name for name in self.names if name not in values]
        if missing:
            raise DesignSpaceError(f"missing design variables: {missing}")
        return np.array([float(values[name]) for name in self.names])

    # ------------------------------------------------------------------ #
    # sampling                                                            #
    # ------------------------------------------------------------------ #
    def sample(self, n: int, rng: RandomState = None) -> np.ndarray:
        """Uniform random physical designs, ``(n, d)``."""
        rng = as_rng(rng)
        return self.from_unit(rng.uniform(size=(int(n), self.dim)))

    def sample_unit(self, n: int, rng: RandomState = None) -> np.ndarray:
        """Uniform random unit-cube points, ``(n, d)``."""
        rng = as_rng(rng)
        return rng.uniform(size=(int(n), self.dim))

    def latin_hypercube(self, n: int, rng: RandomState = None) -> np.ndarray:
        """Latin-hypercube physical designs, ``(n, d)``."""
        return self.from_unit(latin_hypercube_unit(n, self.dim, rng))

    def sobol(self, n: int, seed: int | None = None) -> np.ndarray:
        """Scrambled-Sobol physical designs, ``(n, d)``."""
        return self.from_unit(sobol_unit(n, self.dim, seed))
