"""Exact GP regression with autodiff-trained kernels.

The marginal likelihood (paper Eq. 3) is maximised with Adam.  Gradients with
respect to *all* kernel parameters -- including the weights inside the Neural
Kernel -- are obtained by seeding the reverse pass with the analytic gradient
of the likelihood with respect to the covariance matrix,

    dL/dK = 0.5 * (alpha alpha^T - K_n^{-1}),  alpha = K_n^{-1} y,

which avoids differentiating through the Cholesky factorisation itself while
remaining exact.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular

from repro.autodiff import Tensor
from repro.autodiff.functional import as_tensor
from repro.errors import NotFittedError
from repro.kernels import Kernel, RBFKernel
from repro.nn.module import Module, Parameter
from repro.optim.adam import Adam
from repro.utils.validation import check_matrix, check_vector

_MIN_NOISE = 1e-8
_JITTER = 1e-8


class GPRegression(Module):
    """Single-output exact GP regression.

    Parameters
    ----------
    kernel:
        Any :class:`repro.kernels.Kernel`; defaults to an ARD RBF kernel of
        the right dimensionality at :meth:`fit` time when ``None``.
    noise:
        Initial observation-noise variance (trained jointly with the kernel).
    normalize_y:
        Standardise targets internally (recommended; predictions are always
        returned in the original scale).
    """

    def __init__(self, kernel: Kernel | None = None, noise: float = 1e-2,
                 normalize_y: bool = True):
        self.kernel = kernel
        self.raw_noise = Parameter([np.log(max(noise, _MIN_NOISE))], name="raw_noise")
        self.normalize_y = bool(normalize_y)
        self.x_train_: np.ndarray | None = None
        self.y_train_: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._alpha: np.ndarray | None = None
        self._cho = None
        self._k_inv: np.ndarray | None = None
        self.training_history_: list[float] = []

    # ------------------------------------------------------------------ #
    # properties                                                          #
    # ------------------------------------------------------------------ #
    @property
    def noise(self) -> float:
        """Observation-noise variance in the standardized output space."""
        return float(np.exp(self.raw_noise.data[0])) + _MIN_NOISE

    def _require_fitted(self) -> None:
        if self.x_train_ is None or self._alpha is None:
            raise NotFittedError("GPRegression must be fitted before prediction")

    # ------------------------------------------------------------------ #
    # fitting                                                             #
    # ------------------------------------------------------------------ #
    def fit(self, x, y, n_iters: int = 80, lr: float = 0.05,
            optimize: bool = True) -> "GPRegression":
        """Fit the GP to data, optionally optimising hyper-parameters.

        Parameters
        ----------
        x, y:
            Training inputs ``(n, d)`` and targets ``(n,)``.
        n_iters, lr:
            Adam schedule for marginal-likelihood maximisation.
        optimize:
            When ``False`` only the data is cached (hyper-parameters are
            left untouched) -- used by tests and by warm-started refits.
        """
        x = check_matrix(x, "x")
        y = check_vector(y, "y")
        if x.shape[0] != y.shape[0]:
            raise ValueError(
                f"x and y must have the same number of rows, got {x.shape[0]} and {y.shape[0]}"
            )
        if x.shape[0] < 1:
            raise ValueError("at least one training point is required")
        if self.kernel is None:
            self.kernel = RBFKernel(x.shape[1])
        if self.kernel.input_dim != x.shape[1]:
            raise ValueError(
                f"kernel expects {self.kernel.input_dim} input dims, data has {x.shape[1]}"
            )

        self.x_train_ = x.copy()
        if self.normalize_y:
            self._y_mean = float(y.mean())
            std = float(y.std())
            self._y_std = std if std > 1e-12 else 1.0
        else:
            self._y_mean, self._y_std = 0.0, 1.0
        self.y_train_ = (y - self._y_mean) / self._y_std

        if optimize and x.shape[0] >= 2:
            self.training_history_ = self._optimize_hyperparameters(n_iters, lr)
        self._update_posterior_cache()
        return self

    def _covariance_tensor(self) -> Tensor:
        """Training covariance ``K + sigma_n^2 I`` as a graph tensor."""
        x = as_tensor(self.x_train_)
        k = self.kernel(x, x)
        noise = self.raw_noise.exp() + _MIN_NOISE
        eye = Tensor(np.eye(self.x_train_.shape[0]))
        return k + eye * noise

    def _nlml_and_grad_seed(self, a_np: np.ndarray) -> tuple[float, np.ndarray] | None:
        """Negative log marginal likelihood and its gradient w.r.t. ``A``."""
        n = a_np.shape[0]
        y = self.y_train_
        a_np = a_np + _JITTER * np.eye(n)
        try:
            cho = cho_factor(a_np, lower=True)
        except np.linalg.LinAlgError:
            return None
        alpha = cho_solve(cho, y)
        logdet = 2.0 * np.sum(np.log(np.diag(cho[0])))
        nlml = 0.5 * float(y @ alpha) + 0.5 * logdet + 0.5 * n * np.log(2.0 * np.pi)
        a_inv = cho_solve(cho, np.eye(n))
        grad = 0.5 * (a_inv - np.outer(alpha, alpha))
        return nlml, grad

    def _optimize_hyperparameters(self, n_iters: int, lr: float) -> list[float]:
        params = self.parameters()
        optimizer = Adam(params, lr=lr, grad_clip=20.0)
        history: list[float] = []
        best = np.inf
        best_state = self.state_dict()
        stall = 0
        for _ in range(int(n_iters)):
            optimizer.zero_grad()
            a_tensor = self._covariance_tensor()
            result = self._nlml_and_grad_seed(a_tensor.data)
            if result is None:
                # Covariance became non-PSD: back off to the best parameters.
                self.load_state_dict(best_state)
                break
            nlml, seed = result
            history.append(nlml)
            if nlml < best - 1e-7:
                best = nlml
                best_state = self.state_dict()
                stall = 0
            else:
                stall += 1
                if stall >= 20:
                    break
            a_tensor.backward(seed)
            optimizer.step()
        if history and history[-1] > best:
            self.load_state_dict(best_state)
        return history

    def _update_posterior_cache(self) -> None:
        a_tensor = self._covariance_tensor()
        n = self.x_train_.shape[0]
        a_np = a_tensor.data + _JITTER * np.eye(n)
        jitter = _JITTER
        while True:
            try:
                self._cho = cho_factor(a_np, lower=True)
                break
            except np.linalg.LinAlgError:
                jitter = max(jitter, 1e-10) * 10.0
                if jitter > 1e2:
                    raise
                a_np = a_tensor.data + jitter * np.eye(n)
        self._alpha = cho_solve(self._cho, self.y_train_)
        self._k_inv = cho_solve(self._cho, np.eye(n))

    # ------------------------------------------------------------------ #
    # prediction                                                          #
    # ------------------------------------------------------------------ #
    def log_marginal_likelihood(self) -> float:
        """Log marginal likelihood of the training data at the current parameters."""
        self._require_fitted()
        a_tensor = self._covariance_tensor()
        result = self._nlml_and_grad_seed(a_tensor.data)
        if result is None:
            return -np.inf
        return -result[0]

    def predict(self, x, return_std: bool = False) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance (or standard deviation) at ``x``.

        Implements paper Eq. 4, mapped back to the original output scale.
        """
        self._require_fitted()
        x = check_matrix(x, "x", n_cols=self.x_train_.shape[1])
        k_star = self.kernel.matrix(x, self.x_train_)           # (m, n)
        mean = k_star @ self._alpha
        lower = solve_triangular(self._cho[0], k_star.T, lower=True)
        k_diag = self.kernel.diag(x)
        var = np.maximum(k_diag - np.sum(lower**2, axis=0), 1e-12)
        mean = mean * self._y_std + self._y_mean
        var = var * self._y_std**2
        if return_std:
            return mean, np.sqrt(var)
        return mean, var

    def predict_tensor(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Differentiable posterior mean and variance at tensor inputs ``x``.

        Used by KAT-GP: gradients flow through the *inputs* (the encoder
        output) while the source-GP posterior (``alpha`` and ``K^{-1}``) is
        held fixed, exactly as required by the knowledge-alignment training
        of paper Eq. 12.
        """
        self._require_fitted()
        x = as_tensor(x)
        x_train = Tensor(self.x_train_)
        k_star = self.kernel(x, x_train)                          # (m, n)
        alpha = Tensor(self._alpha.reshape(-1, 1))
        mean = (k_star @ alpha).reshape(x.shape[0])
        k_inv = Tensor(self._k_inv)
        quad = ((k_star @ k_inv) * k_star).sum(axis=1)
        k_ss = self.kernel(x, x)
        eye = Tensor(np.eye(x.shape[0]))
        k_diag = (k_ss * eye).sum(axis=1)
        var = (k_diag - quad).clip_min(1e-12)
        mean = mean * self._y_std + self._y_mean
        var = var * (self._y_std**2)
        return mean, var

    def sample_posterior(self, x, n_samples: int = 1, rng=None) -> np.ndarray:
        """Draw joint posterior samples at ``x`` (shape ``(n_samples, m)``)."""
        from repro.utils.random import as_rng

        self._require_fitted()
        rng = as_rng(rng)
        x = check_matrix(x, "x", n_cols=self.x_train_.shape[1])
        k_star = self.kernel.matrix(x, self.x_train_)
        mean = k_star @ self._alpha * self._y_std + self._y_mean
        k_ss = self.kernel.matrix(x, x)
        lower = solve_triangular(self._cho[0], k_star.T, lower=True)
        cov = k_ss - lower.T @ lower
        cov = cov * self._y_std**2
        cov = cov + 1e-8 * np.trace(cov) / max(x.shape[0], 1) * np.eye(x.shape[0])
        return rng.multivariate_normal(mean, cov, size=n_samples, method="cholesky"
                                       if _is_posdef(cov) else "svd")


def _is_posdef(matrix: np.ndarray) -> bool:
    try:
        np.linalg.cholesky(matrix)
        return True
    except np.linalg.LinAlgError:
        return False
