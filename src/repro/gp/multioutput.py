"""Independent multi-output GP used for constrained transistor sizing.

Constrained BO needs a surrogate per performance metric (objective plus every
constraint).  Following standard MACE-style practice the metrics are modelled
by independent single-output GPs that share the input data; KAT-GP later
consumes the *vector* of per-metric predictions of a source model of this
type.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.autodiff import Tensor
from repro.autodiff.functional import as_tensor, stack
from repro.errors import NotFittedError
from repro.gp.gpr import GPRegression
from repro.kernels import Kernel
from repro.nn.module import Module
from repro.utils.validation import check_matrix


class MultiOutputGP(Module):
    """A collection of independent :class:`GPRegression` models, one per output.

    Parameters
    ----------
    kernel_factory:
        Callable ``(input_dim) -> Kernel`` used to create a fresh kernel per
        output; defaults to ARD RBF.
    """

    def __init__(self, kernel_factory: Callable[[int], Kernel] | None = None,
                 noise: float = 1e-2, normalize_y: bool = True):
        self.kernel_factory = kernel_factory
        self.noise = float(noise)
        self.normalize_y = bool(normalize_y)
        self.models: list[GPRegression] = []
        self.n_outputs_: int | None = None
        self.input_dim_: int | None = None

    def _require_fitted(self) -> None:
        if not self.models:
            raise NotFittedError("MultiOutputGP must be fitted before prediction")

    def fit(self, x, y, n_iters: int = 80, lr: float = 0.05,
            optimize: bool = True) -> "MultiOutputGP":
        """Fit one GP per column of ``y`` (shape ``(n, n_outputs)``)."""
        x = check_matrix(x, "x")
        y = check_matrix(y, "y")
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        self.n_outputs_ = y.shape[1]
        self.input_dim_ = x.shape[1]
        self.models = []
        for output_index in range(self.n_outputs_):
            kernel = None
            if self.kernel_factory is not None:
                kernel = self.kernel_factory(x.shape[1])
            model = GPRegression(kernel=kernel, noise=self.noise,
                                 normalize_y=self.normalize_y)
            model.fit(x, y[:, output_index], n_iters=n_iters, lr=lr,
                      optimize=optimize)
            self.models.append(model)
        return self

    def predict(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Mean and variance per output: both shaped ``(m, n_outputs)``."""
        self._require_fitted()
        means, variances = [], []
        for model in self.models:
            mean, var = model.predict(x)
            means.append(mean)
            variances.append(var)
        return np.column_stack(means), np.column_stack(variances)

    def predict_tensor(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Differentiable mean and variance, both shaped ``(m, n_outputs)``."""
        self._require_fitted()
        x = as_tensor(x)
        means, variances = [], []
        for model in self.models:
            mean, var = model.predict_tensor(x)
            means.append(mean)
            variances.append(var)
        return stack(means, axis=1), stack(variances, axis=1)

    def __len__(self) -> int:
        return len(self.models)

    def __getitem__(self, index: int) -> GPRegression:
        return self.models[index]
