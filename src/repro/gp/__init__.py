"""Exact Gaussian-process regression trained by marginal-likelihood maximisation."""

from repro.gp.gpr import GPRegression
from repro.gp.multioutput import MultiOutputGP

__all__ = ["GPRegression", "MultiOutputGP"]
