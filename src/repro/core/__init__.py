"""KATO: the paper's contribution.

* :class:`NeukGP` -- GP surrogates equipped with the Neural Kernel (section 3.1).
* :class:`KATGP` -- Knowledge Alignment and Transfer GP: an encoder/decoder
  wrapped around a frozen source GP, trained on target data and predicted
  through the Delta method (section 3.2, Eq. 11-12).
* :class:`SelectiveTransfer` -- the bandit weighting between KAT-GP and
  target-only proposals (section 3.4, Eq. 14).
* :class:`KATO` -- the full optimizer of Algorithm 1, built on the modified
  constrained MACE acquisition (section 3.3, Eq. 13).
"""

from repro.core.neuk_gp import NeukGP, NeukMultiOutputGP, neural_kernel_factory
from repro.core.kat_gp import KATGP, SourceModel
from repro.core.selective_transfer import SelectiveTransfer
from repro.core.kato import KATO, KATOConfig

__all__ = [
    "NeukGP",
    "NeukMultiOutputGP",
    "neural_kernel_factory",
    "KATGP",
    "SourceModel",
    "SelectiveTransfer",
    "KATO",
    "KATOConfig",
]
