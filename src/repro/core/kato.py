"""KATO: the full optimizer of Algorithm 1.

KATO combines
* NeukGP surrogates (Neural Kernel GPs) fitted on the target data,
* an optional KAT-GP transfer surrogate aligned to a source circuit,
* the modified constrained MACE acquisition ensemble (Eq. 13) searched with
  NSGA-II (plain MACE {UCB, EI, PI} for unconstrained FOM problems), and
* Selective Transfer Learning (Eq. 14) to split each simulation batch
  between the transfer model and the target-only model.

Without a source model KATO degenerates to "KATO w/o TL": NeukGP plus the
modified constrained MACE -- exactly the ablation the paper's Fig. 6 plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.acquisition import MACEObjectives, ModifiedConstrainedMACEObjectives
from repro.bo.base import BaseOptimizer
from repro.bo.mace import select_batch_from_pareto
from repro.bo.problem import EvaluatedDesign, OptimizationProblem
from repro.core.kat_gp import KATGP, SourceModel
from repro.core.neuk_gp import neural_kernel_factory
from repro.core.selective_transfer import SelectiveTransfer
from repro.gp import GPRegression, MultiOutputGP
from repro.moo import NSGA2
from repro.study.registry import register_optimizer
from repro.utils.random import RandomState, as_rng


@dataclass
class KATOConfig:
    """Hyper-parameters of the KATO optimizer.

    Attributes mirror the settings reported/implied in the paper: batch
    proposals from a NSGA-II Pareto search over the three-objective ensemble,
    Neural-Kernel GP surrogates and shallow encoder/decoder alignment.
    """

    batch_size: int = 4
    surrogate_train_iters: int = 60
    kat_train_iters: int = 120
    pop_size: int = 64
    n_generations: int = 30
    ucb_beta: float = 2.0
    use_neural_kernel: bool = True
    kernel_kwargs: dict = field(default_factory=dict)


def _kato_config(context) -> KATOConfig:
    """KATOConfig from the build context (quick-scale defaults + overrides)."""
    kwargs = dict(batch_size=4, surrogate_train_iters=20, kat_train_iters=60,
                  pop_size=32, n_generations=10) if context.quick else {}
    if context.batch_size is not None:
        kwargs["batch_size"] = int(context.batch_size)
    kwargs.update(context.options)
    return KATOConfig(**kwargs)


def _build_kato(cls, problem, rng, context):
    # "kato" is the no-transfer ablation ("KATO w/o TL"): a provided source
    # is deliberately ignored, exactly as the old factories did.
    return cls(problem, source=None, config=_kato_config(context), rng=rng)


def _build_kato_tl(cls, problem, rng, context):
    return cls(problem, source=context.source, config=_kato_config(context),
               rng=rng)


@register_optimizer("kato", builder=_build_kato,
                    description="KATO without transfer (NeukGP + modified "
                                "constrained MACE)")
@register_optimizer("kato_tl", builder=_build_kato_tl, requires_source=True,
                    description="Full KATO with knowledge alignment and "
                                "selective transfer from a source model")
class KATO(BaseOptimizer):
    """Knowledge Alignment and Transfer Optimization (Algorithm 1).

    Parameters
    ----------
    problem:
        Target sizing problem (constrained, or an unconstrained FOM problem).
    source:
        Optional :class:`SourceModel` built from another circuit and/or
        technology node; ``None`` disables transfer ("KATO w/o TL").
    config:
        :class:`KATOConfig` hyper-parameters.
    """

    name = "kato"

    def __init__(self, problem: OptimizationProblem, source: SourceModel | None = None,
                 config: KATOConfig | None = None, rng: RandomState = None):
        config = config or KATOConfig()
        super().__init__(problem, batch_size=config.batch_size, rng=rng,
                         surrogate_train_iters=config.surrogate_train_iters)
        self.config = config
        self.source = source
        self.kat_model: KATGP | None = None
        self.selector: SelectiveTransfer | None = None
        self._kernel_rng = as_rng(self.rng.integers(0, 2**31 - 1))
        if config.use_neural_kernel:
            self.kernel_factory = neural_kernel_factory(rng=self._kernel_rng,
                                                        **config.kernel_kwargs)
        else:
            from repro.kernels import RBFKernel
            self.kernel_factory = lambda dim: RBFKernel(dim)

    # ------------------------------------------------------------------ #
    # surrogate fitting                                                    #
    # ------------------------------------------------------------------ #
    def _target_outputs(self) -> np.ndarray:
        """Target metric matrix in ``problem.metric_names`` order."""
        return self.history.metrics_matrix()

    def fit_target_surrogates(self) -> tuple[GPRegression, MultiOutputGP | None]:
        """Fit the NeukGP objective surrogate (and constraint surrogates)."""
        x_unit, y = self._training_data()
        objective_model = GPRegression(kernel=self.kernel_factory(x_unit.shape[1]))
        objective_model.fit(x_unit, y, n_iters=self.surrogate_train_iters)
        constraint_model = None
        if self.problem.n_constraints > 0:
            constraint_model = MultiOutputGP(kernel_factory=self.kernel_factory)
            constraint_model.fit(x_unit, self._constraint_data(),
                                 n_iters=self.surrogate_train_iters)
        return objective_model, constraint_model

    def fit_transfer_surrogate(self) -> KATGP:
        """(Re)train the KAT-GP alignment on the current target data."""
        if self.source is None:
            raise RuntimeError("fit_transfer_surrogate() requires a source model")
        x_unit = self.problem.design_space.to_unit(self.history.x)
        y = self._target_outputs()
        if self.kat_model is None:
            self.kat_model = KATGP(self.source, target_input_dim=x_unit.shape[1],
                                   target_output_dim=y.shape[1],
                                   rng=self._kernel_rng)
        self.kat_model.fit(x_unit, y, n_iters=self.config.kat_train_iters)
        return self.kat_model

    # ------------------------------------------------------------------ #
    # acquisition                                                          #
    # ------------------------------------------------------------------ #
    def _make_ensemble(self, objective_model, constraint_model):
        best = self.incumbent()
        if self.problem.n_constraints == 0:
            return MACEObjectives(objective_model, best, minimize=self.problem.minimize,
                                  beta=self.config.ucb_beta)
        return ModifiedConstrainedMACEObjectives(
            objective_model=objective_model,
            constraint_model=constraint_model,
            best=best,
            thresholds=self.problem.constraint_thresholds,
            senses=self.problem.constraint_senses,
            minimize=self.problem.minimize,
            beta=self.config.ucb_beta,
        )

    def _acquisition_pareto(self, objective_model, constraint_model) -> np.ndarray:
        ensemble = self._make_ensemble(objective_model, constraint_model)
        searcher = NSGA2(pop_size=self.config.pop_size,
                         n_generations=self.config.n_generations, rng=self.rng)
        x_unit, _ = self._training_data()
        result = searcher.minimize(ensemble, self.problem.design_space.unit_bounds,
                                   initial_population=x_unit[-self.config.pop_size:])
        return result.pareto_x

    # ------------------------------------------------------------------ #
    # Algorithm 1                                                          #
    # ------------------------------------------------------------------ #
    def _ensure_selector(self) -> SelectiveTransfer:
        if self.selector is None:
            initial = [max(self.source.x.shape[0], 1), max(len(self.history), 1)]
            self.selector = SelectiveTransfer(initial, names=["kat_gp", "neuk_gp"],
                                              rng=self.rng)
        return self.selector

    def propose(self) -> np.ndarray:
        objective_model, constraint_model = self.fit_target_surrogates()
        target_pareto = self._acquisition_pareto(objective_model, constraint_model)
        if self.source is None:
            return select_batch_from_pareto(target_pareto, self.batch_size, self.rng)
        # Transfer path: proposals from the KAT-GP ensemble as well, split by STL.
        kat = self.fit_transfer_surrogate()
        kat_constraint = kat.constraint_view() if self.problem.n_constraints else None
        kat_pareto = self._acquisition_pareto(kat.objective_view(), kat_constraint)
        selector = self._ensure_selector()
        designs, labels = selector.select_from([kat_pareto, target_pareto], self.batch_size)
        self._last_labels = labels
        return designs

    def step(self) -> list[EvaluatedDesign]:
        incumbent_before = self.incumbent()
        evaluations = super().step()
        # Update the STL weights with the number of proposals (per source)
        # that improved on the incumbent (Eq. 14).
        if self.source is not None and self.selector is not None and evaluations:
            labels = getattr(self, "_last_labels", None)
            if labels is not None and len(labels) == len(evaluations):
                eligible = np.array([
                    e.feasible or self.problem.n_constraints == 0 for e in evaluations])
                objectives = np.array([e.objective for e in evaluations])
                # Infeasible designs never count as improvements.
                masked = np.where(eligible, objectives,
                                  np.inf if self.problem.minimize else -np.inf)
                self.selector.update_from_evaluations(
                    labels, masked, incumbent_before, self.problem.minimize)
        return evaluations

    # ------------------------------------------------------------------ #
    # reporting                                                            #
    # ------------------------------------------------------------------ #
    def transfer_report(self) -> dict[str, object]:
        """Summary of the selective-transfer behaviour for the experiment logs."""
        if self.selector is None:
            return {"transfer": self.source is not None, "weights": None}
        return {
            "transfer": True,
            "weights": self.selector.weights.tolist(),
            "probabilities": self.selector.probabilities().tolist(),
            "names": self.selector.names,
        }
