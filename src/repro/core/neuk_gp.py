"""NeukGP: Gaussian processes equipped with the Neural Kernel.

These are thin, named specialisations of :class:`repro.gp.GPRegression` /
:class:`repro.gp.MultiOutputGP`; the paper refers to the target-only model of
the selective-transfer scheme as "NeukGP", so the same name is used here.
"""

from __future__ import annotations

from repro.gp import GPRegression, MultiOutputGP
from repro.kernels import Kernel, NeuralKernel
from repro.utils.random import RandomState, as_rng


def neural_kernel_factory(rng: RandomState = None, **kwargs):
    """Return a ``dim -> NeuralKernel`` factory suitable for the BO engines."""
    rng = as_rng(rng)

    def factory(input_dim: int) -> Kernel:
        return NeuralKernel(input_dim, rng=rng, **kwargs)

    return factory


class NeukGP(GPRegression):
    """Single-output GP regression with a Neural Kernel."""

    def __init__(self, input_dim: int, noise: float = 1e-2,
                 normalize_y: bool = True, rng: RandomState = None,
                 **kernel_kwargs):
        kernel = NeuralKernel(int(input_dim), rng=rng, **kernel_kwargs)
        super().__init__(kernel=kernel, noise=noise, normalize_y=normalize_y)


class NeukMultiOutputGP(MultiOutputGP):
    """Independent multi-output GP whose every output uses a Neural Kernel."""

    def __init__(self, noise: float = 1e-2, normalize_y: bool = True,
                 rng: RandomState = None, **kernel_kwargs):
        super().__init__(kernel_factory=neural_kernel_factory(rng=rng, **kernel_kwargs),
                         noise=noise, normalize_y=normalize_y)
