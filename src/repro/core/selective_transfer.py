"""Selective Transfer Learning (STL), paper section 3.4 and Eq. 14.

Transfer is not always helpful; STL hedges by maintaining a weight per
proposal source (the KAT-GP transfer model and the target-only NeukGP) and
splitting every simulation batch between them proportionally.  Weights start
at the respective dataset sizes and each is incremented by the number of its
proposals that improved the incumbent, so the scheme gracefully shifts the
budget towards whichever model is actually producing better designs.
"""

from __future__ import annotations

import numpy as np

from repro.utils.random import RandomState, as_rng


class SelectiveTransfer:
    """Bandit-style weighting between two (or more) proposal sources.

    Parameters
    ----------
    initial_weights:
        Starting weights, one per proposal source; the paper initialises them
        with the number of samples available to each model.
    names:
        Optional labels (used in reports).
    """

    def __init__(self, initial_weights, names: list[str] | None = None,
                 rng: RandomState = None):
        weights = np.asarray(initial_weights, dtype=float)
        if weights.ndim != 1 or weights.shape[0] < 2:
            raise ValueError("at least two proposal sources are required")
        if np.any(weights <= 0):
            raise ValueError("initial weights must be positive")
        self.weights = weights.copy()
        self.names = list(names) if names else [f"model_{i}" for i in range(weights.shape[0])]
        if len(self.names) != weights.shape[0]:
            raise ValueError("names must match the number of weights")
        self.rng = as_rng(rng)
        self.history: list[np.ndarray] = [self.weights.copy()]

    @property
    def n_sources(self) -> int:
        return self.weights.shape[0]

    def probabilities(self) -> np.ndarray:
        """Current normalised selection probabilities."""
        return self.weights / self.weights.sum()

    # ------------------------------------------------------------------ #
    # batch splitting                                                     #
    # ------------------------------------------------------------------ #
    def allocate(self, batch_size: int) -> np.ndarray:
        """Split ``batch_size`` simulations between the sources (Eq. 14 ratio).

        Every source with non-zero probability gets its proportional share;
        rounding leftovers go to the highest-weight sources, and each source
        is guaranteed at least one slot when the batch is large enough
        (so a temporarily-losing model can still recover).
        """
        if batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        probabilities = self.probabilities()
        counts = np.floor(probabilities * batch_size).astype(int)
        if batch_size >= self.n_sources:
            counts = np.maximum(counts, 1)
        while counts.sum() > batch_size:
            counts[int(np.argmax(counts))] -= 1
        order = np.argsort(-probabilities)
        index = 0
        while counts.sum() < batch_size:
            counts[order[index % self.n_sources]] += 1
            index += 1
        return counts

    def select_from(self, proposal_sets: list[np.ndarray], batch_size: int) -> tuple[np.ndarray, np.ndarray]:
        """Draw the batch from per-source Pareto sets according to the weights.

        Returns ``(designs, source_labels)`` where ``source_labels[i]`` is the
        index of the proposal source that produced design ``i``.
        """
        if len(proposal_sets) != self.n_sources:
            raise ValueError(
                f"expected {self.n_sources} proposal sets, got {len(proposal_sets)}")
        counts = self.allocate(batch_size)
        chosen: list[np.ndarray] = []
        labels: list[int] = []
        for source_index, (count, proposals) in enumerate(zip(counts, proposal_sets)):
            if count == 0:
                continue
            proposals = np.atleast_2d(np.asarray(proposals, dtype=float))
            n_available = proposals.shape[0]
            if n_available == 0:
                continue
            replace = n_available < count
            picks = self.rng.choice(n_available, size=count, replace=replace)
            chosen.append(proposals[picks])
            labels.extend([source_index] * count)
        designs = np.vstack(chosen) if chosen else np.empty((0, 0))
        return designs, np.asarray(labels, dtype=int)

    # ------------------------------------------------------------------ #
    # weight update (Eq. 14)                                              #
    # ------------------------------------------------------------------ #
    def update(self, improvements: np.ndarray) -> None:
        """Add the per-source improvement counts to the weights."""
        improvements = np.asarray(improvements, dtype=float)
        if improvements.shape != self.weights.shape:
            raise ValueError(
                f"improvements must have shape {self.weights.shape}, got {improvements.shape}")
        if np.any(improvements < 0):
            raise ValueError("improvement counts cannot be negative")
        self.weights = self.weights + improvements
        self.history.append(self.weights.copy())

    def update_from_evaluations(self, labels: np.ndarray, objectives: np.ndarray,
                                incumbent: float, minimize: bool) -> np.ndarray:
        """Count how many new evaluations of each source beat ``incumbent`` and update.

        Returns the improvement counts (useful for logging).
        """
        labels = np.asarray(labels, dtype=int)
        objectives = np.asarray(objectives, dtype=float)
        improvements = np.zeros(self.n_sources)
        for source_index in range(self.n_sources):
            values = objectives[labels == source_index]
            if values.size == 0:
                continue
            if minimize:
                improvements[source_index] = float(np.count_nonzero(values < incumbent))
            else:
                improvements[source_index] = float(np.count_nonzero(values > incumbent))
        self.update(improvements)
        return improvements
