"""Knowledge Alignment and Transfer GP (KAT-GP), paper section 3.2.

The source knowledge lives in a *frozen* multi-output GP fitted on the source
circuit's data.  Transfer to a target circuit with a different design space
and a different performance space is achieved by

* an **encoder** ``E`` mapping target designs into the source design space,
* a **decoder** ``D`` mapping the vector of source-metric predictions into
  the target metrics,

both small ``linear-sigmoid-linear`` networks (hidden width 32, as in the
paper).  Because the decoder is nonlinear the composite model is no longer a
GP; its predictive mean and variance are obtained with the Delta method
(Eq. 11) and the encoder/decoder are trained by maximising the resulting
Gaussian log-likelihood of the target data (Eq. 12).
"""

from __future__ import annotations

import numpy as np

from repro.autodiff import Tensor, no_grad
from repro.autodiff.functional import as_tensor, stack
from repro.errors import NotFittedError
from repro.gp import MultiOutputGP
from repro.kernels import Kernel, RBFKernel
from repro.nn.layers import MLP
from repro.nn.module import Module, Parameter
from repro.optim.trainer import train_module
from repro.utils.random import RandomState, as_rng
from repro.utils.validation import check_matrix


class SourceModel:
    """A frozen multi-output GP holding the source circuit's knowledge.

    Parameters
    ----------
    x, y:
        Source designs (unit cube, ``(n_s, d_s)``) and source metrics
        ``(n_s, m_s)``.
    kernel_factory:
        Kernel constructor for the source GPs (defaults to ARD RBF; pass
        :func:`repro.core.neuk_gp.neural_kernel_factory` for Neuk sources).
    metric_names:
        Optional names of the source metrics (used in reports).
    """

    def __init__(self, x, y, kernel_factory=None, metric_names: list[str] | None = None,
                 train_iters: int = 60):
        x = check_matrix(x, "x")
        y = check_matrix(y, "y")
        self.x = x
        self.y = y
        self.metric_names = list(metric_names) if metric_names else [
            f"source_metric_{i}" for i in range(y.shape[1])]
        self.gp = MultiOutputGP(kernel_factory=kernel_factory)
        self.gp.fit(x, y, n_iters=train_iters)
        # Output standardisation so the decoder sees O(1) inputs.
        self.y_mean = y.mean(axis=0)
        y_std = y.std(axis=0)
        self.y_std = np.where(y_std < 1e-9, 1.0, y_std)

    @property
    def input_dim(self) -> int:
        return self.x.shape[1]

    @property
    def output_dim(self) -> int:
        return self.y.shape[1]

    def predict_standardized_tensor(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Differentiable source predictions in standardized output space."""
        mean, var = self.gp.predict_tensor(x)
        mean_std = (mean - Tensor(self.y_mean)) * Tensor(1.0 / self.y_std)
        var_std = var * Tensor(1.0 / self.y_std**2)
        return mean_std, var_std


class KATGP(Module):
    """Encoder / frozen-source-GP / decoder transfer surrogate.

    The model predicts every target metric jointly: the decoder consumes the
    whole vector of (standardized) source-metric predictions, which is what
    lets knowledge transfer across performance spaces of different sizes.

    Parameters
    ----------
    source:
        The frozen :class:`SourceModel`.
    target_input_dim / target_output_dim:
        Dimensions of the target design space and metric vector.
    hidden:
        Hidden width of the encoder and decoder (32 in the paper).
    """

    def __init__(self, source: SourceModel, target_input_dim: int,
                 target_output_dim: int, hidden: int = 32,
                 rng: RandomState = None):
        rng = as_rng(rng)
        self.source = source
        self.target_input_dim = int(target_input_dim)
        self.target_output_dim = int(target_output_dim)
        self.hidden = int(hidden)
        # Encoder: target design -> source design space (kept in [0, 1] via a
        # final sigmoid since source GPs were trained on the unit cube).
        self.encoder = MLP(self.target_input_dim, source.input_dim,
                           hidden=(hidden,), activation="sigmoid",
                           output_activation="sigmoid", rng=rng)
        # Decoder: explicit linear-sigmoid-linear parameters so its Jacobian
        # (needed by the Delta method) is available analytically.
        scale_in = 1.0 / np.sqrt(source.output_dim)
        scale_hidden = 1.0 / np.sqrt(hidden)
        self.dec_w1 = Parameter(rng.normal(0.0, scale_in, size=(hidden, source.output_dim)))
        self.dec_b1 = Parameter(np.zeros(hidden))
        self.dec_w2 = Parameter(rng.normal(0.0, scale_hidden,
                                           size=(self.target_output_dim, hidden)))
        self.dec_b2 = Parameter(np.zeros(self.target_output_dim))
        self.raw_noise = Parameter(np.full(self.target_output_dim, np.log(1e-2)))
        # Target output standardisation (set at fit time).
        self._t_mean = np.zeros(self.target_output_dim)
        self._t_std = np.ones(self.target_output_dim)
        self._fitted = False
        self.training_history_: list[float] = []

    # ------------------------------------------------------------------ #
    # forward pieces                                                      #
    # ------------------------------------------------------------------ #
    def _decode(self, mean_s: Tensor, var_s: Tensor) -> tuple[Tensor, Tensor]:
        """Delta-method push of the source posterior through the decoder.

        Returns the decoded mean ``(n, m_t)`` and variance ``(n, m_t)`` in
        *standardized target* space (Eq. 11 with independent source outputs).
        """
        pre = mean_s @ self.dec_w1.transpose() + self.dec_b1            # (n, H)
        hidden = pre.sigmoid()
        mean_t = hidden @ self.dec_w2.transpose() + self.dec_b2         # (n, m_t)
        dhidden = hidden * (hidden * -1.0 + 1.0)                        # sigmoid'
        variances = []
        for k in range(self.target_output_dim):
            w2_row = self.dec_w2[k].reshape(1, self.hidden)              # (1, H)
            # J_k[i, j] = sum_h w2[k, h] * s'(z_i)[h] * w1[h, j]
            jac_k = (dhidden * w2_row) @ self.dec_w1                     # (n, m_s)
            variances.append(((jac_k * jac_k) * var_s).sum(axis=1))      # (n,)
        var_t = stack(variances, axis=1)                                  # (n, m_t)
        return mean_t, var_t

    def _forward(self, x: Tensor) -> tuple[Tensor, Tensor]:
        """Standardized-target predictive mean and variance (with gradients)."""
        encoded = self.encoder(x)
        mean_s, var_s = self.source.predict_standardized_tensor(encoded)
        return self._decode(mean_s, var_s)

    # ------------------------------------------------------------------ #
    # training                                                            #
    # ------------------------------------------------------------------ #
    def fit(self, x, y, n_iters: int = 150, lr: float = 0.02) -> "KATGP":
        """Train encoder, decoder and noise on target data (paper Eq. 12)."""
        x = check_matrix(x, "x", n_cols=self.target_input_dim)
        y = check_matrix(y, "y", n_cols=self.target_output_dim)
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        self._t_mean = y.mean(axis=0)
        t_std = y.std(axis=0)
        self._t_std = np.where(t_std < 1e-9, 1.0, t_std)
        y_standardized = (y - self._t_mean) / self._t_std
        x_tensor = Tensor(x)
        y_tensor = Tensor(y_standardized)

        def negative_log_likelihood() -> Tensor:
            mean, var = self._forward(x_tensor)
            noise = self.raw_noise.exp() + 1e-6
            total_var = var + noise
            residual = y_tensor - mean
            log_term = total_var.log()
            nll = (residual * residual / total_var + log_term).sum() * 0.5
            return nll * (1.0 / x.shape[0])

        self.training_history_ = train_module(self, negative_log_likelihood,
                                              n_iters=n_iters, lr=lr)
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    # prediction                                                          #
    # ------------------------------------------------------------------ #
    def predict(self, x) -> tuple[np.ndarray, np.ndarray]:
        """Predictive mean and variance per target metric, original scale."""
        if not self._fitted:
            raise NotFittedError("KATGP must be fitted before prediction")
        x = check_matrix(x, "x", n_cols=self.target_input_dim)
        with no_grad():
            mean, var = self._forward(Tensor(x))
            noise = np.exp(self.raw_noise.data) + 1e-6
        mean = mean.data * self._t_std + self._t_mean
        var = (var.data + noise) * self._t_std**2
        return mean, np.maximum(var, 1e-12)

    def objective_view(self) -> "_ColumnView":
        """Single-output view of metric column 0 (the optimisation objective)."""
        return _ColumnView(self, columns=[0], flatten=True)

    def constraint_view(self) -> "_ColumnView":
        """Multi-output view of the constraint metric columns (1..m_t-1)."""
        return _ColumnView(self, columns=list(range(1, self.target_output_dim)),
                           flatten=False)


class _ColumnView:
    """Adapter exposing a subset of KAT-GP output columns via ``predict``.

    The objective view flattens to 1-D (what the scalar acquisitions expect);
    the constraint view always stays 2-D even with a single constraint (what
    the probability-of-feasibility code expects).
    """

    def __init__(self, model: KATGP, columns: list[int], flatten: bool):
        self.model = model
        self.columns = list(columns)
        self.flatten = bool(flatten)

    def predict(self, x) -> tuple[np.ndarray, np.ndarray]:
        mean, var = self.model.predict(x)
        mean = mean[:, self.columns]
        var = var[:, self.columns]
        if self.flatten and len(self.columns) == 1:
            return mean.ravel(), var.ravel()
        return mean, var


def default_source_kernel_factory(input_dim: int) -> Kernel:
    """Default kernel for source GPs (ARD RBF keeps source fitting fast)."""
    return RBFKernel(input_dim)
