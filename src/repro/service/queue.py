"""The leased work queue: evaluation batches as crash-safe SQLite jobs.

A **job** is one shard of one evaluation batch: a JSON payload carrying the
study's :class:`~repro.study.spec.StudySpec` dict and the design rows to
simulate.  Jobs are keyed ``(study_id, batch_index, shard_index)`` and live
in the results store's ``jobs`` table, moving through::

    queued --claim--> leased --complete--> done
      ^                  |
      |   lease expired / worker failed (attempts < max_attempts)
      +------------------+
                         |  attempts exhausted
                         +--------------------> failed

**Leases, not locks.**  A claim stamps the job with the worker's id and a
deadline; the worker extends the deadline by heartbeating while it
simulates.  If the worker is killed, the deadline passes and the job becomes
claimable again (each claim increments ``attempts``).  Because every
evaluation in this package is a deterministic function of the payload, a
re-leased job reproduces the lost attempt's results exactly -- so a crashed
worker costs wall-clock time, never correctness, and duplicate completions
write identical bytes into an idempotent slot.

:class:`QueueBackend` is the driver side: an
:class:`~repro.engine.backends.ExecutionBackend` whose ``job_dispatch``
capability flag tells the :class:`~repro.engine.engine.EvaluationEngine` to
hand it whole pending design blocks (see ``EvaluationEngine._dispatch``).
It shards them into jobs, blocks until workers complete them, and returns
per-row outcomes indistinguishable from in-process evaluation.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

import numpy as np

from repro.engine.backends import ExecutionBackend
from repro.errors import OptimizationError
from repro.service.store import ResultsStore, _dump

#: Default lease duration; generous against slow corner/MC fan-out jobs.
DEFAULT_LEASE_SECONDS = 60.0
#: Default per-job claim budget before a job is declared failed.
DEFAULT_MAX_ATTEMPTS = 5


@dataclass
class Job:
    """One claimed unit of work (a shard of an evaluation batch)."""

    job_id: int
    study_id: str
    batch_index: int
    shard_index: int
    payload: dict
    attempts: int
    max_attempts: int
    lease_expires: float


class WorkQueue:
    """Lease/retry job queue on top of a :class:`ResultsStore`.

    All state transitions are single short ``BEGIN IMMEDIATE`` transactions,
    so any number of worker processes can share one database file.
    """

    def __init__(self, store: ResultsStore):
        self.store = store

    # ------------------------------------------------------------------ #
    # producing                                                           #
    # ------------------------------------------------------------------ #
    def enqueue(self, study_id: str, batch_index: int, shard_index: int,
                payload: dict, max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> int:
        """Idempotently enqueue one job; returns its ``job_id``.

        If the slot already holds a job with the **same payload** it is left
        untouched -- in particular a ``done`` job keeps its result, which is
        how a resumed driver reuses work completed before it was killed
        (evaluations are deterministic, so the recorded result is exactly
        what a re-run would produce).  A different payload replaces the job
        and resets it to ``queued``.
        """
        payload_text = _dump(payload)
        now = time.time()
        with self.store.transaction() as conn:
            row = conn.execute(
                """SELECT job_id, payload FROM jobs
                   WHERE study_id = ? AND batch_index = ? AND shard_index = ?""",
                (study_id, int(batch_index), int(shard_index))).fetchone()
            if row is not None and row["payload"] == payload_text:
                return int(row["job_id"])
            if row is not None:
                conn.execute(
                    """UPDATE jobs SET payload = ?, status = 'queued',
                           attempts = 0, max_attempts = ?, lease_owner = NULL,
                           lease_expires = NULL, result = NULL, error = NULL,
                           updated_at = ?
                       WHERE job_id = ?""",
                    (payload_text, int(max_attempts), now, int(row["job_id"])))
                return int(row["job_id"])
            cursor = conn.execute(
                """INSERT INTO jobs
                       (study_id, batch_index, shard_index, payload,
                        max_attempts, created_at, updated_at)
                   VALUES (?, ?, ?, ?, ?, ?, ?)""",
                (study_id, int(batch_index), int(shard_index), payload_text,
                 int(max_attempts), now, now))
            return int(cursor.lastrowid)

    # ------------------------------------------------------------------ #
    # consuming                                                           #
    # ------------------------------------------------------------------ #
    def claim(self, worker_id: str,
              lease_seconds: float = DEFAULT_LEASE_SECONDS) -> Job | None:
        """Claim the oldest available job (or ``None`` if the queue is idle).

        Available means ``queued``, or ``leased`` with an expired deadline
        and attempts to spare; expired jobs out of attempts are moved to
        ``failed`` on the way.  The claim stamps ``lease_owner`` and a fresh
        deadline inside one write transaction, so two workers can never hold
        the same job.
        """
        now = time.time()
        with self.store.transaction() as conn:
            conn.execute(
                """UPDATE jobs SET status = 'failed', updated_at = ?,
                       error = COALESCE(error,
                           'lease expired with no attempts left')
                   WHERE status = 'leased' AND lease_expires < ?
                     AND attempts >= max_attempts""", (now, now))
            row = conn.execute(
                """SELECT * FROM jobs
                   WHERE status = 'queued'
                      OR (status = 'leased' AND lease_expires < ?)
                   ORDER BY created_at, job_id LIMIT 1""", (now,)).fetchone()
            if row is None:
                return None
            expires = now + float(lease_seconds)
            conn.execute(
                """UPDATE jobs SET status = 'leased', attempts = attempts + 1,
                       lease_owner = ?, lease_expires = ?, updated_at = ?
                   WHERE job_id = ?""",
                (worker_id, expires, now, int(row["job_id"])))
            return Job(job_id=int(row["job_id"]), study_id=row["study_id"],
                       batch_index=int(row["batch_index"]),
                       shard_index=int(row["shard_index"]),
                       payload=json.loads(row["payload"]),
                       attempts=int(row["attempts"]) + 1,
                       max_attempts=int(row["max_attempts"]),
                       lease_expires=expires)

    def heartbeat(self, job_id: int, worker_id: str,
                  lease_seconds: float = DEFAULT_LEASE_SECONDS) -> bool:
        """Extend a held lease; ``False`` means the lease was lost."""
        with self.store.transaction() as conn:
            cursor = conn.execute(
                """UPDATE jobs SET lease_expires = ?, updated_at = ?
                   WHERE job_id = ? AND lease_owner = ? AND status = 'leased'""",
                (time.time() + float(lease_seconds), time.time(),
                 int(job_id), worker_id))
            return cursor.rowcount > 0

    def complete(self, job_id: int, worker_id: str, results: list[dict]) -> bool:
        """Record a job's results; ``False`` if the lease was lost meanwhile.

        A lost lease is benign: either another worker already completed the
        re-leased job with identical (deterministic) results, or it will.
        The stale worker's results are discarded rather than racing the
        current lease holder.
        """
        with self.store.transaction() as conn:
            cursor = conn.execute(
                """UPDATE jobs SET status = 'done', result = ?, error = NULL,
                       updated_at = ?
                   WHERE job_id = ? AND lease_owner = ? AND status = 'leased'""",
                (_dump(results), time.time(), int(job_id), worker_id))
            return cursor.rowcount > 0

    def fail(self, job_id: int, worker_id: str, error: str) -> None:
        """Report a worker-side job failure: requeue, or fail permanently."""
        with self.store.transaction() as conn:
            conn.execute(
                """UPDATE jobs SET
                       status = CASE WHEN attempts >= max_attempts
                                     THEN 'failed' ELSE 'queued' END,
                       lease_owner = NULL, lease_expires = NULL,
                       error = ?, updated_at = ?
                   WHERE job_id = ? AND lease_owner = ? AND status = 'leased'""",
                (str(error)[:2000], time.time(), int(job_id), worker_id))

    # ------------------------------------------------------------------ #
    # inspection                                                          #
    # ------------------------------------------------------------------ #
    def job_rows(self, study_id: str | None = None) -> list[dict]:
        query = "SELECT * FROM jobs"
        args: tuple = ()
        if study_id is not None:
            query += " WHERE study_id = ?"
            args = (study_id,)
        rows = self.store.connection().execute(
            query + " ORDER BY study_id, batch_index, shard_index",
            args).fetchall()
        return [dict(row) for row in rows]

    def counts(self, study_id: str | None = None) -> dict[str, int]:
        query = "SELECT status, COUNT(*) AS n FROM jobs"
        args: tuple = ()
        if study_id is not None:
            query += " WHERE study_id = ?"
            args = (study_id,)
        rows = self.store.connection().execute(
            query + " GROUP BY status", args).fetchall()
        base = {"queued": 0, "leased": 0, "done": 0, "failed": 0}
        base.update({row["status"]: int(row["n"]) for row in rows})
        return base


# ---------------------------------------------------------------------- #
# the driver-side execution backend                                       #
# ---------------------------------------------------------------------- #
class QueueBackend(ExecutionBackend):
    """Dispatch evaluation batches through the work queue.

    Attached to a study's engine (``Study(spec,
    engine_backend=QueueBackend(...))``), it turns every pending design
    block into ``ceil(n / shard_size)`` jobs, waits for workers to complete
    them, and maps results back row by row: successful evaluations
    reconstruct bit-exactly via
    :func:`~repro.study.checkpoint.evaluation_from_dict`, failures come back
    as the engine's internal failure marker -- so failure isolation,
    pessimisation and caching behave exactly as in-process evaluation, and
    the study's final history is bit-identical to a serial run.
    """

    name = "queue"
    job_dispatch = True

    def __init__(self, store: ResultsStore | str, study_id: str,
                 spec_dict: dict, shard_size: int = 1,
                 lease_seconds: float = DEFAULT_LEASE_SECONDS,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 poll_interval: float = 0.1,
                 dispatch_timeout: float | None = None,
                 first_batch_index: int = 0):
        if shard_size < 1:
            raise OptimizationError(f"shard_size must be >= 1, got {shard_size}")
        self.store = store if isinstance(store, ResultsStore) else ResultsStore(store)
        self.queue = WorkQueue(self.store)
        self.study_id = str(study_id)
        self.spec_dict = dict(spec_dict)
        self.shard_size = int(shard_size)
        self.lease_seconds = float(lease_seconds)
        self.max_attempts = int(max_attempts)
        self.poll_interval = float(poll_interval)
        #: ``None`` waits forever (workers may arrive late); a number bounds
        #: the wait so a worker-less deployment fails loudly instead of
        #: hanging the driver.
        self.dispatch_timeout = dispatch_timeout
        #: Next batch index to assign; a resumed driver starts it at the
        #: number of checkpointed batches so live dispatches line up with
        #: the job slots of the interrupted run and reuse their results.
        self.next_batch_index = int(first_batch_index)

    # ``map`` is unused (the engine routes through map_jobs), but keep the
    # base contract honest for any generic consumer.
    def map(self, fn, items):
        return [fn(item) for item in items]

    def map_jobs(self, problem, rows: list[np.ndarray]) -> list:
        """Evaluate design rows via the queue; blocks until all jobs land."""
        from repro.engine.engine import _TaskFailure
        from repro.study.checkpoint import evaluation_from_dict

        batch_index = self.next_batch_index
        self.next_batch_index += 1
        shards = [rows[i:i + self.shard_size]
                  for i in range(0, len(rows), self.shard_size)]
        job_ids = []
        for shard_index, shard in enumerate(shards):
            payload = {
                "kind": "evaluate",
                "study_id": self.study_id,
                "spec": self.spec_dict,
                "x": [[float(v) for v in np.asarray(row, dtype=float).ravel()]
                      for row in shard],
            }
            job_ids.append(self.queue.enqueue(
                self.study_id, batch_index, shard_index, payload,
                max_attempts=self.max_attempts))

        results_by_job = self._wait(job_ids, batch_index)
        outcomes: list = []
        for job_id in job_ids:
            for row_result in results_by_job[job_id]:
                if row_result.get("ok"):
                    outcomes.append(
                        evaluation_from_dict(row_result["evaluation"]))
                else:
                    outcomes.append(_TaskFailure(
                        row_result.get("kind", "RuntimeError"),
                        row_result.get("message", "worker-side failure")))
        return outcomes

    def _wait(self, job_ids: list[int], batch_index: int) -> dict[int, list]:
        deadline = (None if self.dispatch_timeout is None
                    else time.time() + self.dispatch_timeout)
        pending = set(job_ids)
        results: dict[int, list] = {}
        while pending:
            placeholders = ",".join("?" * len(pending))
            rows = self.store.connection().execute(
                f"SELECT job_id, status, result, error, attempts FROM jobs "
                f"WHERE job_id IN ({placeholders})",
                tuple(pending)).fetchall()
            for row in rows:
                if row["status"] == "done":
                    results[int(row["job_id"])] = json.loads(row["result"])
                    pending.discard(int(row["job_id"]))
                elif row["status"] == "failed":
                    raise OptimizationError(
                        f"study {self.study_id!r} batch {batch_index} job "
                        f"{row['job_id']} failed after {row['attempts']} "
                        f"attempt(s): {row['error']}")
            if not pending:
                break
            if deadline is not None and time.time() > deadline:
                counts = self.queue.counts(self.study_id)
                raise OptimizationError(
                    f"timed out after {self.dispatch_timeout:g}s waiting for "
                    f"{len(pending)} job(s) of study {self.study_id!r} batch "
                    f"{batch_index} (queue: {counts}); are any workers "
                    "running? start one with `python -m repro worker --db "
                    f"{self.store.path}`")
            time.sleep(self.poll_interval)
        return results

    def shutdown(self) -> None:
        """Nothing pooled to release (connections close with the store)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"QueueBackend(store={self.store.path!r}, "
                f"study_id={self.study_id!r}, shard_size={self.shard_size})")
